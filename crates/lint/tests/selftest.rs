//! Self-tests: every rule must fire on its fixture tree, waivers must
//! suppress (and malformed ones must fail), the committed workspace
//! must lint clean, and the wire-surface freeze must catch a mutation
//! of the real `types.rs`.

use std::path::{Path, PathBuf};

use gtl_lint::engine::{self, Options};
use gtl_lint::surface;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn run_on(root: PathBuf) -> engine::Report {
    engine::run(&Options { root, bless: false }).expect("engine run")
}

#[test]
fn each_rule_fires_on_its_fixture() {
    for rule in [
        "no-raw-thread",
        "no-wallclock-in-compute",
        "obs-clock-only-via-injection",
        "no-unordered-iteration-in-compute",
        "no-rng-outside-derive-stream",
        "no-panic-on-serve-path",
        "forbid-unsafe-attr",
        "wire-surface-freeze",
    ] {
        let report = run_on(fixture_root(rule));
        assert!(!report.clean(), "fixture for `{rule}` should fail");
        assert!(
            report.violations.iter().any(|fv| fv.violation.rule == rule),
            "fixture for `{rule}` should violate it; got {:?}",
            report.violations
        );
        assert!(
            report.violations.iter().all(|fv| fv.violation.rule == rule),
            "fixture for `{rule}` should violate ONLY it; got {:?}",
            report.violations
        );
    }
}

#[test]
fn panic_fixture_catches_both_unwrap_and_macro() {
    let report = run_on(fixture_root("no-panic-on-serve-path"));
    assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
}

#[test]
fn waived_fixture_is_clean_with_one_waiver_in_force() {
    let report = run_on(fixture_root("waived"));
    assert!(report.clean(), "{:?}", report.violations);
    assert_eq!(report.waivers.len(), 1);
    assert_eq!(report.waivers[0].suppressed, 1);
    assert_eq!(report.unused_waivers().count(), 0);
}

#[test]
fn waiver_without_reason_fails_and_suppresses_nothing() {
    let report = run_on(fixture_root("bad-waiver"));
    let rules: Vec<&str> = report.violations.iter().map(|fv| fv.violation.rule).collect();
    assert!(rules.contains(&"waiver-syntax"), "{rules:?}");
    assert!(rules.contains(&"no-raw-thread"), "malformed waiver must not suppress: {rules:?}");
}

#[test]
fn wire_surface_fixture_reports_drift_without_bump() {
    let report = run_on(fixture_root("wire-surface-freeze"));
    let v = &report.violations[0].violation;
    assert!(v.message.contains("without an API_VERSION bump"), "{}", v.message);
}

#[test]
fn committed_workspace_lints_clean() {
    let report = run_on(workspace_root());
    let rendered = engine::render(&report);
    assert!(report.clean(), "committed tree must lint clean:\n{rendered}");
    assert_eq!(report.unused_waivers().count(), 0, "stale waivers:\n{rendered}");
    assert!(report.files_checked > 50, "walk looks truncated: {}", report.files_checked);
    assert!(!report.waivers.is_empty(), "expected documented waivers in the tree");
}

#[test]
fn engine_output_is_deterministic() {
    let a = engine::render(&run_on(workspace_root()));
    let b = engine::render(&run_on(workspace_root()));
    assert_eq!(a, b);
}

#[test]
fn mutating_real_types_rs_without_bump_trips_the_freeze() {
    let root = workspace_root();
    let types_src =
        std::fs::read_to_string(root.join(surface::SURFACE_SOURCE)).expect("read types.rs");
    let golden =
        std::fs::read_to_string(root.join(surface::GOLDEN_PATH)).expect("read committed golden");

    // The committed pair must agree.
    let live = surface::extract_surface(&types_src);
    assert_eq!(live, golden, "committed fingerprint is stale — rerun with GTL_BLESS=1");

    // Renaming a pub field on a copy (no version bump) must trip the
    // freeze and be refused a bless.
    let mutated = types_src.replace("pub avg_pins_per_cell:", "pub avg_pins_per_cell_renamed:");
    assert_ne!(mutated, types_src, "mutation target vanished from types.rs");
    let drifted = surface::extract_surface(&mutated);
    let violations = surface::check_freeze(&drifted, Some(&golden));
    assert_eq!(violations.len(), 1);
    assert!(
        violations[0].message.contains("without an API_VERSION bump"),
        "{}",
        violations[0].message
    );
    assert!(surface::bless_allowed(&drifted, Some(&golden)).is_err());

    // The same mutation WITH a version bump is still reported (the
    // golden is stale) but may be blessed.
    let current_version =
        surface::api_version_of(&live).expect("types.rs must declare API_VERSION");
    let bumped =
        mutated.replace(&format!("API_VERSION: u32 = {current_version}"), "API_VERSION: u32 = 999");
    let bumped_surface = surface::extract_surface(&bumped);
    assert_ne!(
        surface::api_version_of(&bumped_surface),
        surface::api_version_of(&live),
        "version bump did not take — const formatting changed?"
    );
    assert!(surface::bless_allowed(&bumped_surface, Some(&golden)).is_ok());
}
