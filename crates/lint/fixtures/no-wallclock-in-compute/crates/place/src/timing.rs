//! Fixture: wall-clock reading inside a compute crate.

use std::time::Instant;

pub fn timed_pass() -> u64 {
    let start = Instant::now();
    Instant::now().duration_since(start).as_nanos() as u64
}
