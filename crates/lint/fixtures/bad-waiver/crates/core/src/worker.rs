//! Fixture: a waiver missing its mandatory reason — must fail with
//! `waiver-syntax`, and must NOT suppress the violation it targets.

pub fn fan_out() {
    // gtl-lint: allow(no-raw-thread)
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
