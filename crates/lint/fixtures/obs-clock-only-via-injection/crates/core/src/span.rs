//! Fixture: implicit clock read via `.elapsed()` in a compute crate.
//! The explicit forms (`Instant::now`, `SystemTime`) are caught by
//! `no-wallclock-in-compute`; this one slips past it.

use std::time::Instant;

pub fn span_us(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}
