//! Fixture: raw thread spawn in a compute crate (not the exec layer).

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
