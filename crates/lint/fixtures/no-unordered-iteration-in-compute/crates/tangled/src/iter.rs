//! Fixture: iterating a HashMap in a compute crate.

use std::collections::HashMap;

pub fn histogram(items: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for x in items {
        *counts.entry(*x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push((*k, *v));
    }
    out
}
