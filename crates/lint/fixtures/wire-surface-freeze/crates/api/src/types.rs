//! Fixture: wire surface drifted from the committed fingerprint while
//! API_VERSION stayed put.

/// Wire protocol version.
pub const API_VERSION: u32 = 4;

/// A wire type whose field was renamed without a version bump.
pub struct Ping {
    /// Renamed from `old_field` — this is the drift.
    pub renamed_field: u64,
}
