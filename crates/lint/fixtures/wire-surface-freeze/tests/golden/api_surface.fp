# wire surface of crates/api/src/types.rs (token-canonical)
pub const API_VERSION: u32 = 4;
pub struct Ping {
  pub old_field: u64
}
