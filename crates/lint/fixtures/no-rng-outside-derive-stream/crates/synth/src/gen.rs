//! Fixture: RNG seeded directly instead of via derive_stream.

use rand::{rngs::SmallRng, SeedableRng};

pub fn make_rng() -> SmallRng {
    SmallRng::seed_from_u64(42)
}
