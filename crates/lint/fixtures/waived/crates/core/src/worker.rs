//! Fixture: the same raw-thread violation, properly waived — this tree
//! must lint clean, with one waiver in force.

pub fn fan_out() {
    // gtl-lint: allow(no-raw-thread, reason = "fixture exercising the waiver path")
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
