//! Fixture: panicking calls on the serve path.

pub fn handle(input: &str) -> u32 {
    let parsed: u32 = input.parse().unwrap();
    if parsed > 100 {
        panic!("too big");
    }
    parsed
}
