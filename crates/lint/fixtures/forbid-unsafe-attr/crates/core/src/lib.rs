//! Fixture: crate root without `#![forbid(unsafe_code)]` and without
//! any unsafe code.

pub fn safe() -> u32 {
    7
}
