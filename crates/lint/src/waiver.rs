//! Inline waivers: `// gtl-lint: allow(<rule>, reason = "...")`.
//!
//! A waiver suppresses one rule on one line. A **trailing** waiver (code
//! before it on the line) covers its own line; a **standalone** waiver
//! covers the next line holding code. The `reason` is mandatory — a
//! waiver without one is itself a violation (`waiver-syntax`), so every
//! suppression in the tree documents *why* the invariant bends there.
//! Waivers are counted and reported by the engine; a waiver that
//! suppresses nothing is reported as unused so stale ones get cleaned
//! up when the underlying code is fixed.

use crate::lexer::Lexed;
use crate::rules::RULES;
use crate::Violation;

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the waiver comment itself.
    pub comment_line: u32,
    /// Line whose violations this waiver suppresses.
    pub target_line: u32,
}

/// Extracts the waivers from a lexed file. Malformed waivers (unparsable
/// syntax, unknown rule, missing or empty reason) come back as
/// violations of the synthetic `waiver-syntax` rule — a broken waiver
/// must fail the build, not silently suppress nothing.
pub fn extract_waivers(lexed: &Lexed) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for comment in &lexed.comments {
        let body = comment
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("gtl-lint:") else {
            continue;
        };
        let line = comment.line;
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                if !RULES.contains(&rule.as_str()) {
                    errors.push(Violation {
                        line,
                        rule: "waiver-syntax",
                        message: format!("waiver names unknown rule `{rule}`"),
                    });
                    continue;
                }
                if reason.trim().is_empty() {
                    errors.push(Violation {
                        line,
                        rule: "waiver-syntax",
                        message: format!("waiver for `{rule}` has an empty reason"),
                    });
                    continue;
                }
                let target_line = if comment.trailing {
                    line
                } else {
                    lexed.next_code_line(line + 1).unwrap_or(line)
                };
                waivers.push(Waiver { rule, reason, comment_line: line, target_line });
            }
            Err(why) => {
                errors.push(Violation {
                    line,
                    rule: "waiver-syntax",
                    message: format!("{why}; expected `gtl-lint: allow(<rule>, reason = \"...\")`"),
                });
            }
        }
    }
    (waivers, errors)
}

/// Parses `allow(<rule>, reason = "...")`, returning (rule, reason).
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(args) = text.strip_prefix("allow") else {
        return Err("waiver is not an `allow(...)`".into());
    };
    let args = args.trim();
    let Some(args) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
        return Err("missing parentheses".into());
    };
    let Some((rule, rest)) = args.split_once(',') else {
        return Err("missing `reason = \"...\"` (the reason is mandatory)".into());
    };
    let rule = rule.trim().to_string();
    let rest = rest.trim();
    let Some(value) = rest.strip_prefix("reason") else {
        return Err("second argument must be `reason = \"...\"`".into());
    };
    let Some(value) = value.trim().strip_prefix('=') else {
        return Err("second argument must be `reason = \"...\"`".into());
    };
    let value = value.trim();
    let Some(reason) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
        return Err("reason must be a double-quoted string".into());
    };
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = 1; // gtl-lint: allow(no-raw-thread, reason = \"test rig\")\n";
        let (waivers, errors) = extract_waivers(&lex(src));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].target_line, 1);
        assert_eq!(waivers[0].reason, "test rig");
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src = "// gtl-lint: allow(no-wallclock-in-compute, reason = \"why\")\n\nlet t = 1;\n";
        let (waivers, errors) = extract_waivers(&lex(src));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(waivers[0].comment_line, 1);
        assert_eq!(waivers[0].target_line, 3);
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let src = "// gtl-lint: allow(no-raw-thread)\nlet x = 1;\n";
        let (waivers, errors) = extract_waivers(&lex(src));
        assert!(waivers.is_empty());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, "waiver-syntax");
    }

    #[test]
    fn empty_or_unknown_rules_are_rejected() {
        let src = "// gtl-lint: allow(no-raw-thread, reason = \"\")\n\
                   // gtl-lint: allow(not-a-rule, reason = \"x\")\nlet x = 1;\n";
        let (waivers, errors) = extract_waivers(&lex(src));
        assert!(waivers.is_empty());
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let src = "// just a comment mentioning gtl-lint rules\nlet x = 1;\n";
        let (waivers, errors) = extract_waivers(&lex(src));
        assert!(waivers.is_empty() && errors.is_empty());
    }
}
