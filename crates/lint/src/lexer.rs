//! A hand-rolled Rust lexer: source text → token stream + comments.
//!
//! Rules operate on tokens, never raw text, so a `thread::spawn` inside
//! a string literal, a doc-comment example or a `/* block comment */`
//! can never trip a rule. The lexer handles every construct that would
//! otherwise confuse token matching: nested block comments, string and
//! raw-string literals (any `#` count), byte strings, char literals vs
//! lifetimes, and numeric literals adjacent to `..` ranges. It does
//! **not** attempt full Rust grammar — `syn` is unavailable under the
//! offline rule, and rule matching only needs faithful token boundaries.

/// What a [`Token`] is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`thread`, `fn`, `HashMap`, …).
    Ident,
    /// Numeric literal (`42`, `1.0e-3`, `0xDAC`).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'scope`).
    Lifetime,
    /// A single punctuation character (`:`, `(`, `#`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Verbatim token text (for [`TokenKind::Punct`], one character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block), kept separate from the token stream so
/// waiver comments can be recognized without polluting rule matching.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any token precedes the comment on its starting line
    /// (a trailing comment waives its own line; a standalone comment
    /// waives the next code line).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The first line at or after `line` that holds a token — where a
    /// standalone waiver comment on `line` points. `None` past EOF.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (string, block comment) consume to EOF rather than erroring: the
/// lint must keep going on files rustc would reject anyway.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_token_line: u32 = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
                trailing: last_token_line == line,
            });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let trailing = last_token_line == line;
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: start_line,
                trailing,
            });
            continue;
        }
        // Raw strings r"…" / r#"…"#, and br / rb variants; `b` alone may
        // also prefix a plain byte string or byte char.
        if (c == 'r' || c == 'b') && raw_or_byte_string(&chars, i).is_some() {
            let (end, newlines) = raw_or_byte_string(&chars, i).unwrap();
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[i..end].iter().collect(),
                line,
            });
            last_token_line = line;
            line += newlines;
            i = end;
            continue;
        }
        // Byte char b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let (end, _) = char_literal(&chars, i + 1);
            out.tokens.push(Token {
                kind: TokenKind::Char,
                text: chars[i..end].iter().collect(),
                line,
            });
            last_token_line = line;
            i = end;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            last_token_line = line;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident_continue(chars[i]) || chars[i] == '.') {
                // Stop before `..`: `0..n` is a range, not a float.
                if chars[i] == '.'
                    && (chars.get(i + 1) == Some(&'.')
                        || chars.get(i + 1).is_some_and(|&n| is_ident_start(n)))
                {
                    break;
                }
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
            last_token_line = line;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1; // skip the escaped char (handles \" and \\)
                }
                if chars.get(i) == Some(&'\n') {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(chars.len());
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            last_token_line = line;
            continue;
        }
        // `'`: char literal or lifetime.
        if c == '\'' {
            if is_char_literal(&chars, i) {
                let (end, _) = char_literal(&chars, i);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..end].iter().collect(),
                    line,
                });
                last_token_line = line;
                i = end;
            } else {
                // Lifetime: `'` + ident.
                let start = i;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                last_token_line = line;
            }
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        last_token_line = line;
        i += 1;
    }
    out
}

/// Whether the `'` at `i` starts a char literal (vs a lifetime): an
/// escape, or exactly one scalar followed by a closing `'` — with the
/// `'a'` vs `'a` ambiguity resolved by looking for that closing quote.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) if is_ident_continue(c) => {
            // `'a'` is a char; `'abc` (no close soon) is a lifetime.
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            chars.get(j) == Some(&'\'')
        }
        Some(&c) if c != '\'' => chars.get(i + 2) == Some(&'\''),
        _ => false,
    }
}

/// Consumes a char literal starting at the `'` at `i`; returns
/// (end index, newline count — always 0 for valid literals).
fn char_literal(chars: &[char], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    if chars.get(j) == Some(&'\\') {
        j += 2; // escape + escaped char
                // Multi-char escapes (\x41, \u{…}) run to the closing quote.
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
    } else {
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
    }
    ((j + 1).min(chars.len()), 0)
}

/// If position `i` starts a raw or byte string (`r"`, `r#"`, `br#"`,
/// `b"`, …), returns (end index, newlines consumed).
fn raw_or_byte_string(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    let mut raw = false;
    // Optional b / r / br / rb prefix.
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if !raw && j == i {
        return None;
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < chars.len() {
        if chars[j] == '\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if !raw && chars[j] == '\\' {
            j += 2;
            continue;
        }
        if chars[j] == '"' {
            if !raw {
                return Some((j + 1, newlines));
            }
            // Raw: need `"` followed by `hashes` hash marks.
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, newlines));
            }
        }
        j += 1;
    }
    Some((chars.len(), newlines))
}

/// Marks which tokens sit inside test-only code: a `#[cfg(test)]` or
/// `#[test]` attribute covers the item that follows it (to the matching
/// `}` of its body, or its terminating `;`).
///
/// The scan is a bracket-counting approximation of item structure — no
/// full parse — which is exact for the attribute placements rustc
/// accepts, and any residual false negative is still caught by CI's
/// tier-1 tests rather than silently changing behavior.
pub fn test_token_map(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Parse the attribute to its matching `]`.
        let attr_start = i;
        let mut depth = 0isize;
        let mut j = i + 1;
        let mut is_test = false;
        let mut first_ident: Option<&str> = None;
        let mut saw_cfg = false;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                }
                _ => {
                    if tokens[j].kind == TokenKind::Ident {
                        if first_ident.is_none() {
                            first_ident = Some(&tokens[j].text);
                        }
                        if tokens[j].text == "cfg" {
                            saw_cfg = true;
                        }
                        if tokens[j].text == "test" && (saw_cfg || first_ident == Some("test")) {
                            is_test = true;
                        }
                    }
                }
            }
            j += 1;
        }
        let attr_end = j; // index of `]`
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = attr_end + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut d = 0isize;
            k += 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d <= 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item body: first `{` outside parens/brackets, or a
        // terminating `;` (e.g. `#[cfg(test)] use …;`).
        let mut paren = 0isize;
        let mut body_start = None;
        let mut item_end = k;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => {
                    body_start = Some(k);
                    break;
                }
                ";" if paren == 0 => {
                    item_end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = body_start {
            let mut braces = 0usize;
            let mut m = open;
            while m < tokens.len() {
                match tokens[m].text.as_str() {
                    "{" => braces += 1,
                    "}" => {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            item_end = m;
        }
        for flag in in_test.iter_mut().take((item_end + 1).min(tokens.len())).skip(attr_start) {
            *flag = true;
        }
        i = item_end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // thread::spawn in a line comment
            /* thread::spawn /* nested */ still comment */
            let s = "thread::spawn";
            let r = r#"thread::spawn "quoted" inside"#;
            let ok = real_ident;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        let chars: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn ranges_do_not_eat_idents() {
        let ids = idents("for i in 0..cells.len() {}");
        assert!(ids.contains(&"cells".to_string()), "{ids:?}");
    }

    #[test]
    fn lines_are_tracked_across_strings() {
        let lexed = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let lexed = lex("let a = 1; // trailing\n// standalone\nlet b = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.next_code_line(2), Some(3));
    }

    #[test]
    fn cfg_test_marks_the_following_item() {
        let src = "
            fn live() { x(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y(); }
            }
            fn also_live() { z(); }
        ";
        let lexed = lex(src);
        let map = test_token_map(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.text == name).unwrap();
        assert!(!map[at("x")]);
        assert!(map[at("y")]);
        assert!(!map[at("z")]);
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "
            #[test]
            #[should_panic(expected = \"boom\")]
            fn t() { w(); }
            fn live() { v(); }
        ";
        let lexed = lex(src);
        let map = test_token_map(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.text == name).unwrap();
        assert!(map[at("w")]);
        assert!(!map[at("v")]);
    }

    #[test]
    fn cfg_feature_is_not_test() {
        let src = "#[cfg(feature = \"serde\")] fn f() { q(); }";
        let lexed = lex(src);
        let map = test_token_map(&lexed.tokens);
        let at = lexed.tokens.iter().position(|t| t.text == "q").unwrap();
        assert!(!map[at]);
    }
}
