//! The zone map: which invariants apply where.
//!
//! The workspace splits into **compute** crates (everything that must be
//! a deterministic pure function of input + config: `core`, `tangled`,
//! `place`, `netlist`, `synth`), **I/O** crates (`runtime`, `api`,
//! `cli`, `bench`, `lint`, `loadgen`, the root umbrella — allowed to
//! touch clocks and sockets, with the serve-path subset additionally
//! forbidden from panicking), **test** code (unit-test modules, `tests/`, `benches/`,
//! `examples/` — exempt from the determinism rules: tests may time,
//! thread and unwrap freely), and **vendored shims** (`vendor/` —
//! stand-ins for external crates, held only to the unsafe-code rule).

use std::path::Path;

/// The rule zone a file belongs to (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Zone {
    /// Deterministic compute crates: no clocks, no raw threads, no
    /// unordered iteration, RNG only via `derive_stream`.
    Compute,
    /// I/O-side crates: clocks and threads per their own exemption
    /// lists; the serve path additionally must not panic.
    Io,
    /// Test-only code: integration tests, benches, examples.
    Test,
    /// Offline vendored dependency shims.
    Vendor,
}

/// Compute crates, by `crates/<name>` directory name.
const COMPUTE_CRATES: &[&str] = &["core", "tangled", "place", "netlist", "synth"];

/// Classifies a workspace-relative path (`/`-separated) into its zone.
///
/// Test containers (`tests/`, `benches/`, `examples/`) win over crate
/// zones: `crates/place/tests/determinism.rs` is test code even though
/// `gtl-place` is a compute crate. `#[cfg(test)]` modules *inside*
/// compute sources are handled separately, per token, by
/// [`test_token_map`](crate::lexer::test_token_map).
pub fn classify(rel_path: &Path) -> Zone {
    let parts: Vec<&str> = rel_path.iter().filter_map(|c| c.to_str()).collect();
    if parts.first() == Some(&"vendor") {
        return Zone::Vendor;
    }
    if parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples")) {
        return Zone::Test;
    }
    if parts.first() == Some(&"crates") {
        if let Some(name) = parts.get(1) {
            if COMPUTE_CRATES.contains(name) {
                return Zone::Compute;
            }
        }
    }
    Zone::Io
}

/// Whether `rel_path` is on the serve path, where panics are forbidden
/// (`no-panic-on-serve-path`): the runtime, the API surface and the CLI.
pub fn on_serve_path(rel_path: &Path) -> bool {
    let parts: Vec<&str> = rel_path.iter().filter_map(|c| c.to_str()).collect();
    parts.first() == Some(&"crates")
        && matches!(parts.get(1), Some(&"runtime") | Some(&"api") | Some(&"cli"))
        && parts.get(2) == Some(&"src")
}

/// Whether `rel_path` is a crate root (`src/lib.rs`, `src/main.rs`, or
/// a `src/bin/*.rs` binary root), where `#![forbid(unsafe_code)]` is
/// required (`forbid-unsafe-attr`).
pub fn is_crate_root(rel_path: &Path) -> bool {
    let parts: Vec<&str> = rel_path.iter().filter_map(|c| c.to_str()).collect();
    let Some((file, dirs)) = parts.split_last() else {
        return false;
    };
    if !file.ends_with(".rs") {
        return false;
    }
    match dirs.last() {
        Some(&"src") => *file == "lib.rs" || *file == "main.rs",
        Some(&"bin") => dirs.len() >= 2 && dirs[dirs.len() - 2] == "src",
        _ => false,
    }
}

/// Files exempt from `no-raw-thread`: the execution layer itself and
/// the runtime server's I/O-only connection threads.
pub fn raw_thread_exempt(rel_path: &Path) -> bool {
    rel_path == Path::new("crates/core/src/exec.rs")
        || rel_path == Path::new("crates/runtime/src/server.rs")
}

/// Files exempt from `no-wallclock-in-compute`: the cancellation module
/// is the sanctioned carrier of deadlines into compute — tokens are
/// checked at checkpoints, and the "never-firing token is byte
/// invisible" property test keeps timing out of the results.
pub fn wallclock_exempt(rel_path: &Path) -> bool {
    rel_path == Path::new("crates/core/src/cancel.rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_classification() {
        assert_eq!(classify(Path::new("crates/place/src/placer.rs")), Zone::Compute);
        assert_eq!(classify(Path::new("crates/runtime/src/server.rs")), Zone::Io);
        // The load generator measures wall-clock latency by design:
        // it lives in the I/O zone, not the deterministic compute zone.
        assert_eq!(classify(Path::new("crates/loadgen/src/replay.rs")), Zone::Io);
        assert_eq!(classify(Path::new("crates/loadgen/tests/live_replay.rs")), Zone::Test);
        assert_eq!(classify(Path::new("crates/place/tests/determinism.rs")), Zone::Test);
        assert_eq!(classify(Path::new("crates/bench/benches/finder.rs")), Zone::Test);
        assert_eq!(classify(Path::new("examples/quickstart.rs")), Zone::Test);
        assert_eq!(classify(Path::new("vendor/rand/src/lib.rs")), Zone::Vendor);
        assert_eq!(classify(Path::new("src/lib.rs")), Zone::Io);
        assert_eq!(classify(Path::new("tests/api_service.rs")), Zone::Test);
    }

    #[test]
    fn serve_path_membership() {
        assert!(on_serve_path(Path::new("crates/runtime/src/server.rs")));
        assert!(on_serve_path(Path::new("crates/api/src/serve.rs")));
        assert!(on_serve_path(Path::new("crates/cli/src/lib.rs")));
        assert!(!on_serve_path(Path::new("crates/place/src/placer.rs")));
        assert!(!on_serve_path(Path::new("crates/loadgen/src/replay.rs")));
        assert!(!on_serve_path(Path::new("crates/api/tests/runtime_serve.rs")));
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root(Path::new("crates/core/src/lib.rs")));
        assert!(is_crate_root(Path::new("crates/cli/src/main.rs")));
        assert!(is_crate_root(Path::new("crates/bench/src/bin/table1.rs")));
        assert!(!is_crate_root(Path::new("crates/core/src/exec.rs")));
        assert!(!is_crate_root(Path::new("crates/bench/benches/finder.rs")));
    }
}
