//! The launch rules: each standing ROADMAP invariant as a named,
//! token-level check. See ARCHITECTURE.md "Invariants as code" for the
//! rule ↔ invariant mapping and the waiver policy.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::zones::{self, Zone};
use crate::Violation;

/// Every rule the engine knows (and a waiver may name). The synthetic
/// `waiver-syntax` rule is deliberately absent: a broken waiver cannot
/// waive itself.
pub const RULES: &[&str] = &[
    "no-raw-thread",
    "no-wallclock-in-compute",
    "obs-clock-only-via-injection",
    "no-unordered-iteration-in-compute",
    "no-rng-outside-derive-stream",
    "no-panic-on-serve-path",
    "forbid-unsafe-attr",
    "wire-surface-freeze",
];

/// RNG constructors that must route through `derive_stream` in compute
/// zones (`SmallRng::seed_from_u64(derive_stream(master, index))`).
const RNG_CONSTRUCTORS: &[&str] =
    &["seed_from_u64", "from_seed", "from_entropy", "from_os_rng", "from_rng", "thread_rng"];

/// Methods whose call on a hash container iterates it in nondeterministic
/// order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Panicking calls forbidden on the serve path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs every applicable rule over one lexed file.
///
/// `rel_path` is workspace-relative; `in_test` flags tokens inside
/// `#[cfg(test)]` / `#[test]` items (from
/// [`test_token_map`](crate::lexer::test_token_map)).
pub fn check_file(rel_path: &Path, zone: Zone, lexed: &Lexed, in_test: &[bool]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let tokens = &lexed.tokens;

    let live = |i: usize| !in_test.get(i).copied().unwrap_or(false);
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let is_ident = |i: usize| tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident);

    // ---- no-raw-thread -------------------------------------------------
    if matches!(zone, Zone::Compute | Zone::Io) && !zones::raw_thread_exempt(rel_path) {
        for (i, tok) in tokens.iter().enumerate() {
            if live(i)
                && tok.text == "thread"
                && text(i + 1) == ":"
                && text(i + 2) == ":"
                && matches!(text(i + 3), "spawn" | "scope" | "Builder")
            {
                violations.push(Violation {
                    line: tok.line,
                    rule: "no-raw-thread",
                    message: format!(
                        "raw `thread::{}` outside gtl_core::exec — all compute fan-out must go \
                         through exec::parallel_map* (ordered, worker-count-invariant)",
                        text(i + 3)
                    ),
                });
            }
        }
    }

    // ---- no-wallclock-in-compute --------------------------------------
    if zone == Zone::Compute && !zones::wallclock_exempt(rel_path) {
        for (i, tok) in tokens.iter().enumerate() {
            if !live(i) || !is_ident(i) {
                continue;
            }
            let hit = match tok.text.as_str() {
                "Instant" if text(i + 1) == ":" && text(i + 2) == ":" && text(i + 3) == "now" => {
                    Some("Instant::now()")
                }
                "SystemTime" => Some("SystemTime"),
                _ => None,
            };
            if let Some(what) = hit {
                violations.push(Violation {
                    line: tok.line,
                    rule: "no-wallclock-in-compute",
                    message: format!(
                        "{what} in a compute crate — wall-clock readings make results \
                         timing-dependent; deadlines reach compute only via CancelToken \
                         checkpoints (gtl_core::cancel)"
                    ),
                });
            }
        }
    }

    // ---- obs-clock-only-via-injection ---------------------------------
    // `no-wallclock-in-compute` catches the explicit clock reads
    // (`Instant::now`, `SystemTime`); this closes the implicit one:
    // `.elapsed()` reads "now" inside the callee. Compute code may
    // carry and *subtract* instants handed to it
    // (`gtl_core::obs::Span::starting_at(a).end_at(b)`) but must never
    // acquire one — that is the byte-invisibility contract of the
    // observability layer.
    if zone == Zone::Compute && !zones::wallclock_exempt(rel_path) {
        for i in 0..tokens.len() {
            if live(i) && text(i) == "." && text(i + 1) == "elapsed" && text(i + 2) == "(" {
                violations.push(Violation {
                    line: tokens[i + 1].line,
                    rule: "obs-clock-only-via-injection",
                    message: "`.elapsed()` in a compute crate reads the clock implicitly — \
                              subtract injected instants instead (gtl_core::obs::Span), so \
                              recording a span can never branch on time"
                        .into(),
                });
            }
        }
    }

    // ---- no-unordered-iteration-in-compute ----------------------------
    if zone == Zone::Compute {
        let hash_vars = collect_hash_vars(tokens);
        for (i, tok) in tokens.iter().enumerate() {
            if !live(i) || !is_ident(i) || !hash_vars.contains(tok.text.as_str()) {
                continue;
            }
            // `var.iter()` / `.keys()` / … method-call iteration.
            let method_iter = text(i + 1) == "."
                && HASH_ITER_METHODS.contains(&text(i + 2))
                && text(i + 3) == "(";
            // `for x in var` / `for x in &var` / `for x in &mut var`
            // direct iteration (IntoIterator), where `var` is not the
            // head of a further method chain.
            let mut direct_iter = false;
            if text(i + 1) != "." {
                let mut j = i;
                while j > 0 && matches!(text(j - 1), "&" | "mut") {
                    j -= 1;
                }
                direct_iter = j > 0 && text(j - 1) == "in";
            }
            if method_iter || direct_iter {
                violations.push(Violation {
                    line: tok.line,
                    rule: "no-unordered-iteration-in-compute",
                    message: format!(
                        "iterating hash container `{}` in a compute crate — HashMap/HashSet \
                         iteration order is nondeterministic; use BTreeMap/BTreeSet or sort \
                         after collecting",
                        tok.text
                    ),
                });
            }
        }
    }

    // ---- no-rng-outside-derive-stream ---------------------------------
    if zone == Zone::Compute {
        for i in 0..tokens.len() {
            if !live(i) || !is_ident(i) || !RNG_CONSTRUCTORS.contains(&text(i)) {
                continue;
            }
            if text(i + 1) != "(" {
                continue;
            }
            // Scan the argument list for a `derive_stream` call.
            let mut depth = 0isize;
            let mut j = i + 1;
            let mut routed = false;
            while j < tokens.len() {
                match text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    "derive_stream" => routed = true,
                    _ => {}
                }
                j += 1;
            }
            if !routed {
                violations.push(Violation {
                    line: tokens[i].line,
                    rule: "no-rng-outside-derive-stream",
                    message: format!(
                        "RNG constructed via `{}` without `derive_stream(master_seed, index)` — \
                         per-item streams must be derived, never shared or entropy-seeded, or \
                         results depend on scheduling",
                        text(i)
                    ),
                });
            }
        }
    }

    // ---- no-panic-on-serve-path ---------------------------------------
    if zones::on_serve_path(rel_path) {
        for i in 0..tokens.len() {
            if !live(i) {
                continue;
            }
            if text(i) == "." && matches!(text(i + 1), "unwrap" | "expect") && text(i + 2) == "(" {
                violations.push(Violation {
                    line: tokens[i + 1].line,
                    rule: "no-panic-on-serve-path",
                    message: format!(
                        "`.{}()` on the serve path — a panic here costs a connection or the \
                         server; return a structured ApiError (or waive with the proof of \
                         infallibility)",
                        text(i + 1)
                    ),
                });
            }
            if is_ident(i) && PANIC_MACROS.contains(&text(i)) && text(i + 1) == "!" {
                violations.push(Violation {
                    line: tokens[i].line,
                    rule: "no-panic-on-serve-path",
                    message: format!(
                        "`{}!` on the serve path — a panic here costs a connection or the \
                         server; return a structured ApiError (or waive with the proof of \
                         infallibility)",
                        text(i)
                    ),
                });
            }
        }
    }

    // ---- forbid-unsafe-attr -------------------------------------------
    if zones::is_crate_root(rel_path) {
        let uses_unsafe = tokens
            .iter()
            .enumerate()
            .any(|(i, t)| t.kind == TokenKind::Ident && t.text == "unsafe" && live(i));
        let has_attr = (0..tokens.len()).any(|i| {
            text(i) == "#"
                && text(i + 1) == "!"
                && text(i + 2) == "["
                && text(i + 3) == "forbid"
                && text(i + 4) == "("
                && text(i + 5) == "unsafe_code"
                && text(i + 6) == ")"
                && text(i + 7) == "]"
        });
        if !uses_unsafe && !has_attr {
            violations.push(Violation {
                line: 1,
                rule: "forbid-unsafe-attr",
                message: "crate root of an unsafe-free crate is missing #![forbid(unsafe_code)]"
                    .into(),
            });
        }
    }

    violations.sort_by_key(|v| (v.line, v.rule));
    violations
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: via
/// type ascription (`let x: HashMap<…>`, fn params, struct fields) or
/// via constructor assignment (`let x = HashMap::new()`).
fn collect_hash_vars(tokens: &[Token]) -> BTreeSet<String> {
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut vars = BTreeSet::new();
    for i in 0..tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident
            && (tokens[i].text == "HashMap" || tokens[i].text == "HashSet"))
        {
            continue;
        }
        // Type-ascription form: walk back over `: & mut std collections`
        // path/reference noise to the ascribed identifier.
        let mut j = i;
        while j > 0 {
            let prev = text(j - 1);
            let skip = matches!(prev, ":" | "&" | "mut" | "std" | "collections")
                || tokens[j - 1].kind == TokenKind::Lifetime;
            if !skip {
                break;
            }
            j -= 1;
        }
        if j < i && j > 0 && tokens[j - 1].kind == TokenKind::Ident && text(j) == ":" {
            vars.insert(tokens[j - 1].text.clone());
            continue;
        }
        // Constructor form: `let [mut] x = … HashMap::…` within the
        // current statement.
        if text(i + 1) == ":" && text(i + 2) == ":" {
            let mut k = i;
            while k > 0 && !matches!(text(k - 1), ";" | "{" | "}") {
                k -= 1;
                if text(k) == "let" {
                    let mut v = k + 1;
                    if text(v) == "mut" {
                        v += 1;
                    }
                    if tokens.get(v).is_some_and(|t| t.kind == TokenKind::Ident) {
                        vars.insert(tokens[v].text.clone());
                    }
                    break;
                }
            }
        }
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_token_map};

    fn check(rel: &str, zone: Zone, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let map = test_token_map(&lexed.tokens);
        check_file(Path::new(rel), zone, &lexed, &map)
    }

    #[test]
    fn hash_vars_are_collected_from_all_binding_forms() {
        let src = "
            fn f(names: &HashMap<String, u32>) {
                let mut edges: HashMap<(u32, u32), ()> = HashMap::new();
                let built = std::collections::HashSet::with_capacity(8);
                let plain = Vec::new();
            }
        ";
        let vars = collect_hash_vars(&lex(src).tokens);
        assert!(vars.contains("names"), "{vars:?}");
        assert!(vars.contains("edges"), "{vars:?}");
        assert!(vars.contains("built"), "{vars:?}");
        assert!(!vars.contains("plain"), "{vars:?}");
    }

    #[test]
    fn lookup_only_hash_use_is_clean() {
        let src = "
            fn f(names: &HashMap<String, u32>) -> Option<u32> {
                names.get(\"x\").copied()
            }
        ";
        assert!(check("crates/netlist/src/x.rs", Zone::Compute, src).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_compute_rules() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn t() {
                    let now = Instant::now();
                    std::thread::spawn(|| {});
                }
            }
        ";
        assert!(check("crates/place/src/x.rs", Zone::Compute, src).is_empty());
    }

    #[test]
    fn io_zone_may_use_clocks_but_not_threads() {
        let src = "fn f() { let t = Instant::now(); thread::spawn(|| {}); }";
        let v = check("crates/runtime/src/other.rs", Zone::Io, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-raw-thread");
    }

    #[test]
    fn elapsed_in_compute_is_flagged_but_subtraction_is_not() {
        let bad = "pub fn f(start: Instant) -> u128 { start.elapsed().as_micros() }";
        let v = check("crates/place/src/x.rs", Zone::Compute, bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "obs-clock-only-via-injection");
        let good = "pub fn f(s: Span, end: Instant) -> u64 { s.end_at(end) }";
        assert!(check("crates/place/src/x.rs", Zone::Compute, good).is_empty());
        // I/O zones own the clock: recording spans there is the design.
        assert!(check("crates/runtime/src/other.rs", Zone::Io, bad).is_empty());
    }

    #[test]
    fn derive_stream_routing_passes() {
        let src = "fn f() { let rng = SmallRng::seed_from_u64(derive_stream(seed, i)); }";
        assert!(check("crates/tangled/src/x.rs", Zone::Compute, src).is_empty());
    }
}
