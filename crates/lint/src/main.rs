//! CLI entry point: `cargo run -p gtl-lint -- --workspace`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 the run itself failed
//! (unreadable tree, refused bless).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use gtl_lint::engine::{self, Options};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("gtl-lint: --root needs a path");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "gtl-lint: workspace invariants as code\n\n\
                     usage: gtl-lint --workspace | --root <dir>\n\n\
                     env: GTL_BLESS=1  re-bless tests/golden/api_surface.fp\n\
                          (refused if the wire surface changed without an API_VERSION bump)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gtl-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if !workspace && root.is_none() {
        eprintln!("gtl-lint: pass --workspace (or --root <dir>); see --help");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("gtl-lint: could not locate the workspace root Cargo.toml");
                return ExitCode::from(2);
            }
        },
    };

    let bless = std::env::var("GTL_BLESS").map(|v| v == "1").unwrap_or(false);
    match engine::run(&Options { root, bless }) {
        Ok(report) => {
            print!("{}", engine::render(&report));
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gtl-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Ascends from the current directory (falling back to the crate's
/// compile-time location) to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let starts = [std::env::current_dir().ok(), Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")))];
    for start in starts.into_iter().flatten() {
        let mut dir = start.as_path();
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
            match dir.parent() {
                Some(parent) => dir = parent,
                None => break,
            }
        }
    }
    None
}
