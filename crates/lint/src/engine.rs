//! The driver: walks a workspace tree, runs every rule over every `.rs`
//! file, applies waivers, checks the wire-surface freeze, and builds a
//! deterministic [`Report`].

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, test_token_map};
use crate::rules::check_file;
use crate::surface;
use crate::waiver::{extract_waivers, Waiver};
use crate::zones;
use crate::Violation;

/// Directories never descended into. `fixtures` keeps the lint's own
/// deliberately-violating test inputs out of a workspace run.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "fixtures", ".claude"];

/// How to run the engine.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root to walk.
    pub root: PathBuf,
    /// When set (`GTL_BLESS=1`), regenerate the wire-surface golden —
    /// refused if the surface changed without an `API_VERSION` bump.
    pub bless: bool,
}

/// One violation tied to its file.
#[derive(Debug)]
pub struct FileViolation {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// The violation itself.
    pub violation: Violation,
}

/// One applied (or unused) waiver tied to its file.
#[derive(Debug)]
pub struct FileWaiver {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// The waiver.
    pub waiver: Waiver,
    /// How many violations it suppressed.
    pub suppressed: usize,
}

/// The outcome of a full run. Everything is sorted by path, then line,
/// so output is byte-identical across runs and machines.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by any waiver — these fail the build.
    pub violations: Vec<FileViolation>,
    /// All waivers found, with their suppression counts (0 = unused,
    /// reported as a warning).
    pub waivers: Vec<FileWaiver>,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
    /// Set when `--bless` wrote a new wire-surface golden.
    pub blessed: Option<String>,
}

impl Report {
    /// Whether the tree passes: no unwaived violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Waivers that suppressed nothing.
    pub fn unused_waivers(&self) -> impl Iterator<Item = &FileWaiver> {
        self.waivers.iter().filter(|w| w.suppressed == 0)
    }
}

/// Runs the lint over `options.root`. `Err` means the run itself could
/// not proceed (unreadable tree, refused bless) — distinct from a clean
/// run that found violations.
pub fn run(options: &Options) -> Result<Report, String> {
    let mut report = Report::default();
    let mut files = Vec::new();
    collect_rs_files(&options.root, &mut files)
        .map_err(|e| format!("walking {}: {e}", options.root.display()))?;
    files.sort();

    for path in &files {
        let rel = path.strip_prefix(&options.root).unwrap_or(path).to_path_buf();
        let source = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        check_one(&rel, &source, &mut report);
        report.files_checked += 1;
    }

    check_surface(options, &mut report)?;

    report.violations.sort_by(|a, b| {
        (&a.path, a.violation.line, a.violation.rule).cmp(&(
            &b.path,
            b.violation.line,
            b.violation.rule,
        ))
    });
    report
        .waivers
        .sort_by(|a, b| (&a.path, a.waiver.comment_line).cmp(&(&b.path, b.waiver.comment_line)));
    Ok(report)
}

/// Lints one file's source, folding results into the report.
fn check_one(rel: &Path, source: &str, report: &mut Report) {
    let lexed = lex(source);
    let in_test = test_token_map(&lexed.tokens);
    let zone = zones::classify(rel);

    let (waivers, waiver_errors) = extract_waivers(&lexed);
    let mut raw = check_file(rel, zone, &lexed, &in_test);
    raw.extend(waiver_errors);

    // A waiver suppresses violations of its rule on its target line.
    let mut suppressed: BTreeMap<usize, usize> = BTreeMap::new();
    for v in raw {
        let hit = waivers.iter().position(|w| w.rule == v.rule && w.target_line == v.line);
        match hit {
            Some(wi) => *suppressed.entry(wi).or_insert(0) += 1,
            None => report.violations.push(FileViolation { path: rel.to_path_buf(), violation: v }),
        }
    }
    for (wi, waiver) in waivers.into_iter().enumerate() {
        report.waivers.push(FileWaiver {
            path: rel.to_path_buf(),
            waiver,
            suppressed: suppressed.get(&wi).copied().unwrap_or(0),
        });
    }
}

/// Runs the wire-surface freeze against the committed golden, handling
/// `--bless`. Skipped when the tree has no `crates/api/src/types.rs`
/// (fixture trees).
fn check_surface(options: &Options, report: &mut Report) -> Result<(), String> {
    let types_path = options.root.join(surface::SURFACE_SOURCE);
    if !types_path.is_file() {
        return Ok(());
    }
    let types_src =
        fs::read_to_string(&types_path).map_err(|e| format!("{}: {e}", types_path.display()))?;
    let live = surface::extract_surface(&types_src);
    let golden_path = options.root.join(surface::GOLDEN_PATH);
    let golden = fs::read_to_string(&golden_path).ok();

    if options.bless {
        surface::bless_allowed(&live, golden.as_deref())?;
        if golden.as_deref() != Some(live.as_str()) {
            if let Some(dir) = golden_path.parent() {
                fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
            fs::write(&golden_path, &live)
                .map_err(|e| format!("{}: {e}", golden_path.display()))?;
            report.blessed = Some(format!(
                "blessed {} (API_VERSION {})",
                surface::GOLDEN_PATH,
                surface::api_version_of(&live).as_deref().unwrap_or("?")
            ));
        }
        return Ok(());
    }

    for violation in surface::check_freeze(&live, golden.as_deref()) {
        report
            .violations
            .push(FileViolation { path: PathBuf::from(surface::SURFACE_SOURCE), violation });
    }
    Ok(())
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`] and hidden
/// directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the report for terminal / CI consumption: violations first
/// (`path:line: [rule] message`), then unused-waiver warnings, then a
/// summary line.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for fv in &report.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            fv.path.display(),
            fv.violation.line,
            fv.violation.rule,
            fv.violation.message
        ));
    }
    for fw in report.unused_waivers() {
        out.push_str(&format!(
            "{}:{}: warning: unused waiver for `{}` (reason: \"{}\") — remove it\n",
            fw.path.display(),
            fw.waiver.comment_line,
            fw.waiver.rule,
            fw.waiver.reason
        ));
    }
    if let Some(blessed) = &report.blessed {
        out.push_str(blessed);
        out.push('\n');
    }
    let active: usize = report.waivers.iter().filter(|w| w.suppressed > 0).count();
    let suppressed: usize = report.waivers.iter().map(|w| w.suppressed).sum();
    out.push_str(&format!(
        "gtl-lint: {} files checked, {} violations, {} waivers in force (suppressing {}), {} unused\n",
        report.files_checked,
        report.violations.len(),
        active,
        suppressed,
        report.unused_waivers().count()
    ));
    out
}
