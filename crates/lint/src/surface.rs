//! `wire-surface-freeze`: the public wire surface of
//! `crates/api/src/types.rs` — every `pub` const, struct field and enum
//! variant — rendered to a canonical text fingerprint and committed at
//! `tests/golden/api_surface.fp`. Any drift between the committed
//! fingerprint and the live surface fails the lint; re-blessing
//! (`GTL_BLESS=1`) is refused unless `API_VERSION` was bumped alongside
//! the change. That *is* ROADMAP invariant (b), as code.

use crate::lexer::{lex, Token, TokenKind};
use crate::Violation;

/// Workspace-relative path of the wire-surface source.
pub const SURFACE_SOURCE: &str = "crates/api/src/types.rs";

/// Workspace-relative path of the committed fingerprint.
pub const GOLDEN_PATH: &str = "tests/golden/api_surface.fp";

/// Renders the canonical wire surface of `types.rs` source text: one
/// line per `pub` const, one line per struct/enum header, one indented
/// line per `pub` field / enum variant, in source order. Whitespace and
/// comments never affect it (it is token-derived); any change to a
/// name, type or value does.
pub fn extract_surface(source: &str) -> String {
    let tokens = lex(source).tokens;
    let text = |i: usize| tokens.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut out = String::from("# wire surface of crates/api/src/types.rs (token-canonical)\n");
    let mut depth = 0isize;
    let mut i = 0;
    while i < tokens.len() {
        match text(i) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "pub" if depth == 0 => match text(i + 1) {
                "const" => {
                    let end = scan_until(&tokens, i, ";");
                    out.push_str(&render(&tokens[i..end]));
                    out.push_str(";\n");
                    i = end;
                }
                "struct" | "enum" => {
                    let is_struct = text(i + 1) == "struct";
                    // Header: up to (not including) the opening brace,
                    // or the whole item for unit/tuple structs.
                    let body = scan_until(&tokens, i, "{");
                    let semi = scan_until(&tokens, i, ";");
                    if semi < body {
                        out.push_str(&render(&tokens[i..semi]));
                        out.push_str(";\n");
                        i = semi;
                    } else {
                        out.push_str(&render(&tokens[i..body]));
                        out.push_str(" {\n");
                        let end = matching_brace(&tokens, body);
                        for item in split_items(&tokens[body + 1..end]) {
                            // Struct fields count only when `pub`;
                            // enum variants are always surface.
                            let keep = !is_struct || item.first().is_some_and(|t| t.text == "pub");
                            if keep && !item.is_empty() {
                                out.push_str("  ");
                                out.push_str(&render(item));
                                out.push('\n');
                            }
                        }
                        out.push_str("}\n");
                        i = end;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    out
}

/// Returns the value text of `pub const API_VERSION` in a canonical
/// surface string, if present.
pub fn api_version_of(surface: &str) -> Option<String> {
    surface
        .lines()
        .find(|l| l.starts_with("pub const API_VERSION"))
        .and_then(|l| l.split('=').nth(1))
        .map(|v| v.trim_end_matches(';').trim().to_string())
}

/// Compares the live surface against the committed golden fingerprint.
///
/// * Golden missing: one violation telling the user to bless.
/// * Surfaces equal: clean.
/// * Drift with the **same** `API_VERSION`: the invariant violation —
///   wire changed without a version bump.
/// * Drift with a bumped version: still a violation (the golden is
///   stale) but the message points at `GTL_BLESS=1`, which will accept
///   it.
pub fn check_freeze(live_surface: &str, golden: Option<&str>) -> Vec<Violation> {
    let Some(golden) = golden else {
        return vec![Violation {
            line: 1,
            rule: "wire-surface-freeze",
            message: format!(
                "no committed fingerprint at {GOLDEN_PATH} — run with GTL_BLESS=1 to create it"
            ),
        }];
    };
    if golden == live_surface {
        return Vec::new();
    }
    let live_v = api_version_of(live_surface);
    let golden_v = api_version_of(golden);
    let message = if live_v == golden_v {
        format!(
            "wire surface of {SURFACE_SOURCE} drifted from {GOLDEN_PATH} without an API_VERSION \
             bump (still {}) — changing the wire format requires bumping API_VERSION, then \
             GTL_BLESS=1 to re-bless{}",
            live_v.as_deref().unwrap_or("?"),
            first_diff(golden, live_surface)
        )
    } else {
        format!(
            "wire surface of {SURFACE_SOURCE} changed (API_VERSION {} -> {}) but {GOLDEN_PATH} \
             is stale — run with GTL_BLESS=1 to re-bless{}",
            golden_v.as_deref().unwrap_or("?"),
            live_v.as_deref().unwrap_or("?"),
            first_diff(golden, live_surface)
        )
    };
    vec![Violation { line: 1, rule: "wire-surface-freeze", message }]
}

/// Whether a bless request may proceed: only when the golden is absent,
/// or the surface is unchanged, or `API_VERSION` moved with it.
pub fn bless_allowed(live_surface: &str, golden: Option<&str>) -> Result<(), String> {
    let Some(golden) = golden else { return Ok(()) };
    if golden == live_surface || api_version_of(live_surface) != api_version_of(golden) {
        return Ok(());
    }
    Err(format!(
        "refusing to bless: wire surface changed but API_VERSION did not (still {}) — bump \
         API_VERSION in {SURFACE_SOURCE} first",
        api_version_of(live_surface).as_deref().unwrap_or("?")
    ))
}

/// Renders a one-line description of the first differing line, to make
/// drift reports actionable without a diff tool.
fn first_diff(golden: &str, live: &str) -> String {
    let mut g = golden.lines();
    let mut l = live.lines();
    loop {
        match (g.next(), l.next()) {
            (Some(a), Some(b)) if a == b => continue,
            (Some(a), Some(b)) => {
                return format!("; first difference: committed `{a}` vs live `{b}`")
            }
            (Some(a), None) => return format!("; removed from surface: `{a}`"),
            (None, Some(b)) => return format!("; added to surface: `{b}`"),
            (None, None) => return String::new(),
        }
    }
}

/// Index of the first token with text `what` at the current nesting
/// depth, scanning from `from` (or `tokens.len()` if absent).
fn scan_until(tokens: &[Token], from: usize, what: &str) -> usize {
    let mut depth = 0isize;
    for (off, t) in tokens[from..].iter().enumerate() {
        match t.text.as_str() {
            "{" | "(" | "[" if t.kind == TokenKind::Punct => {
                if t.text == what && depth == 0 {
                    return from + off;
                }
                depth += 1;
            }
            "}" | ")" | "]" if t.kind == TokenKind::Punct => depth -= 1,
            s if s == what && depth == 0 => return from + off,
            _ => {}
        }
    }
    tokens.len()
}

/// Index of the brace matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return open + off;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}

/// Splits a brace body into comma-separated items at depth 0, dropping
/// attributes (`#[...]`) so `#[serde(...)]`-style annotations don't
/// enter the fingerprint.
fn split_items(tokens: &[Token]) -> Vec<&[Token]> {
    let mut items = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "#" if depth == 0 && tokens.get(i + 1).is_some_and(|t| t.text == "[") => {
                let end = matching_bracket(tokens, i + 1);
                i = end + 1;
                start = i;
                continue;
            }
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => depth -= 1,
            "," if depth == 0 => {
                items.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < tokens.len() {
        items.push(&tokens[start..]);
    }
    items
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    for (off, t) in tokens[open..].iter().enumerate() {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth <= 0 {
                    return open + off;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Joins token texts with canonical spacing: `Vec<String>`, `B(u32)`,
/// `std::collections`, but `field: Type` and `X = 4`. Only stability
/// and readability matter — the result is compared byte-for-byte.
fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 && !out.is_empty() {
            let prev = tokens[i - 1].text.as_str();
            // No space before closers/separators, or an opener that
            // follows a name (call/generic position).
            let glue_before = matches!(t.text.as_str(), "," | ";" | ":" | ">" | ")" | "]")
                || (matches!(t.text.as_str(), "(" | "[" | "<")
                    && matches!(tokens[i - 1].kind, TokenKind::Ident)
                    || matches!(prev, ">" | ")" | "]") && matches!(t.text.as_str(), "(" | "["));
            // No space after openers/references, or after the second
            // colon of a `::` path.
            let glue_after = matches!(prev, "(" | "[" | "<" | "&")
                || (prev == ":" && i >= 2 && tokens[i - 2].text == ":");
            if !glue_before && !glue_after {
                out.push(' ');
            }
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        /// Version const.
        pub const API_VERSION: u32 = 4;
        const PRIVATE: u32 = 9;

        /// A wire struct.
        #[derive(Debug)]
        pub struct Thing {
            /// Doc.
            pub id: u64,
            internal: bool,
            pub name: String,
        }

        pub enum Kind {
            A,
            B(u32),
            C { x: f64 },
        }

        struct Hidden { pub f: u8 }
    "#;

    #[test]
    fn surface_has_pub_items_only() {
        let s = extract_surface(SRC);
        assert!(s.contains("pub const API_VERSION: u32 = 4;"), "{s}");
        assert!(!s.contains("PRIVATE"), "{s}");
        assert!(s.contains("pub id: u64"), "{s}");
        assert!(!s.contains("internal"), "{s}");
        assert!(s.contains("B(u32)"), "{s}");
        assert!(!s.contains("Hidden"), "{s}");
        assert!(!s.contains("derive"), "{s}");
    }

    #[test]
    fn whitespace_and_comments_do_not_move_the_surface() {
        let reformatted = SRC.replace("pub id: u64", "pub id :\n  // moved\n u64");
        assert_eq!(extract_surface(SRC), extract_surface(&reformatted));
    }

    #[test]
    fn version_parses_from_surface() {
        assert_eq!(api_version_of(&extract_surface(SRC)).as_deref(), Some("4"));
    }

    #[test]
    fn drift_without_bump_is_flagged_and_bless_refused() {
        let golden = extract_surface(SRC);
        let changed = SRC.replace("pub id: u64", "pub id: u32");
        let live = extract_surface(&changed);
        let v = check_freeze(&live, Some(&golden));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("without an API_VERSION bump"), "{}", v[0].message);
        assert!(bless_allowed(&live, Some(&golden)).is_err());
    }

    #[test]
    fn drift_with_bump_is_flagged_but_blessable() {
        let golden = extract_surface(SRC);
        let changed = SRC
            .replace("pub id: u64", "pub id: u32")
            .replace("API_VERSION: u32 = 4", "API_VERSION: u32 = 5");
        let live = extract_surface(&changed);
        let v = check_freeze(&live, Some(&golden));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("GTL_BLESS=1"), "{}", v[0].message);
        assert!(bless_allowed(&live, Some(&golden)).is_ok());
    }

    #[test]
    fn missing_golden_is_a_violation() {
        let v = check_freeze(&extract_surface(SRC), None);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("GTL_BLESS=1"));
    }
}
