//! `gtl-lint` — the workspace's standing invariants as code.
//!
//! The ROADMAP invariants that every PR in this repo must preserve —
//! determinism of the compute crates, boundedness of the serve path,
//! and wire-format stability of the API — live here as named,
//! machine-checked rules instead of prose. The pass is a hand-rolled
//! lexer (no `syn`; the build is offline) plus a token-pattern rule
//! engine; it runs over every `.rs` file in the workspace as a
//! first-class CI gate:
//!
//! ```text
//! cargo run -p gtl-lint -- --workspace
//! ```
//!
//! Launch rules (see [`rules::RULES`]):
//!
//! * `no-raw-thread` — all fan-out goes through `gtl_core::exec`.
//! * `no-wallclock-in-compute` — compute crates never read clocks;
//!   deadlines arrive only via `CancelToken` checkpoints.
//! * `no-unordered-iteration-in-compute` — no iterating
//!   `HashMap`/`HashSet` where results depend on order.
//! * `no-rng-outside-derive-stream` — per-item RNG streams only.
//! * `no-panic-on-serve-path` — `runtime`/`api`/`cli` sources return
//!   structured errors, never panic.
//! * `forbid-unsafe-attr` — unsafe-free crates pin it with
//!   `#![forbid(unsafe_code)]`.
//! * `wire-surface-freeze` — the pub surface of
//!   `crates/api/src/types.rs` matches the committed fingerprint at
//!   `tests/golden/api_surface.fp`; drift requires an `API_VERSION`
//!   bump and a `GTL_BLESS=1` re-bless.
//!
//! Exceptions are **inline waivers** with a mandatory reason —
//! `// gtl-lint: allow(<rule>, reason = "...")` — counted, reported,
//! and themselves linted (see [`waiver`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod surface;
pub mod waiver;
pub mod zones;

/// One rule violation at a source line. The engine attaches the file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based source line.
    pub line: u32,
    /// Name of the violated rule (a member of [`rules::RULES`], or the
    /// synthetic `waiver-syntax`).
    pub rule: &'static str,
    /// Human-oriented explanation, including the fix direction.
    pub message: String,
}
