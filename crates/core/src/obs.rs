//! Deterministic observability primitives: a log-linear latency
//! histogram (HDR-style buckets) and an injected-clock [`Span`].
//!
//! # Byte-invisibility contract
//!
//! This module lives in the compute zone, yet it measures time. The
//! reconciliation is strict one-way data flow: **nothing here ever reads
//! a clock**. A [`Span`] is constructed from a [`Instant`] the I/O zone
//! captured ([`Span::starting_at`]) and closed against another injected
//! instant ([`Span::end_at`]); the histogram records plain integers.
//! Compute never branches on a recorded duration, so recording is
//! byte-invisible in every output — the same invariant the never-firing
//! [`CancelToken`](crate::cancel::CancelToken) upholds, and `gtl-lint`'s
//! `obs-clock-only-via-injection` rule machine-checks (no `.elapsed()`
//! in compute crates; `Instant::now`/`SystemTime` were already banned by
//! `no-wallclock-in-compute`).
//!
//! # Bucket layout
//!
//! Values are microseconds. The first [`LINEAR_BUCKETS`] buckets hold one
//! value each (`0..=15 µs`); beyond that, each power-of-two range
//! `[2^g, 2^(g+1))` is split into [`SUB_BUCKETS`] equal sub-buckets, so
//! the relative quantization error is bounded by `1/16` everywhere. The
//! top bucket saturates: values past [`MAX_TRACKED_US`] are clamped into
//! it, never dropped — `count` and `sum_us` stay exact.

use std::time::Instant;

/// One-value-wide buckets for `0..=LINEAR_BUCKETS-1` µs.
pub const LINEAR_BUCKETS: u64 = 16;

/// Sub-buckets per power-of-two group (relative error `<= 1/16`).
pub const SUB_BUCKETS: u64 = 16;

/// Power-of-two groups tracked past the linear range: group `g` covers
/// `[2^g, 2^(g+1))` for `g` in `4..4+GROUPS`. The last group tops out at
/// `2^36 - 1` µs (~19 hours), far beyond any request latency.
pub const GROUPS: u64 = 32;

/// Total bucket count of a [`LatencyHistogram`].
pub const NUM_BUCKETS: usize = (LINEAR_BUCKETS + GROUPS * SUB_BUCKETS) as usize;

/// The largest microsecond value tracked with bucket resolution; larger
/// values saturate into the top bucket.
pub const MAX_TRACKED_US: u64 = (1 << (4 + GROUPS)) - 1;

/// The fixed `le` boundary set the Prometheus rendering publishes, as
/// `(µs bound, seconds label)` pairs in ascending order. Bounds are
/// quantized to histogram buckets on export (see
/// [`LatencyHistogram::cumulative`]), so the label set being fixed keeps
/// the text exposition byte-deterministic.
pub const SCRAPE_BOUNDS_US: &[(u64, &str)] = &[
    (100, "0.0001"),
    (250, "0.00025"),
    (500, "0.0005"),
    (1_000, "0.001"),
    (2_500, "0.0025"),
    (5_000, "0.005"),
    (10_000, "0.01"),
    (25_000, "0.025"),
    (50_000, "0.05"),
    (100_000, "0.1"),
    (250_000, "0.25"),
    (500_000, "0.5"),
    (1_000_000, "1"),
    (2_500_000, "2.5"),
    (5_000_000, "5"),
    (10_000_000, "10"),
];

/// The bucket index a microsecond value lands in (pure math, total).
pub fn bucket_index(us: u64) -> usize {
    if us < LINEAR_BUCKETS {
        return us as usize;
    }
    let us = us.min(MAX_TRACKED_US);
    // `us >= 16`, so the leading-zero count is at most 59 and `g >= 4`.
    let g = 63 - u64::from(us.leading_zeros());
    let sub = (us >> (g - 4)) & (SUB_BUCKETS - 1);
    ((g - 3) * SUB_BUCKETS + sub) as usize
}

/// The inclusive upper bound (µs) of a bucket — what percentiles report,
/// so a reported percentile never understates the true value by more
/// than the bucket's width.
pub fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < LINEAR_BUCKETS {
        return index;
    }
    let g = index / SUB_BUCKETS + 3;
    let sub = index % SUB_BUCKETS;
    let width = 1u64 << (g - 4);
    (1u64 << g) + sub * width + (width - 1)
}

/// A deterministic log-linear latency histogram over microsecond values.
///
/// Pure bucket arithmetic — no clock, no floats in the hot path — so
/// every operation is unit-testable and byte-identical across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; NUM_BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }

    /// Records one microsecond value. Values past [`MAX_TRACKED_US`]
    /// saturate into the top bucket; `count`/`sum_us`/`max_us` stay
    /// exact.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (µs, saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest recorded value (µs), exact (not bucket-quantized).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` (element-wise; order-independent).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The `q`-quantile (`0 < q <= 1`) as the inclusive upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest value; `0`
    /// when empty. Deterministic: a pure function of the bucket counts.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the true maximum (the top buckets
                // are wide; max_us is tracked exactly).
                return bucket_upper_bound(index).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Cumulative counts at each `(µs bound, label)` boundary of
    /// `bounds` (ascending): entry `i` counts the values recorded in
    /// buckets that lie entirely below `bounds[i].0`. Bounds are thereby
    /// quantized to bucket resolution (relative error `<= 1/16`), which
    /// keeps the export a pure function of the bucket counts.
    pub fn cumulative(&self, bounds: &[(u64, &str)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(bounds.len());
        let mut seen = 0u64;
        let mut index = 0usize;
        for &(bound, _) in bounds {
            while index < NUM_BUCKETS && bucket_upper_bound(index) < bound {
                seen += self.counts[index];
                index += 1;
            }
            out.push(seen);
        }
        out
    }
}

/// An open interval of wall time, measured without ever reading a clock:
/// both endpoints are [`Instant`]s injected by the I/O zone.
///
/// The type is deliberately two trivial methods — its value is the
/// discipline it enforces: compute code can *carry* and *subtract*
/// instants but cannot *acquire* one, so a span can never make output
/// depend on timing.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Opens a span at an injected instant.
    pub fn starting_at(start: Instant) -> Self {
        Self { start }
    }

    /// The instant this span opened at.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// Closes the span against another injected instant, returning the
    /// elapsed microseconds (saturating at zero if `end < start`, which
    /// a monotonic clock never produces but a caller-supplied pair may).
    pub fn end_at(self, end: Instant) -> u64 {
        end.checked_duration_since(self.start)
            .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for us in 0..LINEAR_BUCKETS {
            assert_eq!(bucket_index(us), us as usize);
            assert_eq!(bucket_upper_bound(us as usize), us);
        }
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_contain_their_values() {
        let mut prev_upper = None;
        for index in 0..NUM_BUCKETS {
            let upper = bucket_upper_bound(index);
            if let Some(p) = prev_upper {
                assert!(upper > p, "bucket {index} upper {upper} <= previous {p}");
            }
            prev_upper = Some(upper);
            // The upper bound itself must land back in the bucket.
            assert_eq!(bucket_index(upper), index, "upper bound of bucket {index}");
        }
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), MAX_TRACKED_US);
    }

    #[test]
    fn boundary_values_land_in_adjacent_buckets() {
        // Every power-of-two boundary: 2^g - 1 and 2^g are in different
        // buckets, and the quantization error is bounded by width/value
        // <= 1/16.
        for g in 4..(4 + GROUPS) {
            let below = (1u64 << g) - 1;
            let at = 1u64 << g;
            assert_eq!(bucket_index(below) + 1, bucket_index(at), "g={g}");
            let upper = bucket_upper_bound(bucket_index(at));
            assert!(upper - at < at / SUB_BUCKETS + 1, "g={g}: upper {upper}");
        }
    }

    #[test]
    fn saturation_clamps_into_the_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        h.record_us(MAX_TRACKED_US + 1);
        h.record_us(MAX_TRACKED_US);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_us(), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // All three landed in the top bucket; nothing was dropped.
        assert_eq!(h.cumulative(&[(MAX_TRACKED_US, "x")]), vec![0]);
        assert_eq!(h.percentile_us(0.5), bucket_upper_bound(NUM_BUCKETS - 1));
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 5050);
        assert_eq!(h.max_us(), 100);
        // Values 1..=15 are exact; larger ones quantize up by < 1/16.
        assert_eq!(h.percentile_us(0.01), 1);
        assert_eq!(h.percentile_us(0.10), 10);
        let p50 = h.percentile_us(0.50);
        assert!((50..=53).contains(&p50), "p50={p50}");
        let p99 = h.percentile_us(0.99);
        assert!((99..=100).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile_us(1.0), 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_us(0.5), 0);
        assert_eq!(h.percentile_us(1.0), 0);
        assert!(h.cumulative(SCRAPE_BOUNDS_US).iter().all(|&n| n == 0));
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let values_a = [3u64, 17, 250, 9_999, 1_000_000];
        let values_b = [0u64, 15, 16, 250, 77_777_777];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for v in values_a {
            a.record_us(v);
            union.record_us(v);
        }
        for v in values_b {
            b.record_us(v);
            union.record_us(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        // Merge with an empty histogram is the identity.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn cumulative_is_monotonic_and_bounded_by_count() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 50, 200, 800, 30_000, 2_000_000, 40_000_000] {
            h.record_us(us);
        }
        let cum = h.cumulative(SCRAPE_BOUNDS_US);
        for pair in cum.windows(2) {
            assert!(pair[0] <= pair[1], "{cum:?}");
        }
        assert!(*cum.last().unwrap() <= h.count());
        // The 40 s value lies past every bound.
        assert_eq!(*cum.last().unwrap(), 6);
    }

    #[test]
    fn scrape_bounds_are_ascending() {
        for pair in SCRAPE_BOUNDS_US.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn span_subtracts_injected_instants() {
        use std::time::Duration;
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(1500);
        let span = Span::starting_at(t0);
        assert_eq!(span.start(), t0);
        assert_eq!(span.end_at(t1), 1500);
        // A reversed pair saturates to zero instead of panicking.
        assert_eq!(Span::starting_at(t1).end_at(t0), 0);
    }
}

#[cfg(test)]
mod span_props {
    use super::*;
    use crate::exec::{derive_stream, parallel_map, parallel_map_with};
    use proptest::prelude::*;
    use std::time::Duration;

    proptest! {
        /// The byte-invisibility contract as a property: opening,
        /// closing and recording a [`Span`] around every item of a
        /// parallel map leaves the output byte-identical to the
        /// unobserved map, for any worker count, input size and seed.
        /// Spans subtract injected instants and histograms add integers;
        /// neither can steer compute — the observability sibling of
        /// `exec`'s never-firing-token property.
        #[test]
        fn recording_spans_never_changes_compute_bytes(
            threads in 0usize..9,
            len in 0usize..80,
            seed in 0u64..=u64::MAX,
        ) {
            let work = move |i: usize| {
                // Uneven per-item cost so schedules actually differ.
                let mut acc = derive_stream(seed, i as u64);
                for _ in 0..(acc % 512) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            };
            let plain = parallel_map(threads, len, work);
            // Both span endpoints are injected at the call boundary —
            // the compute closure never touches a clock, it only
            // subtracts the instants it was handed and records the
            // difference into per-worker histograms.
            let epoch = Instant::now();
            let observed = parallel_map_with(
                threads,
                len,
                |_worker| LatencyHistogram::new(),
                move |histogram, i| {
                    let span = Span::starting_at(epoch);
                    let out = work(i);
                    let end = epoch + Duration::from_micros((out % 4096) + 1);
                    histogram.record_us(span.end_at(end));
                    out
                },
            );
            prop_assert_eq!(plain, observed);
        }
    }
}

#[cfg(test)]
mod span_unit {
    use super::*;

    #[test]
    fn span_durations_record_into_the_right_buckets() {
        use std::time::Duration;
        let t0 = Instant::now();
        let mut h = LatencyHistogram::new();
        for us in [7u64, 150, 30_000] {
            let span = Span::starting_at(t0);
            h.record_us(span.end_at(t0 + Duration::from_micros(us)));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 7 + 150 + 30_000);
        assert_eq!(h.max_us(), 30_000);
        // 7 µs is in the exact linear range; the rest quantize <= 1/16.
        assert_eq!(h.percentile_us(0.01), 7);
        let p100 = h.percentile_us(1.0);
        assert!((30_000..=30_000 + 30_000 / 16).contains(&p100), "p100={p100}");
    }
}
