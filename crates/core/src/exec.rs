//! Deterministic parallel map over an index space.
//!
//! See the [crate-level docs](crate) for the determinism contract. The
//! scheduler is a self-balancing atomic work queue: workers claim indices
//! with a `fetch_add` and write `(index, value)` pairs into worker-local
//! buffers that are merged by index after the join, so load imbalance
//! between items (orderings from different seeds can differ in cost by
//! orders of magnitude) never idles a thread, and scheduling never leaks
//! into the results.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::cancel::{CancelToken, Cancelled};

/// Resolves a requested worker count against the machine and item count.
///
/// `0` means "all available cores"; the result is clamped to `[1, len]`
/// (never more workers than items, never zero).
pub fn effective_threads(requested: usize, len: usize) -> usize {
    let hw = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    hw.min(len).max(1)
}

/// SplitMix64 stream derivation: maps `(master_seed, index)` to an
/// independent, well-mixed 64-bit seed.
///
/// All randomized item functions running under [`parallel_map_with`] must
/// derive their per-item RNG through this function so that the stream an
/// index sees is a pure function of the master seed and the index — the
/// third leg of the determinism contract.
///
/// # Example
///
/// ```
/// use gtl_core::exec::derive_stream;
///
/// // Stable per (seed, index)…
/// assert_eq!(derive_stream(42, 7), derive_stream(42, 7));
/// // …and decorrelated across indices and seeds.
/// assert_ne!(derive_stream(42, 7), derive_stream(42, 8));
/// assert_ne!(derive_stream(42, 7), derive_stream(43, 7));
/// ```
pub fn derive_stream(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic parallel map with per-worker reusable scratch state.
///
/// Computes `f(&mut scratch, index)` for every `index in 0..len` across
/// `threads` workers (`0` = all cores) and returns the results in index
/// order. `init(worker)` builds each worker's scratch exactly once; the
/// worker id is provided for diagnostics only and must not influence
/// results.
///
/// # Determinism
///
/// The output is identical for every thread count provided `f` is a pure
/// function of `(index, scratch-after-reset)` — see the
/// [crate-level contract](crate).
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker aborts the map).
///
/// # Example
///
/// ```
/// use gtl_core::exec::parallel_map_with;
///
/// // Each worker reuses one scratch buffer across the items it claims;
/// // the item function re-initializes it, so reuse never leaks out.
/// let out = parallel_map_with(
///     4,
///     6,
///     |_worker| Vec::new(),
///     |scratch: &mut Vec<usize>, i| {
///         scratch.clear();
///         scratch.extend(0..=i);
///         scratch.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(out, vec![0, 1, 3, 6, 10, 15]);
/// ```
pub fn parallel_map_with<S, T, I, F>(threads: usize, len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    match map_impl(threads, len, None, init, f) {
        Ok(out) => out,
        Err(_) => unreachable!("a map without a token cannot be cancelled"),
    }
}

/// [`parallel_map_with`] with cooperative cancellation.
///
/// `token` is polled **between items**: workers finish the item they are
/// on, then stop claiming; the call returns within one item's compute of
/// the token firing. When the token never fires, the result is
/// byte-identical to [`parallel_map_with`] for any thread count (the two
/// share one implementation; property-tested in this module).
///
/// # Errors
///
/// [`Cancelled`] (with the firing [`CancelReason`](crate::cancel::CancelReason))
/// once the token fires — even when it fires after the last item
/// completed, so the outcome never depends on a race between completion
/// and cancellation observed elsewhere.
///
/// # Panics
///
/// Propagates panics from `f`, like [`parallel_map_with`].
pub fn parallel_map_with_cancellable<S, T, I, F>(
    threads: usize,
    len: usize,
    token: &CancelToken,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    map_impl(threads, len, Some(token), init, f)
}

/// The shared scheduler behind the cancellable and infallible maps: one
/// code path, so "token never fires" is *structurally* byte-identical to
/// "no token".
fn map_impl<S, T, I, F>(
    threads: usize,
    len: usize,
    token: Option<&CancelToken>,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let checkpoint = crate::cancel::checkpoint;
    if len == 0 {
        checkpoint(token)?;
        return Ok(Vec::new());
    }
    let threads = effective_threads(threads, len);
    if threads == 1 {
        let mut scratch = init(0);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            checkpoint(token)?;
            out.push(f(&mut scratch, i));
        }
        checkpoint(token)?;
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut scratch = init(worker);
                    let mut out = Vec::new();
                    loop {
                        // Poll between items: a fired token stops this
                        // worker from claiming, never from finishing.
                        if token.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= len {
                            break;
                        }
                        out.push((index, f(&mut scratch, index)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("parallel_map worker panicked"));
        }
    });

    // A worker only ever leaves an index unclaimed after its token fired,
    // and the flag is monotonic — so this probe failing is exactly the
    // condition under which the slots below might be incomplete.
    checkpoint(token)?;

    // Merge worker-local buffers back into input order.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for part in parts {
        for (index, value) in part {
            debug_assert!(slots[index].is_none(), "index {index} computed twice");
            slots[index] = Some(value);
        }
    }
    Ok(slots.into_iter().map(|slot| slot.expect("every index is claimed exactly once")).collect())
}

/// Deterministic parallel map without scratch state.
///
/// Shorthand for [`parallel_map_with`] with unit scratch; same determinism
/// contract and panic behavior.
///
/// # Example
///
/// ```
/// use gtl_core::exec::parallel_map;
///
/// // Results come back in index order for any worker count.
/// assert_eq!(parallel_map(8, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
/// assert_eq!(parallel_map(1, 5, |i| i * i), parallel_map(3, 5, |i| i * i));
/// ```
pub fn parallel_map<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(threads, len, |_| (), |(), i| f(i))
}

/// [`parallel_map`] with cooperative cancellation; shorthand for
/// [`parallel_map_with_cancellable`] with unit scratch (same polling,
/// determinism and error contract).
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
///
/// # Example
///
/// ```
/// use gtl_core::cancel::CancelToken;
/// use gtl_core::exec::{parallel_map, parallel_map_cancellable};
///
/// let live = CancelToken::new();
/// let out = parallel_map_cancellable(4, 5, &live, |i| i * i).unwrap();
/// assert_eq!(out, parallel_map(4, 5, |i| i * i));
///
/// let tripped = CancelToken::new();
/// tripped.cancel();
/// assert!(parallel_map_cancellable(4, 5, &tripped, |i| i * i).is_err());
/// ```
pub fn parallel_map_cancellable<T, F>(
    threads: usize,
    len: usize,
    token: &CancelToken,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with_cancellable(threads, len, token, |_| (), |(), i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        // Uneven per-item cost to force different schedules.
        let work = |i: usize| {
            let mut acc = derive_stream(42, i as u64);
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let baseline = parallel_map(1, 200, work);
        for threads in [2, 4, 8] {
            assert_eq!(parallel_map(threads, 200, work), baseline, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker() {
        let builds = AtomicUsize::new(0);
        let out = parallel_map_with(
            3,
            50,
            |_worker| {
                builds.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, i| {
                *scratch += 1; // scratch persists across items…
                i as u64 // …but must not influence results.
            },
        );
        assert_eq!(out, (0..50).map(|i| i as u64).collect::<Vec<_>>());
        assert!(builds.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(64, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(4, 100), 4);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 1_000_000) >= 1);
    }

    #[test]
    fn derive_stream_separates_indices_and_seeds() {
        assert_ne!(derive_stream(1, 0), derive_stream(1, 1));
        assert_ne!(derive_stream(1, 0), derive_stream(2, 0));
        assert_eq!(derive_stream(7, 9), derive_stream(7, 9));
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(2, 10, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn pre_cancelled_token_errors_without_computing() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        for threads in [1, 4] {
            let result = parallel_map_cancellable(threads, 100, &token, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(
                result.unwrap_err().reason,
                crate::cancel::CancelReason::Cancelled,
                "threads={threads}"
            );
        }
        // Serial path polls before every item; parallel workers poll
        // before claiming — a pre-tripped token admits no work at all.
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancelling_mid_map_stops_claiming() {
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let result = parallel_map_cancellable(2, 1_000, &token, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                token.cancel();
            }
            i
        });
        assert!(result.is_err());
        // Workers finish their in-flight item but claim nothing new:
        // far fewer than all items run (each worker can overshoot by at
        // most the one item it was on when the flag tripped).
        assert!(ran.load(Ordering::Relaxed) < 1_000, "cancellation did not stop the map");
    }

    #[test]
    fn cancelled_empty_map_still_reports_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let result: Result<Vec<u32>, _> =
            parallel_map_cancellable(4, 0, &token, |_| unreachable!());
        assert!(result.is_err());
    }

    #[test]
    fn deadline_token_trips_the_map() {
        let token =
            CancelToken::with_deadline(crate::cancel::Deadline::at(std::time::Instant::now()));
        let err = parallel_map_cancellable(3, 50, &token, |i| i).unwrap_err();
        assert_eq!(err.reason, crate::cancel::CancelReason::DeadlineExceeded);
    }

    #[test]
    fn live_token_leaves_results_identical_with_scratch() {
        let token = CancelToken::new();
        let init = |_worker: usize| Vec::<usize>::new();
        let item = |scratch: &mut Vec<usize>, i: usize| {
            scratch.clear();
            scratch.extend(0..=i);
            scratch.iter().sum::<usize>()
        };
        let plain = parallel_map_with(4, 64, init, item);
        let cancellable = parallel_map_with_cancellable(4, 64, &token, init, item).unwrap();
        assert_eq!(plain, cancellable);
    }
}

#[cfg(test)]
mod cancellable_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tentpole determinism property: a token that never fires
        /// leaves `parallel_map_cancellable` byte-identical to
        /// `parallel_map`, for any worker count and input size.
        #[test]
        fn never_firing_token_is_invisible(
            threads in 0usize..9,
            len in 0usize..80,
            seed in 0u64..=u64::MAX,
        ) {
            let work = move |i: usize| {
                // Uneven per-item cost so schedules actually differ.
                let mut acc = derive_stream(seed, i as u64);
                for _ in 0..(acc % 512) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            };
            let token = CancelToken::new();
            let plain = parallel_map(threads, len, work);
            let cancellable = parallel_map_cancellable(threads, len, &token, work).unwrap();
            prop_assert_eq!(plain, cancellable);
        }
    }
}
