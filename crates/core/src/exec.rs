//! Deterministic parallel map over an index space.
//!
//! See the [crate-level docs](crate) for the determinism contract. The
//! scheduler is a self-balancing atomic work queue: workers claim *chunks*
//! of contiguous indices with a `fetch_add` and write `(index, value)`
//! pairs into worker-local buffers that are merged by index after the
//! join, so load imbalance between items (orderings from different seeds
//! can differ in cost by orders of magnitude) never idles a thread, and
//! scheduling never leaks into the results.
//!
//! # Scheduling granularity
//!
//! Every map claims the index space in contiguous chunks. The classic
//! entry points ([`parallel_map`], [`parallel_map_with`], …) claim one
//! item at a time ([`Granularity::Items`]`(1)` — maximum load-balancing
//! slack); the `*_chunked` variants take an explicit [`Granularity`] so
//! large maps can amortize claim traffic, per-chunk cancellation polling
//! and per-worker cache churn over many items. Two invariants make chunk
//! size a pure tuning knob:
//!
//! * chunk boundaries are a pure function of `(len, chunk_size)` — chunk
//!   `k` always covers `[k·c, min(len, (k+1)·c))` — never of the worker
//!   count or the machine;
//! * per-item work is unchanged: item `i` computes `f(scratch, i)` with
//!   its RNG still derived as `derive_stream(master_seed, i)`.
//!
//! Together with the merge-by-index join, the output is byte-identical
//! for **any** `(threads, chunk_size)` pair — property-tested in this
//! module across threads × chunk sizes × token presence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::cancel::{CancelToken, Cancelled};

/// Environment variable forcing the [`Granularity::Auto`] chunk size, for
/// CI determinism runs that re-execute the identity suites at a
/// non-default grain. Explicit [`Granularity::Items`] requests are never
/// overridden. Chunk size cannot affect results (see the
/// [module docs](self)), so this is a scheduling knob, not a correctness
/// one.
pub const CHUNK_ENV: &str = "GTL_EXEC_CHUNK";

/// How a map partitions its index space into scheduler claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Chunk size picked by [`auto_chunk`] from the item count (honoring
    /// the [`CHUNK_ENV`] override). The right default for every call
    /// site that has no measured reason to override.
    #[default]
    Auto,
    /// Fixed chunk size in items (clamped to at least 1).
    Items(usize),
}

/// The auto-chunk heuristic: the chunk size [`Granularity::Auto`]
/// resolves to for an `len`-item map.
///
/// A pure function of `len` alone — **never** of the worker count or the
/// machine — so the decomposition it induces is part of the deterministic
/// schedule shape, not of the hardware. It aims at ~128 claims per map:
/// small maps (the finder's per-seed searches, tile stripes) keep
/// per-item claims and maximum load-balancing slack, while maps with
/// thousands of cheap items get chunks that amortize the atomic claim
/// and the per-chunk cancellation poll.
///
/// # Example
///
/// ```
/// use gtl_core::exec::auto_chunk;
///
/// assert_eq!(auto_chunk(64), 1); // small maps: per-item claims
/// assert_eq!(auto_chunk(1_280), 10); // large maps: ~128 claims
/// ```
pub fn auto_chunk(len: usize) -> usize {
    (len / 128).max(1)
}

/// Cached [`CHUNK_ENV`] override (`None` when unset or unparseable).
fn chunk_override() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(CHUNK_ENV).ok().and_then(|s| s.parse::<usize>().ok()).filter(|&c| c >= 1)
    })
}

/// Resolves a [`Granularity`] to a concrete chunk size for `len` items.
fn resolve_chunk(granularity: Granularity, len: usize) -> usize {
    match granularity {
        Granularity::Items(c) => c.max(1),
        Granularity::Auto => chunk_override().unwrap_or_else(|| auto_chunk(len)),
    }
}

/// Resolves a requested worker count against the machine and item count.
///
/// `0` means "all available cores"; any request is capped at the
/// machine's available parallelism (a thread-count knob is an upper
/// bound on concurrency, never a demand to oversubscribe — two workers
/// timesharing one core only add switching and cache-thrash overhead)
/// and the result is clamped to `[1, len]` (never more workers than
/// claims, never zero). Worker count cannot affect results, so the cap
/// is invisible in the output.
pub fn effective_threads(requested: usize, len: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let req = if requested == 0 { hw } else { requested.min(hw) };
    req.min(len).max(1)
}

/// SplitMix64 stream derivation: maps `(master_seed, index)` to an
/// independent, well-mixed 64-bit seed.
///
/// All randomized item functions running under [`parallel_map_with`] must
/// derive their per-item RNG through this function so that the stream an
/// index sees is a pure function of the master seed and the index — the
/// third leg of the determinism contract.
///
/// # Example
///
/// ```
/// use gtl_core::exec::derive_stream;
///
/// // Stable per (seed, index)…
/// assert_eq!(derive_stream(42, 7), derive_stream(42, 7));
/// // …and decorrelated across indices and seeds.
/// assert_ne!(derive_stream(42, 7), derive_stream(42, 8));
/// assert_ne!(derive_stream(42, 7), derive_stream(43, 7));
/// ```
pub fn derive_stream(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic parallel map with per-worker reusable scratch state.
///
/// Computes `f(&mut scratch, index)` for every `index in 0..len` across
/// `threads` workers (`0` = all cores, capped at the machine) and returns
/// the results in index order. `init(worker)` builds each worker's
/// scratch exactly once; the worker id is provided for diagnostics only
/// and must not influence results. Claims one item at a time — use
/// [`parallel_map_chunked_with`] to pick a coarser grain.
///
/// # Determinism
///
/// The output is identical for every thread count provided `f` is a pure
/// function of `(index, scratch-after-reset)` — see the
/// [crate-level contract](crate).
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker aborts the map).
///
/// # Example
///
/// ```
/// use gtl_core::exec::parallel_map_with;
///
/// // Each worker reuses one scratch buffer across the items it claims;
/// // the item function re-initializes it, so reuse never leaks out.
/// let out = parallel_map_with(
///     4,
///     6,
///     |_worker| Vec::new(),
///     |scratch: &mut Vec<usize>, i| {
///         scratch.clear();
///         scratch.extend(0..=i);
///         scratch.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(out, vec![0, 1, 3, 6, 10, 15]);
/// ```
pub fn parallel_map_with<S, T, I, F>(threads: usize, len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    parallel_map_chunked_with(threads, len, Granularity::Items(1), init, f)
}

/// [`parallel_map_with`] with an explicit scheduling [`Granularity`].
///
/// Workers claim contiguous chunks of the index space instead of single
/// items, amortizing the atomic claim, the per-chunk cancellation poll
/// and per-worker scratch/cache churn over `chunk_size` items. The chunk
/// decomposition is a pure function of `(len, chunk_size)` — never of
/// the worker count — and per-item work is unchanged, so the output is
/// byte-identical to [`parallel_map_with`] for every
/// `(threads, granularity)` pair (property-tested in this module).
///
/// # Panics
///
/// Propagates panics from `f`, like [`parallel_map_with`].
///
/// # Example
///
/// ```
/// use gtl_core::exec::{parallel_map_chunked_with, Granularity};
///
/// let out = parallel_map_chunked_with(
///     2,
///     10,
///     Granularity::Items(4), // claims: [0..4), [4..8), [8..10)
///     |_worker| (),
///     |(), i| i * 3,
/// );
/// assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
/// ```
pub fn parallel_map_chunked_with<S, T, I, F>(
    threads: usize,
    len: usize,
    granularity: Granularity,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    match run_map(threads, len, granularity, None, init, f) {
        Ok(out) => out,
        Err(_) => unreachable!("a map without a token cannot be cancelled"),
    }
}

/// [`parallel_map_with`] with cooperative cancellation.
///
/// `token` is polled **between claims**: workers finish the chunk they
/// are on (one item, for the per-item entry points), then stop claiming;
/// the call returns within one claim's compute of the token firing. When
/// the token never fires, the result is byte-identical to
/// [`parallel_map_with`] for any thread count (the two share one
/// implementation; property-tested in this module).
///
/// # Errors
///
/// [`Cancelled`] (with the firing [`CancelReason`](crate::cancel::CancelReason))
/// once the token fires — even when it fires after the last item
/// completed, so the outcome never depends on a race between completion
/// and cancellation observed elsewhere.
///
/// # Panics
///
/// Propagates panics from `f`, like [`parallel_map_with`].
pub fn parallel_map_with_cancellable<S, T, I, F>(
    threads: usize,
    len: usize,
    token: &CancelToken,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_map(threads, len, Granularity::Items(1), Some(token), init, f)
}

/// [`parallel_map_chunked_with`] with cooperative cancellation: the
/// token is polled between chunk claims (workers always finish the chunk
/// they are on), and a never-firing token is byte-invisible for every
/// `(threads, granularity)` pair.
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
///
/// # Panics
///
/// Propagates panics from `f`, like [`parallel_map_with`].
pub fn parallel_map_chunked_with_cancellable<S, T, I, F>(
    threads: usize,
    len: usize,
    granularity: Granularity,
    token: &CancelToken,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_map(threads, len, granularity, Some(token), init, f)
}

/// Resolves the chunk size and worker count, then runs the shared
/// scheduler — one code path behind every public map, so "token never
/// fires" and "chunk size changed" are *structurally* byte-identical to
/// the plain per-item map.
fn run_map<S, T, I, F>(
    threads: usize,
    len: usize,
    granularity: Granularity,
    token: Option<&CancelToken>,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let checkpoint = crate::cancel::checkpoint;
    if len == 0 {
        checkpoint(token)?;
        return Ok(Vec::new());
    }
    let chunk = resolve_chunk(granularity, len);
    let num_chunks = len.div_ceil(chunk);
    let workers = effective_threads(threads, num_chunks);
    map_impl(workers, len, chunk, token, init, f)
}

/// The scheduler core. `workers` is the already-resolved worker count
/// (≥ 1), `chunk` the already-resolved chunk size (≥ 1), and `len > 0`.
/// Kept separate from [`run_map`] so the in-module tests can force
/// worker counts beyond the machine's cores and still exercise the
/// multi-worker claim/merge path on any box.
fn map_impl<S, T, I, F>(
    workers: usize,
    len: usize,
    chunk: usize,
    token: Option<&CancelToken>,
    init: I,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let checkpoint = crate::cancel::checkpoint;
    let num_chunks = len.div_ceil(chunk);
    if workers == 1 {
        let mut scratch = init(0);
        let mut out = Vec::with_capacity(len);
        for c in 0..num_chunks {
            // Same polling cadence as a parallel worker: once per claim.
            checkpoint(token)?;
            for i in c * chunk..((c + 1) * chunk).min(len) {
                out.push(f(&mut scratch, i));
            }
        }
        checkpoint(token)?;
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut scratch = init(worker);
                    let mut out = Vec::new();
                    loop {
                        // Poll between claims: a fired token stops this
                        // worker from claiming, never from finishing
                        // the chunk it is on.
                        if token.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        for i in c * chunk..((c + 1) * chunk).min(len) {
                            out.push((i, f(&mut scratch, i)));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            // Re-raise the worker's own panic payload so the message a
            // caller observes does not depend on the resolved worker
            // count (the serial path propagates `f`'s panic directly).
            parts.push(handle.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)));
        }
    });

    // A worker only ever leaves a chunk unclaimed after its token fired,
    // and the flag is monotonic — so this probe failing is exactly the
    // condition under which the slots below might be incomplete.
    checkpoint(token)?;

    // Merge worker-local buffers back into input order.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for part in parts {
        for (index, value) in part {
            debug_assert!(slots[index].is_none(), "index {index} computed twice");
            slots[index] = Some(value);
        }
    }
    Ok(slots.into_iter().map(|slot| slot.expect("every index is claimed exactly once")).collect())
}

/// Deterministic parallel map without scratch state.
///
/// Shorthand for [`parallel_map_with`] with unit scratch; same determinism
/// contract and panic behavior.
///
/// # Example
///
/// ```
/// use gtl_core::exec::parallel_map;
///
/// // Results come back in index order for any worker count.
/// assert_eq!(parallel_map(8, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
/// assert_eq!(parallel_map(1, 5, |i| i * i), parallel_map(3, 5, |i| i * i));
/// ```
pub fn parallel_map<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(threads, len, |_| (), |(), i| f(i))
}

/// [`parallel_map`] with an explicit scheduling [`Granularity`];
/// shorthand for [`parallel_map_chunked_with`] with unit scratch (same
/// determinism contract — the output never depends on the granularity).
///
/// # Example
///
/// ```
/// use gtl_core::exec::{parallel_map, parallel_map_chunked, Granularity};
///
/// let auto = parallel_map_chunked(4, 300, Granularity::Auto, |i| i + 1);
/// let fixed = parallel_map_chunked(2, 300, Granularity::Items(7), |i| i + 1);
/// assert_eq!(auto, parallel_map(1, 300, |i| i + 1));
/// assert_eq!(auto, fixed);
/// ```
pub fn parallel_map_chunked<T, F>(
    threads: usize,
    len: usize,
    granularity: Granularity,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_chunked_with(threads, len, granularity, |_| (), |(), i| f(i))
}

/// [`parallel_map`] with cooperative cancellation; shorthand for
/// [`parallel_map_with_cancellable`] with unit scratch (same polling,
/// determinism and error contract).
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
///
/// # Example
///
/// ```
/// use gtl_core::cancel::CancelToken;
/// use gtl_core::exec::{parallel_map, parallel_map_cancellable};
///
/// let live = CancelToken::new();
/// let out = parallel_map_cancellable(4, 5, &live, |i| i * i).unwrap();
/// assert_eq!(out, parallel_map(4, 5, |i| i * i));
///
/// let tripped = CancelToken::new();
/// tripped.cancel();
/// assert!(parallel_map_cancellable(4, 5, &tripped, |i| i * i).is_err());
/// ```
pub fn parallel_map_cancellable<T, F>(
    threads: usize,
    len: usize,
    token: &CancelToken,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with_cancellable(threads, len, token, |_| (), |(), i| f(i))
}

/// [`parallel_map_chunked`] with cooperative cancellation; shorthand for
/// [`parallel_map_chunked_with_cancellable`] with unit scratch.
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
pub fn parallel_map_chunked_cancellable<T, F>(
    threads: usize,
    len: usize,
    granularity: Granularity,
    token: &CancelToken,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_chunked_with_cancellable(threads, len, granularity, token, |_| (), |(), i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    /// Uneven per-item cost to force different schedules.
    fn uneven(seed: u64) -> impl Fn(usize) -> u64 + Sync + Copy {
        move |i: usize| {
            let mut acc = derive_stream(seed, i as u64);
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let work = uneven(42);
        let baseline = parallel_map(1, 200, work);
        for threads in [2, 4, 8] {
            assert_eq!(parallel_map(threads, 200, work), baseline, "threads={threads}");
        }
        // The public entry points cap workers at the machine; force the
        // multi-worker claim/merge path directly so this holds even on a
        // single-core box.
        for workers in [2, 3, 5] {
            let forced =
                map_impl(workers, 200, 1, None, |_| (), |(), i| work(i)).expect("no token");
            assert_eq!(forced, baseline, "workers={workers}");
        }
    }

    #[test]
    fn chunk_size_does_not_change_output() {
        let work = uneven(7);
        let baseline = parallel_map(1, 150, work);
        for chunk in [1, 2, 3, 7, 64, 150, 1000] {
            for workers in [1, 2, 4] {
                let out =
                    map_impl(workers, 150, chunk, None, |_| (), |(), i| work(i)).expect("no token");
                assert_eq!(out, baseline, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunked_public_entry_points_match_per_item() {
        let work = uneven(3);
        let baseline = parallel_map(2, 90, work);
        for granularity in [Granularity::Auto, Granularity::Items(4), Granularity::Items(0)] {
            assert_eq!(parallel_map_chunked(2, 90, granularity, work), baseline, "{granularity:?}");
            let token = CancelToken::new();
            let cancellable =
                parallel_map_chunked_cancellable(2, 90, granularity, &token, work).unwrap();
            assert_eq!(cancellable, baseline, "{granularity:?} cancellable");
        }
    }

    #[test]
    fn auto_chunk_is_a_pure_function_of_len() {
        // Pinned heuristic: ~128 claims, at least one item per chunk.
        for (len, expected) in [
            (0, 1),
            (1, 1),
            (64, 1),
            (127, 1),
            (128, 1),
            (129, 1),
            (256, 2),
            (1_280, 10),
            (1_000_000, 7_812),
        ] {
            assert_eq!(auto_chunk(len), expected, "len={len}");
            // Same len, same answer — no hidden machine/worker input.
            assert_eq!(auto_chunk(len), auto_chunk(len));
        }
        // The induced decomposition covers the index space exactly.
        for len in [1usize, 5, 127, 128, 129, 1_000] {
            let c = auto_chunk(len);
            let covered: usize = (0..len.div_ceil(c)).map(|k| ((k + 1) * c).min(len) - k * c).sum();
            assert_eq!(covered, len, "len={len} chunk={c}");
        }
    }

    #[test]
    fn scratch_is_built_once_per_worker() {
        let builds = AtomicUsize::new(0);
        let out = parallel_map_with(
            3,
            50,
            |_worker| {
                builds.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, i| {
                *scratch += 1; // scratch persists across items…
                i as u64 // …but must not influence results.
            },
        );
        assert_eq!(out, (0..50).map(|i| i as u64).collect::<Vec<_>>());
        assert!(builds.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(64, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn effective_threads_clamps() {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Requests are capped at the machine: never oversubscribe.
        assert_eq!(effective_threads(4, 2), 4.min(hw).min(2));
        assert_eq!(effective_threads(4, 100), 4.min(hw));
        assert_eq!(effective_threads(usize::MAX, 100), hw.min(100));
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 1_000_000) >= 1);
        assert!(effective_threads(0, 1_000_000) <= hw);
    }

    #[test]
    fn derive_stream_separates_indices_and_seeds() {
        assert_ne!(derive_stream(1, 0), derive_stream(1, 1));
        assert_ne!(derive_stream(1, 0), derive_stream(2, 0));
        assert_eq!(derive_stream(7, 9), derive_stream(7, 9));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        // The original payload must survive the join on the multi-worker
        // path (forced, so the test is meaningful on single-core boxes).
        let _ = map_impl(
            2,
            10,
            1,
            None,
            |_| (),
            |(), i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            },
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn serial_panic_propagates() {
        let _ = parallel_map(1, 10, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn pre_cancelled_token_errors_without_computing() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        for threads in [1, 4] {
            let result = parallel_map_cancellable(threads, 100, &token, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(
                result.unwrap_err().reason,
                crate::cancel::CancelReason::Cancelled,
                "threads={threads}"
            );
        }
        // Serial and parallel workers both poll before every claim — a
        // pre-tripped token admits no work at all.
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancelling_mid_map_stops_claiming() {
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let result = map_impl(
            2,
            1_000,
            1,
            Some(&token),
            |_| (),
            |(), i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    token.cancel();
                }
                i
            },
        );
        assert!(result.is_err());
        // Workers finish their in-flight claim but take nothing new:
        // far fewer than all items run (each worker can overshoot by at
        // most the one chunk it was on when the flag tripped).
        assert!(ran.load(Ordering::Relaxed) < 1_000, "cancellation did not stop the map");
    }

    #[test]
    fn cancelling_mid_chunk_finishes_the_claimed_chunk() {
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let result = map_impl(
            2,
            1_000,
            10,
            Some(&token),
            |_| (),
            |(), i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    token.cancel();
                }
                i
            },
        );
        assert!(result.is_err());
        let ran = ran.load(Ordering::Relaxed);
        // The worker that tripped the token still finishes its 10-item
        // chunk; nothing claims a fresh chunk afterwards, so the overshoot
        // is bounded by one chunk per worker.
        assert!((10..=40).contains(&ran), "ran {ran} items");
    }

    #[test]
    fn cancelled_empty_map_still_reports_cancellation() {
        let token = CancelToken::new();
        token.cancel();
        let result: Vec<u32> = Vec::new();
        let err: Result<Vec<u32>, _> = parallel_map_cancellable(4, 0, &token, |_| unreachable!());
        assert!(err.is_err());
        drop(result);
    }

    #[test]
    fn deadline_token_trips_the_map() {
        let token =
            CancelToken::with_deadline(crate::cancel::Deadline::at(std::time::Instant::now()));
        let err = parallel_map_cancellable(3, 50, &token, |i| i).unwrap_err();
        assert_eq!(err.reason, crate::cancel::CancelReason::DeadlineExceeded);
    }

    #[test]
    fn live_token_leaves_results_identical_with_scratch() {
        let token = CancelToken::new();
        let init = |_worker: usize| Vec::<usize>::new();
        let item = |scratch: &mut Vec<usize>, i: usize| {
            scratch.clear();
            scratch.extend(0..=i);
            scratch.iter().sum::<usize>()
        };
        let plain = parallel_map_with(4, 64, init, item);
        let cancellable = parallel_map_with_cancellable(4, 64, &token, init, item).unwrap();
        assert_eq!(plain, cancellable);
        let chunked = parallel_map_chunked_with(4, 64, Granularity::Items(5), init, item);
        assert_eq!(plain, chunked);
    }
}

#[cfg(test)]
mod cancellable_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tentpole determinism property: a token that never fires
        /// leaves `parallel_map_cancellable` byte-identical to
        /// `parallel_map`, for any worker count and input size.
        #[test]
        fn never_firing_token_is_invisible(
            threads in 0usize..9,
            len in 0usize..80,
            seed in 0u64..=u64::MAX,
        ) {
            let work = move |i: usize| {
                // Uneven per-item cost so schedules actually differ.
                let mut acc = derive_stream(seed, i as u64);
                for _ in 0..(acc % 512) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            };
            let token = CancelToken::new();
            let plain = parallel_map(threads, len, work);
            let cancellable = parallel_map_cancellable(threads, len, &token, work).unwrap();
            prop_assert_eq!(plain, cancellable);
        }

        /// The chunked-scheduling extension of the property above:
        /// byte-identity across forced worker counts × chunk sizes ×
        /// token presence. Drives `map_impl` directly so the
        /// multi-worker path runs even on single-core machines (the
        /// public entry points cap workers at the hardware).
        #[test]
        fn chunking_is_invisible_for_any_worker_count(
            workers in 1usize..5,
            chunk in 1usize..70,
            len in 0usize..80,
            with_token in 0u8..2,
            seed in 0u64..=u64::MAX,
        ) {
            let work = move |i: usize| {
                let mut acc = derive_stream(seed, i as u64);
                for _ in 0..(acc % 512) {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            };
            let baseline = parallel_map(1, len, work);
            let token = CancelToken::new();
            let out = if len == 0 {
                Vec::new()
            } else {
                let tok = (with_token == 1).then_some(&token);
                map_impl(workers, len, chunk, tok, |_| (), |(), i| work(i)).unwrap()
            };
            prop_assert_eq!(out, baseline);
        }
    }
}
