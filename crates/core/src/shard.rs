//! Deterministic spatial partitioning: region shards and tile stripes.
//!
//! The execution layer ([`exec`](crate::exec)) answers *how* work is fanned
//! out; this module answers *what* the work items are for spatial
//! algorithms. Two decompositions cover the workspace's physical-design
//! clients:
//!
//! * [`ShardGrid`] — an `nx × ny` grid of rectangular region shards over a
//!   die. The quadratic placer partitions cells by position into shards
//!   and solves each shard's system as one work item.
//! * [`stripes`] — contiguous index ranges ("stripes" of tile rows) over a
//!   1-D index space. The congestion estimator deposits each stripe's
//!   routing demand as one work item.
//!
//! Both decompositions are pure functions of their inputs — never of the
//! worker count — so they compose with the determinism contract of
//! [`exec::parallel_map_with`](crate::exec::parallel_map_with): the same
//! die and the same positions produce the same shards (and therefore the
//! same results) for 1, 2 or 8 workers.

/// An `nx × ny` grid of rectangular shards tiling a `width × height`
/// region.
///
/// Shard indices are row-major: shard `sy * nx + sx` covers
/// `[sx·width/nx, (sx+1)·width/nx) × [sy·height/ny, (sy+1)·height/ny)`,
/// with points on or beyond the outer boundary clamped into the last
/// row/column.
///
/// # Example
///
/// ```
/// use gtl_core::shard::ShardGrid;
///
/// let grid = ShardGrid::square(2, 10.0, 10.0);
/// assert_eq!(grid.len(), 4);
/// assert_eq!(grid.shard_of(1.0, 1.0), 0);
/// assert_eq!(grid.shard_of(9.0, 1.0), 1);
/// assert_eq!(grid.shard_of(1.0, 9.0), 2);
/// // Out-of-range points clamp into the boundary shards.
/// assert_eq!(grid.shard_of(99.0, 99.0), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardGrid {
    nx: usize,
    ny: usize,
    width: f64,
    height: f64,
}

impl ShardGrid {
    /// Builds an `nx × ny` grid over a `width × height` region.
    ///
    /// # Panics
    ///
    /// Panics if either grid side is zero or either dimension is not
    /// strictly positive and finite.
    pub fn new(nx: usize, ny: usize, width: f64, height: f64) -> Self {
        assert!(nx > 0 && ny > 0, "shard grid sides must be positive");
        assert!(
            width > 0.0 && width.is_finite() && height > 0.0 && height.is_finite(),
            "region dimensions must be positive and finite"
        );
        Self { nx, ny, width, height }
    }

    /// A square `g × g` grid (the common case for square dies).
    pub fn square(g: usize, width: f64, height: f64) -> Self {
        Self::new(g, g, width, height)
    }

    /// Number of shards (`nx × ny`).
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true: sides are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grid width in shards.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in shards.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Row-major index of the shard containing `(x, y)`, clamping points
    /// outside the region into the boundary shards.
    pub fn shard_of(&self, x: f64, y: f64) -> usize {
        let sx = ((x / self.width * self.nx as f64) as usize).min(self.nx - 1);
        let sy = ((y / self.height * self.ny as f64) as usize).min(self.ny - 1);
        sy * self.nx + sx
    }

    /// Partitions item indices `0..xs.len()` into per-shard lists by
    /// position. Within each shard, indices stay in ascending order, so
    /// the partition (and any computation consuming it in shard-then-index
    /// order) is canonical.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length.
    pub fn partition(&self, xs: &[f64], ys: &[f64]) -> Vec<Vec<u32>> {
        assert_eq!(xs.len(), ys.len(), "coordinate slices must match");
        let mut shards: Vec<Vec<u32>> = vec![Vec::new(); self.len()];
        for i in 0..xs.len() {
            shards[self.shard_of(xs[i], ys[i])].push(i as u32);
        }
        shards
    }
}

/// Picks a square shard-grid side for `items` work units aiming at
/// `target_per_shard` units per shard, clamped to `[1, max_grid]`.
///
/// The result depends only on the arguments — callers must *not* feed a
/// thread count in here, or the decomposition (and with it the output)
/// would change with the machine.
///
/// # Example
///
/// ```
/// use gtl_core::shard::auto_grid;
///
/// assert_eq!(auto_grid(500, 10_000, 16), 1); // small: one global shard
/// assert_eq!(auto_grid(90_000, 10_000, 16), 3); // 9 shards of ~10k
/// assert_eq!(auto_grid(10_000_000, 10_000, 16), 16); // clamped
/// ```
pub fn auto_grid(items: usize, target_per_shard: usize, max_grid: usize) -> usize {
    let target = target_per_shard.max(1) as f64;
    let g = (items as f64 / target).sqrt().ceil() as usize;
    g.clamp(1, max_grid.max(1))
}

/// Default stripe height (rows per stripe) for the workspace's tile-grid
/// clients (congestion estimation, density maps). One shared constant so
/// their decompositions cannot silently diverge; it must stay a fixed
/// value — never derived from the worker count — to keep results
/// machine-independent.
pub const DEFAULT_STRIPE_ROWS: usize = 4;

/// Splits `0..len` into contiguous stripes of at most `stripe_len`
/// indices (the last stripe may be shorter).
///
/// # Panics
///
/// Panics if `stripe_len == 0`.
///
/// # Example
///
/// ```
/// use gtl_core::shard::stripes;
///
/// assert_eq!(stripes(10, 4), vec![0..4, 4..8, 8..10]);
/// assert_eq!(stripes(0, 4), Vec::<std::ops::Range<usize>>::new());
/// ```
pub fn stripes(len: usize, stripe_len: usize) -> Vec<std::ops::Range<usize>> {
    assert!(stripe_len > 0, "stripe_len must be positive");
    (0..len.div_ceil(stripe_len)).map(|s| s * stripe_len..((s + 1) * stripe_len).min(len)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_covers_grid_row_major() {
        let grid = ShardGrid::new(3, 2, 30.0, 20.0);
        assert_eq!(grid.len(), 6);
        assert_eq!((grid.nx(), grid.ny()), (3, 2));
        assert_eq!(grid.shard_of(5.0, 5.0), 0);
        assert_eq!(grid.shard_of(15.0, 5.0), 1);
        assert_eq!(grid.shard_of(25.0, 5.0), 2);
        assert_eq!(grid.shard_of(5.0, 15.0), 3);
        assert_eq!(grid.shard_of(29.9, 19.9), 5);
    }

    #[test]
    fn shard_of_clamps_outliers() {
        let grid = ShardGrid::square(4, 8.0, 8.0);
        assert_eq!(grid.shard_of(-3.0, -3.0), 0);
        assert_eq!(grid.shard_of(8.0, 8.0), grid.len() - 1);
        assert_eq!(grid.shard_of(1e12, 0.0), 3);
    }

    #[test]
    fn partition_is_ascending_within_shards_and_complete() {
        let grid = ShardGrid::square(2, 10.0, 10.0);
        let xs = [1.0, 9.0, 1.0, 9.0, 2.0, 2.0];
        let ys = [1.0, 1.0, 9.0, 9.0, 1.0, 1.0];
        let shards = grid.partition(&xs, &ys);
        assert_eq!(shards[0], vec![0, 4, 5]);
        assert_eq!(shards[1], vec![1]);
        assert_eq!(shards[2], vec![2]);
        assert_eq!(shards[3], vec![3]);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, xs.len());
    }

    #[test]
    fn auto_grid_scales_with_sqrt() {
        assert_eq!(auto_grid(0, 100, 8), 1);
        assert_eq!(auto_grid(100, 100, 8), 1);
        assert_eq!(auto_grid(401, 100, 8), 3);
        assert_eq!(auto_grid(usize::MAX, 1, 8), 8);
        assert_eq!(auto_grid(50, 0, 8), 8); // target clamps to 1
    }

    #[test]
    fn stripes_partition_exactly() {
        for (len, sl) in [(1usize, 1usize), (7, 3), (12, 4), (5, 100)] {
            let ranges = stripes(len, sl);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.len() <= sl && !r.is_empty());
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_rejected() {
        let _ = ShardGrid::new(0, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "stripe_len")]
    fn zero_stripe_rejected() {
        let _ = stripes(5, 0);
    }
}
