//! Small blocking synchronization primitives for bounded-admission
//! services.
//!
//! [`exec`](crate::exec) covers deterministic *compute* fan-out; this
//! module covers the complementary need of a long-running service front:
//! bounding how much work is admitted at once. [`BoundedQueue`] is a
//! blocking FIFO with a hard capacity — producers stall when consumers
//! fall behind (backpressure), instead of queueing unboundedly.
//! [`Semaphore`] is a counting gate for limiting concurrent holders of a
//! resource (e.g. live connections).
//!
//! Both are deliberately simple `Mutex` + `Condvar` constructions: the
//! workloads they guard (finder/placer requests) run for milliseconds to
//! seconds, so lock-free cleverness would buy nothing. Neither primitive
//! influences computation results — they only schedule *when* work runs,
//! never *what* it produces.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A blocking multi-producer multi-consumer FIFO queue with a fixed
/// capacity.
///
/// [`push`](BoundedQueue::push) blocks while the queue is full — that is
/// the backpressure edge of a bounded service — and
/// [`pop`](BoundedQueue::pop) blocks while it is empty. Closing the queue
/// wakes everyone: pending and future pushes report failure, pops drain
/// the remaining items and then return `None`.
///
/// # Example
///
/// ```
/// use gtl_core::sync::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// q.close();
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None); // closed and drained
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signaled when an item is popped or the queue closes (push waiters).
    not_full: Condvar,
    /// Signaled when an item is pushed or the queue closes (pop waiters).
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity rendezvous is never
    /// what the service layer wants).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue capacity must be positive");
        Self {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items (a racy snapshot, for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back as `Err` if the queue is (or becomes) closed
    /// before space frees up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: wakes all waiters; further pushes fail, pops
    /// drain what is left then return `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// A counting semaphore gating concurrent holders of a resource.
///
/// [`acquire`](Semaphore::acquire) blocks until a permit is free;
/// [`release`](Semaphore::release) returns one. The service runtime uses
/// this as the max-concurrent-connections gate: the acceptor takes a
/// permit before handing a socket to a connection handler and the handler
/// releases it when the connection closes, so excess clients wait in the
/// listen backlog instead of spawning unbounded handlers.
///
/// # Example
///
/// ```
/// use gtl_core::sync::Semaphore;
///
/// let gate = Semaphore::new(1);
/// gate.acquire();
/// assert!(!gate.try_acquire());
/// gate.release();
/// assert!(gate.try_acquire());
/// ```
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Self { permits: Mutex::new(permits), freed: Condvar::new() }
    }

    /// Takes one permit, blocking until one is available.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *permits == 0 {
            permits = self.freed.wait(permits).unwrap_or_else(|e| e.into_inner());
        }
        *permits -= 1;
    }

    /// Takes one permit without blocking; `false` if none are free.
    pub fn try_acquire(&self) -> bool {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        if *permits == 0 {
            return false;
        }
        *permits -= 1;
        true
    }

    /// Returns one permit, waking one waiter.
    pub fn release(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        *permits += 1;
        self.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn queue_is_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_until_pop_frees_space() {
        let q = BoundedQueue::new(1);
        q.push(0u32).unwrap();
        let pushed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                q.push(1).unwrap(); // must block until the pop below
                pushed.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(pushed.load(Ordering::SeqCst), 0, "push went through while full");
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), Some(1)); // blocks until the producer lands it
        });
    }

    #[test]
    fn close_unblocks_producers_and_consumers() {
        let q = BoundedQueue::new(1);
        q.push(7u32).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| q.push(8)); // blocked: full
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert_eq!(handle.join().unwrap(), Err(8), "close must fail the pending push");
        });
        assert_eq!(q.pop(), Some(7), "closed queues still drain");
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(9), Err(9));
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = BoundedQueue::new(3);
        let total = 200usize;
        let sum = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..total / 4 {
                        q.push(p * (total / 4) + i).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                scope.spawn(move || {
                    while let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            // Give producers time to finish, then close to end consumers.
            scope.spawn(|| {
                while !q.is_empty() || sum.load(Ordering::Relaxed) < total * (total - 1) / 2 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                q.close();
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u32>::new(0);
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let gate = Semaphore::new(2);
        gate.acquire();
        gate.acquire();
        assert!(!gate.try_acquire());
        gate.release();
        gate.acquire(); // immediate: a permit is free again
        gate.release();
        gate.release();
        assert!(gate.try_acquire());
    }

    #[test]
    fn semaphore_release_wakes_blocked_acquirer() {
        let gate = Semaphore::new(0);
        let entered = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                gate.acquire();
                entered.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(entered.load(Ordering::SeqCst), 0);
            gate.release();
        });
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }
}
