//! Cooperative cancellation: cheap, clonable tokens with optional
//! monotonic deadlines.
//!
//! A [`CancelToken`] is an `Arc`'d atomic flag plus an optional
//! [`Deadline`]. Long-running compute *polls* it at natural loop
//! boundaries via [`CancelToken::checkpoint`] — nothing is ever
//! interrupted preemptively, so a worker always finishes the item it is
//! on and scratch state never ends up half-written. The execution layer
//! polls between items in [`exec::parallel_map_cancellable`] and
//! [`exec::parallel_map_with_cancellable`], and the finder / placer /
//! congestion hot loops poll between iterations, so a cancelled request
//! returns within one checkpoint interval (one seed search, one placer
//! iteration, one congestion pass).
//!
//! [`exec::parallel_map_cancellable`]: crate::exec::parallel_map_cancellable
//! [`exec::parallel_map_with_cancellable`]: crate::exec::parallel_map_with_cancellable
//!
//! Tokens form a tree: [`CancelToken::child_with_deadline`] derives a
//! token that trips when its own deadline passes **or** when any
//! ancestor is cancelled — the service runtime gives every connection a
//! root token (tripped on connection loss) and every request a child
//! carrying that request's deadline.
//!
//! Determinism note: a token that never fires is invisible — the
//! cancellable code paths produce byte-identical results to their
//! non-cancellable twins (property-tested in `exec`). Cancellation
//! outcomes themselves are inherently timing-dependent, which is why
//! the service layer never caches a cancelled response.
//!
//! # Example
//!
//! ```
//! use gtl_core::cancel::{CancelReason, CancelToken};
//!
//! let token = CancelToken::new();
//! assert!(token.checkpoint().is_ok());
//! token.cancel();
//! let err = token.checkpoint().unwrap_err();
//! assert_eq!(err.reason, CancelReason::Cancelled);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (connection loss, shutdown).
    Cancelled,
    /// The token's [`Deadline`] passed.
    DeadlineExceeded,
}

/// The structured error a cancelled computation returns.
///
/// Carries the [`CancelReason`] so callers can distinguish a deadline
/// expiry (answerable with a `deadline_exceeded` response) from an
/// explicit cancellation (usually nobody left to answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// What tripped the token.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            CancelReason::Cancelled => f.write_str("computation cancelled"),
            CancelReason::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// A point on the monotonic clock after which a computation should stop.
///
/// A thin wrapper over [`Instant`] so deadline arithmetic (anchoring at
/// request arrival, saturating on absurd durations) lives in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// A deadline `after` from now.
    ///
    /// # Panics
    ///
    /// Panics if `now + after` overflows the clock (like
    /// `Instant + Duration` itself). Code building deadlines from
    /// untrusted durations should use [`Deadline::anchored`], which
    /// saturates to "no deadline" instead.
    pub fn after(after: Duration) -> Self {
        Self::at(Instant::now() + after)
    }

    /// A deadline `after` from `anchor` (e.g. request arrival), or
    /// `None` when the sum overflows the clock — an unrepresentably far
    /// deadline is the same as no deadline.
    pub fn anchored(anchor: Instant, after: Duration) -> Option<Self> {
        anchor.checked_add(after).map(Self::at)
    }

    /// The absolute instant.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// [`CancelToken::checkpoint`] over an optional token: `Ok(())` when no
/// token is attached. The helper code paths that are shared between
/// cancellable and infallible variants (the execution layer, the placer
/// loop) thread `Option<&CancelToken>` and probe through this.
///
/// # Errors
///
/// [`Cancelled`] once a present token fires.
pub fn checkpoint(token: Option<&CancelToken>) -> Result<(), Cancelled> {
    match token {
        Some(token) => token.checkpoint(),
        None => Ok(()),
    }
}

/// Token state machine: `LIVE → CANCELLED | DEADLINE`, monotonic (the
/// first cause wins and is never overwritten).
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    state: AtomicU8,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A cheap, clonable cancellation probe (see the [module docs](self)).
///
/// Clones share one flag: cancelling any clone trips them all. Children
/// created with [`CancelToken::child_with_deadline`] have their own flag
/// and deadline but also report cancelled when an ancestor does.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A live token with no deadline; fires only on [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that trips itself once `deadline` passes.
    pub fn with_deadline(deadline: Deadline) -> Self {
        Self::build(Some(deadline.instant()), None)
    }

    /// A child that trips on its own `deadline` *or* whenever `self`
    /// (or any of `self`'s ancestors) is cancelled. Cancelling the
    /// child does not affect the parent.
    pub fn child_with_deadline(&self, deadline: Deadline) -> Self {
        Self::build(Some(deadline.instant()), Some(self.clone()))
    }

    fn build(deadline: Option<Instant>, parent: Option<CancelToken>) -> Self {
        Self { inner: Arc::new(Inner { state: AtomicU8::new(LIVE), deadline, parent }) }
    }

    /// Trips the token (and every clone sharing its flag). Idempotent;
    /// a deadline that already fired keeps its `DeadlineExceeded`
    /// reason.
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The reason the token has fired, or `None` while it is live.
    ///
    /// Lazily latches the deadline: the first probe past the deadline
    /// transitions the state, so every later probe agrees on the
    /// reason.
    pub fn state(&self) -> Option<CancelReason> {
        match self.inner.state.load(Ordering::Relaxed) {
            CANCELLED => return Some(CancelReason::Cancelled),
            DEADLINE => return Some(CancelReason::DeadlineExceeded),
            _ => {}
        }
        if let Some(at) = self.inner.deadline {
            if Instant::now() >= at {
                // Latch; lose the race gracefully if `cancel` got there
                // first (its reason then wins, matching the load above).
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return match self.inner.state.load(Ordering::Relaxed) {
                    CANCELLED => Some(CancelReason::Cancelled),
                    _ => Some(CancelReason::DeadlineExceeded),
                };
            }
        }
        self.inner.parent.as_ref().and_then(CancelToken::state)
    }

    /// Whether the token has fired (flag, own deadline, or ancestor).
    pub fn is_cancelled(&self) -> bool {
        self.state().is_some()
    }

    /// The cooperative probe: `Ok(())` while live, [`Cancelled`] once
    /// the token fires. Call it at loop boundaries: `token.checkpoint()?`.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] with the firing [`CancelReason`].
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        match self.state() {
            None => Ok(()),
            Some(reason) => Err(Cancelled { reason }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.checkpoint().is_ok());
        assert_eq!(token.state(), None);
    }

    #[test]
    fn cancel_trips_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert_eq!(token.checkpoint().unwrap_err().reason, CancelReason::Cancelled);
        assert_eq!(clone.checkpoint().unwrap_err().reason, CancelReason::Cancelled);
        // Idempotent.
        token.cancel();
        assert_eq!(token.state(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let token = CancelToken::with_deadline(Deadline::at(Instant::now()));
        let err = token.checkpoint().unwrap_err();
        assert_eq!(err.reason, CancelReason::DeadlineExceeded);
        assert_eq!(err.to_string(), "deadline exceeded");
        // The latched reason survives a later explicit cancel.
        token.cancel();
        assert_eq!(token.state(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_stays_live() {
        let token = CancelToken::with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert!(token.checkpoint().is_ok());
    }

    #[test]
    fn child_sees_parent_cancellation_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert!(child.checkpoint().is_ok());
        parent.cancel();
        assert_eq!(child.checkpoint().unwrap_err().reason, CancelReason::Cancelled);

        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Deadline::after(Duration::from_secs(3600)));
        child.cancel();
        assert!(parent.checkpoint().is_ok(), "child cancel must not leak upward");
    }

    #[test]
    fn child_deadline_fires_independently_of_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Deadline::at(Instant::now()));
        assert_eq!(child.checkpoint().unwrap_err().reason, CancelReason::DeadlineExceeded);
        assert!(parent.checkpoint().is_ok());
    }

    #[test]
    fn anchored_deadline_saturates() {
        assert!(Deadline::anchored(Instant::now(), Duration::from_millis(5)).is_some());
        // An unrepresentably far deadline is "no deadline".
        assert!(Deadline::anchored(Instant::now(), Duration::from_secs(u64::MAX)).is_none());
    }

    #[test]
    fn deadline_accessors() {
        let now = Instant::now();
        let d = Deadline::at(now);
        assert_eq!(d.instant(), now);
        assert!(d.expired());
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
    }
}
