//! Shared deterministic parallel execution layer for the GTL workspace.
//!
//! Every fan-out in the workspace — the three-phase finder's per-seed
//! searches, the sharded quadratic placer, the stripe-batched congestion
//! estimator, the figure/table bench binaries — goes through [`exec`]
//! instead of hand-rolling `std::thread` chunking at each call site.
//! [`shard`] supplies the matching deterministic *decompositions* (region
//! shards and tile stripes) for the spatial clients, [`sync`] the
//! blocking admission primitives (bounded FIFO queue, counting semaphore)
//! the `gtl-runtime` service layer schedules work with, and [`cancel`]
//! the cooperative cancellation tokens (atomic flag + optional monotonic
//! deadline) the `*_cancellable` map variants and the service runtime
//! poll between work items. [`obs`] supplies the deterministic latency
//! histogram + injected-clock span primitives the serve path records
//! timings with — compute code may carry and subtract instants but never
//! acquires one (see the module's byte-invisibility contract).
//!
//! # Determinism contract
//!
//! The execution layer guarantees, for [`exec::parallel_map`],
//! [`exec::parallel_map_with`] and their `*_chunked` variants:
//!
//! 1. **Ordered results.** The output `Vec` has one slot per input index,
//!    in input order, regardless of which worker computed which index and
//!    in what interleaving.
//! 2. **Thread-count independence.** If the item function is a pure
//!    function of `(index, scratch-after-reset)`, the output is byte-for-
//!    byte identical for any worker count (1, 2, 8, …). Workers race only
//!    for *which* index they claim, never for what a given index produces.
//! 3. **Seed-stable RNG streams.** Randomized item functions must derive
//!    their RNG from [`exec::derive_stream`]`(master_seed, index)` — never
//!    from a worker-local or shared stream — so the stream attached to an
//!    index does not depend on scheduling.
//! 4. **Granularity independence.** Workers claim contiguous *chunks* of
//!    the index space; chunk boundaries are a pure function of
//!    `(len, chunk_size)` — never of the worker count — and per-item work
//!    is unchanged, so the scheduling grain ([`exec::Granularity`]) is a
//!    pure performance knob that cannot change output bytes.
//!
//! # Scratch-buffer reuse
//!
//! [`exec::parallel_map_with`] gives each worker one scratch value for its
//! whole lifetime (e.g. an `OrderingGrower` holding `O(|V| + |E|)`
//! buffers), so per-item allocation cost is paid once per worker instead
//! of once per item. The contract above requires item functions to fully
//! re-initialize whatever scratch state they read — reuse must be
//! invisible in the output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod exec;
pub mod obs;
pub mod shard;
pub mod sync;

pub use cancel::{CancelReason, CancelToken, Cancelled, Deadline};
pub use exec::{
    auto_chunk, derive_stream, effective_threads, parallel_map, parallel_map_cancellable,
    parallel_map_chunked, parallel_map_chunked_cancellable, parallel_map_chunked_with,
    parallel_map_chunked_with_cancellable, parallel_map_with, parallel_map_with_cancellable,
    Granularity,
};
pub use obs::{LatencyHistogram, Span};
pub use shard::{auto_grid, stripes, ShardGrid, DEFAULT_STRIPE_ROWS};
pub use sync::{BoundedQueue, Semaphore};
