//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! These are *quality* ablations measured as timed runs whose reported
//! value also gets printed once per bench: Phase I criterion (the paper's
//! weight-first versus min-cut-first), Phase III refinement on/off, and
//! metric choice. The printed recovery numbers show why the paper's
//! choices win; Criterion reports the runtime cost of each.

use criterion::{criterion_group, criterion_main, Criterion};
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::{match_gtls, FinderConfig, GrowthCriterion, MetricKind, TangledLogicFinder};

fn testbed() -> gtl_synth::GeneratedCircuit {
    planted::generate(&PlantedConfig {
        num_cells: 10_000,
        blocks: vec![800],
        seed: 21,
        ..PlantedConfig::default()
    })
}

fn base_config() -> FinderConfig {
    FinderConfig {
        num_seeds: 32,
        max_order_len: 2_500,
        min_size: 100,
        threads: 1,
        rng_seed: 9,
        ..FinderConfig::default()
    }
}

fn quality(g: &gtl_synth::GeneratedCircuit, config: FinderConfig) -> (usize, f64, f64) {
    let result = TangledLogicFinder::new(&g.netlist, config).run();
    let found: Vec<Vec<_>> = result.gtls.iter().map(|x| x.cells.clone()).collect();
    let report = match_gtls(&g.truth, &found, g.netlist.num_cells());
    (report.matches.len(), report.max_miss_pct(), report.max_over_pct())
}

/// Paper's weight-first growth versus min-cut-first growth.
fn growth_criterion(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("ablation_growth_criterion");
    group.sample_size(10);
    for (label, criterion) in
        [("weight_first", GrowthCriterion::WeightFirst), ("cut_first", GrowthCriterion::CutFirst)]
    {
        let config = FinderConfig { criterion, ..base_config() };
        let (found, miss, over) = quality(&g, config);
        eprintln!("[{label}] recovered {found}/1 planted, miss {miss:.2}%, over {over:.2}%");
        group.bench_function(label, |b| {
            let finder = TangledLogicFinder::new(&g.netlist, config);
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

/// Phase III refinement on/off: runtime cost versus cleanup benefit.
fn refinement(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("ablation_refinement");
    group.sample_size(10);
    for (label, refine) in [("with_refine", true), ("no_refine", false)] {
        let config = FinderConfig { refine, ..base_config() };
        let (found, miss, over) = quality(&g, config);
        eprintln!("[{label}] recovered {found}/1 planted, miss {miss:.2}%, over {over:.2}%");
        group.bench_function(label, |b| {
            let finder = TangledLogicFinder::new(&g.netlist, config);
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

/// nGTL-S versus the density-aware GTL-SD as the optimized metric.
fn metric_choice(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("ablation_metric");
    group.sample_size(10);
    for (label, metric) in [("ngtl_s", MetricKind::NGtlScore), ("gtl_sd", MetricKind::GtlSd)] {
        let config = FinderConfig { metric, ..base_config() };
        let (found, miss, over) = quality(&g, config);
        eprintln!("[{label}] recovered {found}/1 planted, miss {miss:.2}%, over {over:.2}%");
        group.bench_function(label, |b| {
            let finder = TangledLogicFinder::new(&g.netlist, config);
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, growth_criterion, refinement, metric_choice);
criterion_main!(benches);
