//! Criterion benches for the full three-phase finder.
//!
//! Times the end-to-end `TangledLogicFinder` against seed count `m` (the
//! parallel part scales with `m`; the serial pruning is `O(m²)`, paper
//! §4.1.2) and against thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::{FinderConfig, TangledLogicFinder};

fn testbed() -> gtl_synth::GeneratedCircuit {
    planted::generate(&PlantedConfig {
        num_cells: 20_000,
        blocks: vec![1_000, 2_000],
        seed: 3,
        ..PlantedConfig::default()
    })
}

fn config(seeds: usize, threads: usize) -> FinderConfig {
    FinderConfig {
        num_seeds: seeds,
        max_order_len: 5_000,
        min_size: 100,
        threads,
        rng_seed: 5,
        ..FinderConfig::default()
    }
}

/// Wall time versus number of seed searches `m`.
fn finder_seed_count(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("finder_seed_count");
    group.sample_size(10);
    for &m in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let finder = TangledLogicFinder::new(&g.netlist, config(m, 1));
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

/// Wall time versus worker threads (fixed m = 64).
fn finder_threads(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("finder_threads");
    group.sample_size(10);
    for &t in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let finder = TangledLogicFinder::new(&g.netlist, config(64, t));
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, finder_seed_count, finder_threads);
criterion_main!(benches);
