//! Criterion bench for the sharded quadratic placer: 1-thread versus
//! N-thread wall time of a full `place()` run on an ISPD-like circuit
//! large enough to decompose into a 3×3 shard grid.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `placement_parallel.json` summary (threads, wall seconds, speedup)
//! into `results/` via the `gtl_bench::report` machinery, and asserts
//! that every parallel run reproduces the single-worker placement exactly
//! — the execution layer's byte-identical contract, measured on the
//! placer. Note the CI box may be single-core; interpret speedups there
//! accordingly.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_bench::report::{write_json, Json};
use gtl_place::{hpwl, place, Die, PlacerConfig};
use gtl_synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};

fn testbed() -> gtl_synth::GeneratedCircuit {
    generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, 0.05))
}

fn config(threads: usize) -> PlacerConfig {
    PlacerConfig { shard_grid: 3, threads, ..PlacerConfig::default() }
}

/// Thread counts to measure: 1, 2, and all cores (deduplicated).
fn thread_counts() -> Vec<usize> {
    let all = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, 2, all];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn placement_parallel(c: &mut Criterion) {
    let g = testbed();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let mut group = c.benchmark_group("placement_parallel");
    group.sample_size(10);

    // Untimed warmup so the first measured row does not also pay the
    // page-fault/allocator warmup of the whole process.
    std::hint::black_box(place(&g.netlist, &die, &config(1)).len());

    // Best-of-2 timed passes per thread count for the JSON summary
    // (criterion's own samples follow below); also checks determinism
    // across counts. The minimum is the standard low-noise wall
    // estimator: interference only ever adds time.
    let mut rows = Vec::new();
    let mut serial_wall = 0.0f64;
    let mut baseline = None;
    for &threads in &thread_counts() {
        let mut wall = f64::INFINITY;
        let mut wirelength = 0.0f64;
        for _ in 0..2 {
            let start = Instant::now();
            let placement = place(&g.netlist, &die, &config(threads));
            wall = wall.min(start.elapsed().as_secs_f64());
            wirelength = hpwl(&g.netlist, &placement);
            match &baseline {
                None => baseline = Some(placement),
                Some(expected) => assert_eq!(
                    expected, &placement,
                    "placement changed between 1 and {threads} threads"
                ),
            }
        }
        if threads == 1 {
            serial_wall = wall;
        }
        rows.push(Json::obj([
            ("threads", Json::num(threads as f64)),
            ("wall_seconds", Json::num(wall)),
            ("speedup", Json::num(serial_wall / wall)),
            ("hpwl", Json::num(wirelength)),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("placement_parallel")),
        ("num_cells", Json::num(g.netlist.num_cells() as f64)),
        ("shard_grid", Json::num(config(1).shard_grid as f64)),
        ("runs", Json::arr(rows)),
    ]);
    let path = gtl_bench::results_dir().join("placement_parallel.json");
    write_json(&path, &doc).expect("write placement_parallel.json");
    println!("wrote {}", path.display());

    for &threads in &thread_counts() {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                std::hint::black_box(place(&g.netlist, &die, &config(threads)).len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, placement_parallel);
criterion_main!(benches);
