//! Criterion benches for the physical-design substrate: CG solver,
//! spreading, legalization and congestion estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_place::congestion::{estimate, DemandModel, RoutingConfig};
use gtl_place::legal::legalize;
use gtl_place::quadratic::Laplacian;
use gtl_place::spread::{spread, SpreadConfig};
use gtl_place::{place, Die, PlacerConfig};
use gtl_synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};

fn circuit(scale: f64) -> gtl_synth::GeneratedCircuit {
    generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, scale))
}

/// One CG solve on the netlist Laplacian, across sizes.
fn cg_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(10);
    for &scale in &[0.01f64, 0.04] {
        let g = circuit(scale);
        let n = g.netlist.num_cells();
        let lap = Laplacian::build(&g.netlist);
        let anchor = vec![0.1; n];
        let targets: Vec<f64> = (0..n).map(|i| i as f64 % 97.0).collect();
        let rhs: Vec<f64> = targets.iter().map(|t| 0.1 * t).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let (x, _) = lap.solve_anchored(&anchor, &rhs, &vec![0.0; n], 1e-6, 300);
                std::hint::black_box(x[0])
            });
        });
    }
    group.finish();
}

/// Full global placement: the single-shard (global) solve versus the 3×3
/// region-sharded decomposition.
fn global_place(c: &mut Criterion) {
    let g = circuit(0.01);
    let die = Die::for_netlist(&g.netlist, 0.6);
    let mut group = c.benchmark_group("global_place");
    group.sample_size(10);
    for (label, grid) in [("adaptec1_x0.01", 1), ("adaptec1_x0.01_sharded3", 3)] {
        let cfg = PlacerConfig { shard_grid: grid, ..PlacerConfig::default() };
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(place(&g.netlist, &die, &cfg).len()));
        });
    }
    group.finish();
}

/// Bisection spreading and Tetris legalization of a clumped placement.
fn spread_and_legalize(c: &mut Criterion) {
    let g = circuit(0.02);
    let die = Die::for_netlist(&g.netlist, 0.6);
    let n = g.netlist.num_cells();
    let clumped =
        gtl_place::Placement::from_coords(vec![die.width / 2.0; n], vec![die.height / 2.0; n]);
    let mut group = c.benchmark_group("spread_legalize");
    group.sample_size(10);
    group.bench_function("spread", |b| {
        b.iter(|| {
            std::hint::black_box(spread(&g.netlist, &clumped, &die, &SpreadConfig::default()).len())
        });
    });
    let spread_p = spread(&g.netlist, &clumped, &die, &SpreadConfig::default());
    group.bench_function("legalize", |b| {
        b.iter(|| std::hint::black_box(legalize(&g.netlist, &spread_p, &die).overflowed));
    });
    group.finish();
}

/// RUDY versus L-shape congestion estimation, stripe-batched versus the
/// serial per-net reference.
fn congestion_models(c: &mut Criterion) {
    let g = circuit(0.02);
    let die = Die::for_netlist(&g.netlist, 0.6);
    let p = place(&g.netlist, &die, &PlacerConfig::default());
    let mut group = c.benchmark_group("congestion_models");
    group.sample_size(10);
    for (label, model) in [("rudy", DemandModel::Rudy), ("lshape", DemandModel::LShape)] {
        let cfg = RoutingConfig { tiles: 32, model, ..RoutingConfig::default() };
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(estimate(&g.netlist, &p, &die, &cfg).max_utilization()));
        });
        group.bench_function(format!("{label}_reference"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    gtl_place::congestion::estimate_reference(&g.netlist, &p, &die, &cfg)
                        .max_utilization(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, cg_solve, global_place, spread_and_legalize, congestion_models);
criterion_main!(benches);
