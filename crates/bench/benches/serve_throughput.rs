//! Criterion bench for the `gtl-runtime` serving path: pipelined TCP
//! request throughput with the response cache cold (disabled) versus
//! warm (enabled and pre-filled).
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `serve_throughput.json` summary (mode, wall seconds, req/s, cache
//! counters) into `results/` via the `gtl_bench::report` machinery, and
//! enforces the service determinism contract where it matters:
//!
//! * every response in every burst is byte-identical to an in-process
//!   `Session::handle_line` dispatch, for both cache modes;
//! * the checked-in golden round-trip (`tests/golden/`) replays
//!   byte-identically through the new runtime path.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_api::{FindRequest, Request, ServeOptions, Session};
use gtl_bench::report::{write_json, Json};
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::FinderConfig;

fn testbed_session() -> Session {
    let g = planted::generate(&PlantedConfig {
        num_cells: 2_000,
        blocks: vec![120, 200],
        seed: 23,
        ..PlantedConfig::default()
    });
    Session::builder().netlist(g.netlist).build().expect("session")
}

fn request_line() -> String {
    serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
        num_seeds: 12,
        min_size: 40,
        max_order_len: 400,
        rng_seed: 29,
        threads: 1,
        ..FinderConfig::default()
    })))
}

/// Drops the v5 trace stamp (`,"trace":"…"`) so wire bytes can be
/// compared against the in-process oracle, which is never stamped (and,
/// across a burst, each response carries a distinct sequence number).
fn strip_trace(line: &str) -> String {
    let Some(start) = line.find(",\"trace\":\"") else { return line.to_string() };
    let rest = &line[start + 10..];
    let end = rest.find('"').expect("unterminated trace stamp");
    format!("{}{}", &line[..start], &rest[end + 1..])
}

/// One pipelined burst of `n` identical requests against a fresh
/// single-connection server; returns the wall time of the burst and the
/// server's final summary. Every response is asserted byte-identical to
/// the in-process oracle (modulo its trace stamp).
fn run_burst(
    session: &Session,
    line: &str,
    expected: &str,
    cache_bytes: usize,
    warmup: bool,
    n: usize,
) -> (f64, gtl_api::ServeSummary) {
    let listener = gtl_api::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let options = ServeOptions::new()
        .lanes(2)
        .pipeline_depth(16)
        .cache_bytes(cache_bytes)
        .max_connections(Some(1));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(session, &listener, &options).expect("serve"));
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut response = String::new();
        if warmup {
            // Fill the cache (and the connection's buffer pool) outside
            // the timed section.
            writeln!(conn, "{line}").expect("write warmup");
            reader.read_line(&mut response).expect("read warmup");
            assert_eq!(strip_trace(response.trim_end()), expected, "warmup response diverged");
        }
        let start = Instant::now();
        for _ in 0..n {
            writeln!(conn, "{line}").expect("write");
        }
        conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let mut served = 0usize;
        loop {
            response.clear();
            if reader.read_line(&mut response).expect("read") == 0 {
                break;
            }
            assert_eq!(strip_trace(response.trim_end()), expected, "response {served} diverged");
            served += 1;
        }
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(served, n, "lost responses");
        (wall, server.join().expect("server thread"))
    })
}

/// Replays the checked-in golden request against a live runtime-backed
/// server and requires the response bytes to equal the golden file —
/// the same check CI runs against the `gtl serve` binary.
fn golden_round_trip() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden = root.join("tests/golden");
    let netlist = gtl_netlist::hgr::read(golden.join("two_cliques.hgr").to_str().expect("path"))
        .expect("golden netlist");
    let request =
        std::fs::read_to_string(golden.join("serve_find_request.json")).expect("golden request");
    let expected =
        std::fs::read_to_string(golden.join("serve_find_response.json")).expect("golden response");
    let session = Session::builder().netlist(netlist).build().expect("session");
    let (_, summary) =
        run_burst(&session, request.trim_end(), expected.trim_end(), 1 << 20, false, 1);
    assert_eq!(summary.connections, 1);
    println!("golden round-trip byte-identical through gtl-runtime");
}

fn serve_throughput(c: &mut Criterion) {
    golden_round_trip();

    let session = testbed_session();
    let line = request_line();
    let expected = session.handle_line(&line);

    // One timed pass per mode for the JSON summary (criterion's own
    // samples follow below). Cold = cache disabled: every request
    // recomputes. Warm = cache enabled and pre-filled: requests after
    // the first are hits, byte-identical to the cold computes. The warm
    // burst is far larger than the cold one — warm requests are bounded
    // by memcpy, and 64 of them complete in a fraction of a millisecond,
    // below timer noise; thousands keep the wall time measurable so the
    // committed baseline carries signal.
    let mut rows = Vec::new();
    for (mode, cache_bytes, warmup, n) in
        [("cold", 0usize, false, 64usize), ("warm", 16 << 20, true, 4096)]
    {
        let (wall, summary) = run_burst(&session, &line, &expected, cache_bytes, warmup, n);
        let m = &summary.metrics;
        if mode == "warm" {
            assert_eq!(m.cache_hits, n as u64, "warm burst should be all hits");
        }
        // Per-request-kind latency percentiles from the server's own
        // histograms (v5 observability) — the burst is all Find
        // requests, so exactly one "find" series must be populated.
        let find = m.kind_latency.iter().find(|s| s.label == "find").expect("find latency series");
        assert!(find.count >= n as u64, "find latency undercounted: {} < {n}", find.count);
        let latency = Json::arr(m.kind_latency.iter().map(|s| {
            Json::obj([
                ("kind", Json::str(&s.label)),
                ("count", Json::num(s.count as f64)),
                ("p50_us", Json::num(s.p50_us as f64)),
                ("p95_us", Json::num(s.p95_us as f64)),
                ("p99_us", Json::num(s.p99_us as f64)),
                ("max_us", Json::num(s.max_us as f64)),
            ])
        }));
        rows.push(Json::obj([
            ("mode", Json::str(mode)),
            ("cache_bytes", Json::num(cache_bytes as f64)),
            ("requests", Json::num(n as f64)),
            ("wall_seconds", Json::num(wall)),
            ("req_per_s", Json::num(n as f64 / wall)),
            ("cache_hits", Json::num(m.cache_hits as f64)),
            ("cache_misses", Json::num(m.cache_misses as f64)),
            ("latency", latency),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("serve_throughput")),
        ("num_cells", Json::num(2_000.0)),
        ("pipeline_depth", Json::num(16.0)),
        ("lanes", Json::num(2.0)),
        ("runs", Json::arr(rows)),
    ]);
    let path = gtl_bench::results_dir().join("serve_throughput.json");
    write_json(&path, &doc).expect("write serve_throughput.json");
    println!("wrote {}", path.display());

    // No explicit sample_size: the CRITERION_SAMPLE_SIZE env cap (CI
    // sets 2 for a smoke run) must stay in effect.
    let mut group = c.benchmark_group("serve_throughput_2k");
    for (mode, cache_bytes, warmup) in [("cold", 0usize, false), ("warm", 16 << 20, true)] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &cache_bytes, |b, &bytes| {
            b.iter(|| {
                let (wall, _) = run_burst(&session, &line, &expected, bytes, warmup, 16);
                std::hint::black_box(wall)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
