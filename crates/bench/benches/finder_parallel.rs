//! Criterion bench for the shared execution layer: 1-thread versus
//! N-thread wall time of the full three-phase finder on a synthetic
//! 50k-cell netlist.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `finder_parallel.json` summary (threads, wall seconds, speedup) into
//! `results/` via the `gtl_bench::report` machinery, and asserts that the
//! parallel run reproduces the serial result exactly — the execution
//! layer's determinism contract, measured where it matters.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_bench::report::{write_json, Json};
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::{FinderConfig, TangledLogicFinder};

fn testbed() -> gtl_synth::GeneratedCircuit {
    planted::generate(&PlantedConfig {
        num_cells: 50_000,
        blocks: vec![1_500, 2_500, 4_000],
        seed: 11,
        ..PlantedConfig::default()
    })
}

fn config(threads: usize) -> FinderConfig {
    FinderConfig {
        num_seeds: 64,
        max_order_len: 4_000,
        min_size: 200,
        threads,
        rng_seed: 17,
        ..FinderConfig::default()
    }
}

/// Thread counts to measure: 1, 2, and all cores (deduplicated).
fn thread_counts() -> Vec<usize> {
    let all = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, 2, all];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn finder_parallel(c: &mut Criterion) {
    let g = testbed();
    let mut group = c.benchmark_group("finder_parallel_50k");
    group.sample_size(10);

    // Untimed warmup so the first measured row does not also pay the
    // page-fault/allocator warmup of the whole process.
    let warmup = TangledLogicFinder::new(&g.netlist, config(1)).run();
    std::hint::black_box(warmup.gtls.len());

    // Best-of-3 timed passes per thread count for the JSON summary
    // (criterion's own samples follow below); also checks determinism
    // across counts. The minimum is the standard low-noise wall
    // estimator: every source of interference only ever adds time.
    let mut rows = Vec::new();
    let mut serial_wall = 0.0f64;
    let mut baseline: Option<String> = None;
    for &threads in &thread_counts() {
        let finder = TangledLogicFinder::new(&g.netlist, config(threads));
        let mut wall = f64::INFINITY;
        let mut gtls = 0usize;
        for _ in 0..3 {
            let start = Instant::now();
            let result = finder.run();
            wall = wall.min(start.elapsed().as_secs_f64());
            gtls = result.gtls.len();
            let fingerprint = format!("{:?}", result.gtls);
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(expected) => assert_eq!(
                    expected, &fingerprint,
                    "finder output changed between 1 and {threads} threads"
                ),
            }
        }
        if threads == 1 {
            serial_wall = wall;
        }
        rows.push(Json::obj([
            ("threads", Json::num(threads as f64)),
            ("wall_seconds", Json::num(wall)),
            ("speedup", Json::num(serial_wall / wall)),
            ("gtls", Json::num(gtls as f64)),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("finder_parallel")),
        ("num_cells", Json::num(g.netlist.num_cells() as f64)),
        ("num_seeds", Json::num(config(1).num_seeds as f64)),
        ("runs", Json::arr(rows)),
    ]);
    let path = gtl_bench::results_dir().join("finder_parallel.json");
    write_json(&path, &doc).expect("write finder_parallel.json");
    println!("wrote {}", path.display());

    for &threads in &thread_counts() {
        let finder = TangledLogicFinder::new(&g.netlist, config(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| std::hint::black_box(finder.run().gtls.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, finder_parallel);
criterion_main!(benches);
