//! Criterion benches for Phase I (linear-ordering generation).
//!
//! Validates the paper's complexity claim — Phase I is `O(|E| ln |V|)` —
//! by timing orderings across graph sizes, and quantifies the cost of the
//! λ-threshold knob (paper §4.1.2 skips weight updates on nets with ≥ 20
//! external pins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtl_netlist::CellId;
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::{GrowthConfig, OrderingGrower};

fn graph(cells: usize, block: usize, seed: u64) -> gtl_synth::GeneratedCircuit {
    planted::generate(&PlantedConfig {
        num_cells: cells,
        blocks: vec![block],
        seed,
        ..PlantedConfig::default()
    })
}

/// Ordering time versus graph size (fixed Z): near-linearithmic growth.
fn ordering_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering_scaling");
    group.sample_size(10);
    for &cells in &[4_000usize, 16_000, 64_000] {
        let g = graph(cells, cells / 10, 7);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &g, |b, g| {
            let mut grower = OrderingGrower::new(
                &g.netlist,
                GrowthConfig { max_len: cells / 4, ..GrowthConfig::default() },
            );
            b.iter(|| std::hint::black_box(grower.grow(CellId::new(0)).len()));
        });
    }
    group.finish();
}

/// Cost of exact weight maintenance versus the paper's λ ≥ 20 skip.
fn lambda_threshold(c: &mut Criterion) {
    let g = graph(20_000, 2_000, 11);
    let mut group = c.benchmark_group("lambda_threshold");
    group.sample_size(10);
    for (label, threshold) in [("exact", usize::MAX), ("paper_20", 20), ("aggressive_5", 5)] {
        group.bench_function(label, |b| {
            let mut grower = OrderingGrower::new(
                &g.netlist,
                GrowthConfig {
                    max_len: 5_000,
                    lambda_threshold: threshold,
                    ..GrowthConfig::default()
                },
            );
            b.iter(|| std::hint::black_box(grower.grow(CellId::new(100)).len()));
        });
    }
    group.finish();
}

/// Ordering length Z versus time (the while-loop of algorithm I.5).
fn ordering_length(c: &mut Criterion) {
    let g = graph(40_000, 4_000, 13);
    let mut group = c.benchmark_group("ordering_length");
    group.sample_size(10);
    for &z in &[1_000usize, 4_000, 16_000] {
        group.bench_with_input(BenchmarkId::from_parameter(z), &z, |b, &z| {
            let mut grower = OrderingGrower::new(
                &g.netlist,
                GrowthConfig { max_len: z, ..GrowthConfig::default() },
            );
            b.iter(|| std::hint::black_box(grower.grow(CellId::new(0)).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, ordering_scaling, lambda_threshold, ordering_length);
criterion_main!(benches);
