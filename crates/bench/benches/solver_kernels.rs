//! Criterion bench for the quadratic-solver kernels themselves — the
//! fused Jacobi-CG of [`Laplacian::solve_anchored_into`] and the
//! shard-restricted CG of [`ShardSolver::solve_shard_into`] — measured
//! below the placer so kernel-level regressions are visible before they
//! wash out in a full `place()` run.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! `solver_kernels.json` summary (kernel, wall seconds, solves/s) into
//! `results/` via the `gtl_bench::report` machinery, and asserts both
//! kernels are run-to-run deterministic (two timed passes over the same
//! inputs must agree bit-for-bit). Both passes run with caller-owned
//! output buffers and reused scratch: the steady state allocates nothing.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gtl_bench::report::{write_json, Json};
use gtl_core::shard::ShardGrid;
use gtl_place::quadratic::{Laplacian, ShardSolver, SolveScratch};
use gtl_place::Die;
use gtl_synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};

/// Anchor weight for both kernels.
const ALPHA: f64 = 0.5;
const TOLERANCE: f64 = 1e-6;
const MAX_CG_ITERATIONS: usize = 300;
/// Shard-grid side for the shard kernel (matches `placement_parallel`).
const GRID: usize = 3;

struct Testbed {
    lap: Laplacian,
    anchor: Vec<f64>,
    rhs: Vec<f64>,
    x0: Vec<f64>,
    targets: Vec<f64>,
    shards: Vec<Vec<u32>>,
}

fn testbed() -> Testbed {
    let g = generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, 0.05));
    let die = Die::for_netlist(&g.netlist, 0.6);
    let lap = Laplacian::build(&g.netlist);
    let n = lap.dim();
    // Deterministic pseudo-random targets/starting guess inside the die.
    let coord = |seed: u64, i: usize, side: f64| {
        (gtl_core::derive_stream(seed, i as u64) % 10_000) as f64 / 10_000.0 * side
    };
    let targets: Vec<f64> = (0..n).map(|i| coord(5, i, die.width)).collect();
    let x0: Vec<f64> = (0..n).map(|i| coord(7, i, die.width)).collect();
    let ys: Vec<f64> = (0..n).map(|i| coord(9, i, die.height)).collect();
    let rhs: Vec<f64> = targets.iter().map(|t| ALPHA * t).collect();
    let grid = ShardGrid::square(GRID, die.width, die.height);
    let shards = grid.partition(&x0, &ys);
    Testbed { lap, anchor: vec![ALPHA; n], rhs, x0, targets, shards }
}

/// Runs `reps` anchored solves into reused buffers; returns the wall
/// time and the solution of the last solve (they are all identical).
fn anchored_pass(tb: &Testbed, reps: usize) -> (f64, Vec<f64>) {
    let mut scratch = SolveScratch::new();
    let mut x = vec![0.0; tb.lap.dim()];
    let start = Instant::now();
    for _ in 0..reps {
        x.copy_from_slice(&tb.x0);
        tb.lap.solve_anchored_into(
            &tb.anchor,
            &tb.rhs,
            &mut x,
            TOLERANCE,
            MAX_CG_ITERATIONS,
            &mut scratch,
        );
        std::hint::black_box(x[0]);
    }
    (start.elapsed().as_secs_f64(), x)
}

/// Runs `reps` full sweeps over every shard (both axes each) into reused
/// buffers; returns the wall time and a concatenated fingerprint of the
/// last sweep.
fn shard_pass(tb: &Testbed, reps: usize) -> (f64, Vec<f64>) {
    let n = tb.lap.dim();
    let mut solver = ShardSolver::new(n);
    let (mut out_x, mut out_y) = (Vec::new(), Vec::new());
    let (mut tx, mut ty) = (Vec::new(), Vec::new());
    let mut fingerprint = Vec::new();
    let start = Instant::now();
    for rep in 0..reps {
        if rep + 1 == reps {
            fingerprint.clear();
        }
        for cells in &tb.shards {
            if cells.is_empty() {
                continue;
            }
            tx.clear();
            ty.clear();
            for &c in cells {
                tx.push(tb.targets[c as usize]);
                ty.push(tb.targets[c as usize]);
            }
            solver.solve_shard_into(
                &tb.lap,
                cells,
                ALPHA,
                &tx,
                &ty,
                &tb.x0,
                &tb.x0,
                TOLERANCE,
                MAX_CG_ITERATIONS,
                &mut out_x,
                &mut out_y,
            );
            std::hint::black_box(out_x.first().copied());
            if rep + 1 == reps {
                fingerprint.extend_from_slice(&out_x);
                fingerprint.extend_from_slice(&out_y);
            }
        }
    }
    (start.elapsed().as_secs_f64(), fingerprint)
}

fn solver_kernels(c: &mut Criterion) {
    let tb = testbed();
    const REPS: usize = 8;

    // Untimed warmup, then two timed passes per kernel: the minimum is
    // the low-noise wall estimator, and the pair doubles as the
    // determinism check (reused scratch must be invisible).
    let mut rows = Vec::new();
    {
        std::hint::black_box(anchored_pass(&tb, 1).0);
        let (wall_a, out_a) = anchored_pass(&tb, REPS);
        let (wall_b, out_b) = anchored_pass(&tb, REPS);
        assert_eq!(out_a, out_b, "anchored solve is not run-to-run deterministic");
        let wall = wall_a.min(wall_b);
        rows.push(Json::obj([
            ("kernel", Json::str("anchored")),
            ("solves", Json::num(REPS as f64)),
            ("wall_seconds", Json::num(wall)),
            ("solves_per_s", Json::num(REPS as f64 / wall)),
        ]));
    }
    {
        std::hint::black_box(shard_pass(&tb, 1).0);
        let (wall_a, out_a) = shard_pass(&tb, REPS);
        let (wall_b, out_b) = shard_pass(&tb, REPS);
        assert_eq!(out_a, out_b, "shard solve is not run-to-run deterministic");
        let wall = wall_a.min(wall_b);
        rows.push(Json::obj([
            ("kernel", Json::str("shard")),
            ("solves", Json::num(REPS as f64)),
            ("wall_seconds", Json::num(wall)),
            ("solves_per_s", Json::num(REPS as f64 / wall)),
        ]));
    }
    let doc = Json::obj([
        ("bench", Json::str("solver_kernels")),
        ("num_cells", Json::num(tb.lap.dim() as f64)),
        ("shard_grid", Json::num(GRID as f64)),
        ("runs", Json::arr(rows)),
    ]);
    let path = gtl_bench::results_dir().join("solver_kernels.json");
    write_json(&path, &doc).expect("write solver_kernels.json");
    println!("wrote {}", path.display());

    let mut group = c.benchmark_group("solver_kernels");
    group.sample_size(10);
    group.bench_function("anchored", |b| {
        b.iter(|| std::hint::black_box(anchored_pass(&tb, 1).0));
    });
    group.bench_function("shard", |b| {
        b.iter(|| std::hint::black_box(shard_pass(&tb, 1).0));
    });
    group.finish();
}

criterion_group!(benches, solver_kernels);
criterion_main!(benches);
