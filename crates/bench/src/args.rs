//! Minimal command-line parsing shared by the reproduction binaries.
//!
//! All binaries accept:
//!
//! * `--full` — run at the paper's instance sizes (hours of CPU);
//! * `--scale <f>` — explicit cell-count scale in `(0, 1]`;
//! * `--seeds <n>` — number of finder seeds (paper: 100);
//! * `--threads <n>` — worker threads (0 = all cores);
//! * `--rng <n>` — master RNG seed;
//! * `--out <dir>` — artifact directory (default `results/`).
//!
//! `table2` additionally accepts `--bookshelf <dir>` to run on real ISPD
//! `.aux` designs instead of the synthetic ISPD-like circuits.

use std::path::PathBuf;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Instance scale in `(0, 1]`.
    pub scale: f64,
    /// Finder seed count.
    pub seeds: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Master RNG seed.
    pub rng: u64,
    /// Artifact directory.
    pub out: PathBuf,
    /// Directory of Bookshelf `.aux` files, if supplied.
    pub bookshelf: Option<PathBuf>,
}

impl CommonArgs {
    /// Parses `std::env::args`, using `default_scale` when neither
    /// `--full` nor `--scale` is given.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments, which is the
    /// desired CLI behavior for these research binaries.
    pub fn parse(default_scale: f64) -> Self {
        Self::parse_from(std::env::args().skip(1), default_scale)
    }

    /// Parses from an explicit iterator (testable form of [`Self::parse`]).
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments.
    pub fn parse_from(args: impl IntoIterator<Item = String>, default_scale: f64) -> Self {
        let mut out = Self {
            scale: default_scale,
            seeds: 100,
            threads: 0,
            rng: 0xDAC,
            out: crate::results_dir(),
            bookshelf: None,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut grab = || it.next().unwrap_or_else(|| panic!("flag {flag} expects a value"));
            match flag.as_str() {
                "--full" => out.scale = 1.0,
                "--scale" => {
                    out.scale = grab().parse().expect("--scale expects a float");
                    assert!(out.scale > 0.0 && out.scale <= 1.0, "--scale must be in (0, 1]");
                }
                "--seeds" => out.seeds = grab().parse().expect("--seeds expects an integer"),
                "--threads" => out.threads = grab().parse().expect("--threads expects an integer"),
                "--rng" => out.rng = grab().parse().expect("--rng expects an integer"),
                "--out" => out.out = PathBuf::from(grab()),
                "--bookshelf" => out.bookshelf = Some(PathBuf::from(grab())),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full | --scale <f> | --seeds <n> | --threads <n> \
                         | --rng <n> | --out <dir> | --bookshelf <dir>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> CommonArgs {
        CommonArgs::parse_from(v.iter().map(|s| s.to_string()), 0.05)
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.05);
        assert_eq!(a.seeds, 100);
        assert_eq!(a.threads, 0);
        assert!(a.bookshelf.is_none());
    }

    #[test]
    fn full_flag() {
        assert_eq!(parse(&["--full"]).scale, 1.0);
    }

    #[test]
    fn explicit_values() {
        let a = parse(&["--scale", "0.2", "--seeds", "40", "--threads", "2", "--rng", "7"]);
        assert_eq!(a.scale, 0.2);
        assert_eq!(a.seeds, 40);
        assert_eq!(a.threads, 2);
        assert_eq!(a.rng, 7);
    }

    #[test]
    fn bookshelf_dir() {
        let a = parse(&["--bookshelf", "/tmp/ispd"]);
        assert_eq!(a.bookshelf.unwrap(), PathBuf::from("/tmp/ispd"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "--scale must be in")]
    fn bad_scale_panics() {
        parse(&["--scale", "2.0"]);
    }
}
