//! Shared infrastructure for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DAC
//! 2010 paper (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-versus-measured results). This library holds
//! the pieces they share: ASCII table rendering, CSV series output, PGM
//! heatmaps, and a tiny argument parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod report;
pub mod trend;

use std::path::{Path, PathBuf};

/// Environment variable overriding where bench artifacts are written
/// (takes precedence over [`RESULTS_DIR`]).
pub const RESULTS_DIR_ENV: &str = "GTL_RESULTS_DIR";

/// Where bench artifacts land, relative to the workspace root — **the**
/// results location: the reproduction binaries, the criterion benches
/// and CI all resolve through [`results_dir`], so there is exactly one
/// place artifacts can end up regardless of the invoking directory
/// (`cargo bench` runs with the crate as cwd, the binaries with the
/// workspace root; both used to disagree).
pub const RESULTS_DIR: &str = "results";

/// Directory where binaries and benches drop CSV/PGM/JSON artifacts:
/// `$GTL_RESULTS_DIR` when set, else [`RESULTS_DIR`] under the workspace
/// root (located from this crate's manifest, so the answer does not
/// depend on the current directory). Created on first use; falls back to
/// the current directory only if creation fails.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os(RESULTS_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(RESULTS_DIR));
    if std::fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}
