//! Shared infrastructure for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DAC
//! 2010 paper (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-versus-measured results). This library holds
//! the pieces they share: ASCII table rendering, CSV series output, PGM
//! heatmaps, and a tiny argument parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod report;

use std::path::PathBuf;

/// Directory where the binaries drop CSV/PGM artifacts (`results/` under
/// the workspace root, or the current directory as fallback).
pub fn results_dir() -> PathBuf {
    let candidates = [PathBuf::from("results"), PathBuf::from("../results")];
    for c in &candidates {
        if c.parent().map(|p| p.as_os_str().is_empty() || p.exists()).unwrap_or(true)
            && std::fs::create_dir_all(c).is_ok()
        {
            return c.clone();
        }
    }
    PathBuf::from(".")
}
