//! Reproduces **Figures 2 and 3**: score-versus-group-size curves for
//! agglomerations seeded inside versus outside the planted GTL.
//!
//! Paper setup: a 250K-cell random graph with one planted 40K-cell GTL.
//! The inside-seeded curve must dip far below 1 at the GTL size and rise
//! afterwards; the outside-seeded curve must stay near 1. Figure 3 shows
//! the same curves under the density-aware `GTL-SD`, with a deeper
//! minimum.
//!
//! Emits `fig2_ngtl.csv` and `fig3_gtlsd.csv` (columns: size, inside,
//! outside) into the results directory.

#![forbid(unsafe_code)]

use gtl_bench::args::CommonArgs;
use gtl_bench::report::write_csv;
use gtl_netlist::CellId;
use gtl_synth::planted;
use gtl_tangled::candidate::{score_curve, CandidateConfig};
use gtl_tangled::{GrowthConfig, MetricKind, OrderingGrower};

fn main() {
    let args = CommonArgs::parse(0.02);
    println!("== Figures 2–3: nGTL-Score and GTL-SD vs group size (scale {}) ==\n", args.scale);

    let mut config = planted::figure2_case(args.scale);
    config.seed ^= args.rng;
    let graph = planted::generate(&config);
    let block = config.blocks[0];
    println!("graph: {} cells, planted GTL of {} cells", graph.netlist.num_cells(), block);

    // Seeds: one deep inside the planted block, one in the background.
    let inside_seed = graph.truth[0][block / 2];
    let outside_seed = CellId::new(block + (graph.netlist.num_cells() - block) / 2);

    let growth = GrowthConfig {
        max_len: (block * 2).min(graph.netlist.num_cells()),
        ..GrowthConfig::default()
    };
    // Both agglomerations are independent; run them through the shared
    // execution layer (per-worker grower scratch, seed-ordered results).
    let seeds = [inside_seed, outside_seed];
    let mut orderings = gtl_core::parallel_map_with(
        args.threads,
        seeds.len(),
        |_| OrderingGrower::new(&graph.netlist, growth),
        |grower, i| grower.grow(seeds[i]),
    );
    let outside = orderings.pop().expect("outside ordering");
    let inside = orderings.pop().expect("inside ordering");

    let a_g = graph.netlist.avg_pins_per_cell();
    for (figure, metric, file) in [
        ("Figure 2", MetricKind::NGtlScore, "fig2_ngtl.csv"),
        ("Figure 3", MetricKind::GtlSd, "fig3_gtlsd.csv"),
    ] {
        let cfg = CandidateConfig { metric, ..CandidateConfig::default() };
        let curve_in = score_curve(&inside, a_g, &cfg);
        let curve_out = score_curve(&outside, a_g, &cfg);

        let len = curve_in.scores.len().min(curve_out.scores.len());
        let sizes: Vec<f64> = (1..=len).map(|k| k as f64).collect();
        let path = args.out.join(file);
        write_csv(
            &path,
            &[
                ("size", &sizes),
                ("inside", &curve_in.scores[..len]),
                ("outside", &curve_out.scores[..len]),
            ],
        )
        .expect("write curve CSV");

        // Characterize the curves like the paper's prose does.
        let skip = 10.min(len.saturating_sub(1));
        let (kmin, smin) = curve_in.scores[skip..]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &s)| (i + skip, s))
            .unwrap();
        let out_tail: f64 = curve_out.scores[curve_out.scores.len() / 2..].iter().sum::<f64>()
            / (curve_out.scores.len() - curve_out.scores.len() / 2) as f64;
        println!(
            "{figure} ({metric}): inside-seed minimum {:.3} at size {} (planted {}); \
             outside-seed tail level {:.2}; wrote {}",
            smin,
            kmin + 1,
            block,
            out_tail,
            path.display()
        );
    }
    println!(
        "\n(paper: inside curve dips to ≈0.1 exactly at the 40K GTL and rises after; \
         outside curve levels off near 0.9; GTL-SD minimum is deeper than nGTL-S)"
    );
}
