//! Ablation table: recovery quality under the paper's design choices.
//!
//! Prints Miss%/Over%/#found on a planted-GTL graph for each combination
//! of (growth criterion × Phase III refinement × metric), quantifying the
//! arguments the paper makes in prose: weight-first growth (§3.2.1),
//! genetic refinement (§3.2.3), and the density-aware metric (§3.1).
//! Criterion wall-time versions of these live in `benches/ablation.rs`.

#![forbid(unsafe_code)]

use gtl_bench::args::CommonArgs;
use gtl_bench::report::Table;
use gtl_synth::planted::{self, PlantedConfig};
use gtl_tangled::{match_gtls, FinderConfig, GrowthCriterion, MetricKind, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(1.0); // scale here means graph multiplier
    println!("== Ablation: finder variants on a planted-GTL graph ==\n");

    let graph = planted::generate(&PlantedConfig {
        num_cells: (20_000f64 * args.scale) as usize,
        blocks: vec![(600f64 * args.scale) as usize, (1_500f64 * args.scale) as usize],
        seed: 0x0b1 ^ args.rng,
        ..PlantedConfig::default()
    });
    println!(
        "graph: {} cells, planted {:?}\n",
        graph.netlist.num_cells(),
        graph.truth.iter().map(Vec::len).collect::<Vec<_>>()
    );

    let base = FinderConfig {
        num_seeds: args.seeds.min(64),
        max_order_len: graph.truth.iter().map(Vec::len).max().unwrap() * 5 / 2,
        min_size: graph.truth.iter().map(Vec::len).min().unwrap() / 3,
        threads: args.threads,
        rng_seed: args.rng,
        ..FinderConfig::default()
    };

    let mut table =
        Table::new(&["criterion", "refine", "metric", "#found", "matched", "max Miss", "max Over"]);
    // The eight ablation configs are independent: fan them out through the
    // shared execution layer (row order is preserved) and keep each finder
    // single-threaded so the outer parallelism isn't oversubscribed.
    let mut variants = Vec::new();
    for criterion in [GrowthCriterion::WeightFirst, GrowthCriterion::CutFirst] {
        for refine in [true, false] {
            for metric in [MetricKind::GtlSd, MetricKind::NGtlScore] {
                variants.push((criterion, refine, metric));
            }
        }
    }
    let rows = gtl_core::parallel_map(args.threads, variants.len(), |i| {
        let (criterion, refine, metric) = variants[i];
        let config = FinderConfig { criterion, refine, metric, threads: 1, ..base };
        let result = TangledLogicFinder::new(&graph.netlist, config).run();
        let found: Vec<Vec<_>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
        let report = match_gtls(&graph.truth, &found, graph.netlist.num_cells());
        [
            format!("{criterion:?}"),
            if refine { "on" } else { "off" }.to_string(),
            metric.to_string(),
            format!("{}", result.gtls.len()),
            format!("{}/{}", report.matches.len(), graph.truth.len()),
            format!("{:.2}%", report.max_miss_pct()),
            format!("{:.2}%", report.max_over_pct()),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "(the paper's choices — weight-first growth, refinement on, GTL-SD — \
         should dominate or tie every row)"
    );
}
