//! Reproduces **Figures 1, 6 and 7** plus the §5.1.3 statistics: the
//! industrial circuit's congestion map, the GTL overlay, and the
//! congestion after 4× cell inflation.
//!
//! Flow: generate the industrial-like circuit → find GTLs → place the
//! baseline and estimate congestion (Figure 1) → overlay GTL positions
//! (Figure 6) → inflate all GTL cells 4×, re-place, re-estimate
//! (Figure 7) → report the reductions (paper: nets through 100% tiles
//! 179K → 36K ≈ 5×, through 90% tiles 217K → 113K ≈ 2×, average
//! congestion 136% → 91%).
//!
//! Emits `fig1_congestion_before.pgm`, `fig6_gtl_overlay.pgm`,
//! `fig7_congestion_after.pgm` and prints ASCII heatmaps.

#![forbid(unsafe_code)]

use gtl_bench::args::CommonArgs;
use gtl_bench::report::{ascii_heatmap, write_pgm};
use gtl_netlist::CellId;
use gtl_place::congestion::RoutingConfig;
use gtl_place::inflate::run_inflation_flow;
use gtl_place::PlacerConfig;
use gtl_synth::industrial::{self, IndustrialConfig};
use gtl_tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(0.01);
    println!(
        "== Figures 1/6/7 + §5.1.3: industrial congestion and cell inflation (scale {}) ==\n",
        args.scale
    );

    let config = IndustrialConfig {
        scale: args.scale,
        seed: 0x65AA ^ args.rng,
        ..IndustrialConfig::default()
    };
    let circuit = industrial::generate(&config);
    let netlist = &circuit.netlist;
    println!("{}: |V| = {}", circuit.name, netlist.num_cells());

    // --- Find the GTLs (the blobs) --------------------------------------
    let largest = circuit.truth.iter().map(Vec::len).max().unwrap_or(1);
    let smallest = circuit.truth.iter().map(Vec::len).min().unwrap_or(1);
    // Random seeds only find a blob when one lands inside it (§3.2.2: "if
    // the number of searches is large enough, most of the GTLs can be
    // captured"); guarantee ≈3 expected hits even in the smallest blob.
    let num_seeds = args.seeds.max(3 * circuit.netlist.num_cells() / smallest.max(1));
    let finder_config = FinderConfig {
        num_seeds,
        max_order_len: (largest * 5 / 2).max(512),
        min_size: (largest / 20).clamp(16, 1000),
        // The paper's rule of thumb: strong GTLs score well below 0.1;
        // marginal background regions (≈0.6) are not dissolved ROMs.
        accept_threshold: 0.3,
        threads: args.threads,
        rng_seed: args.rng,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(netlist, finder_config).run();
    let gtl_cells: Vec<CellId> = result.gtls.iter().flat_map(|g| g.cells.iter().copied()).collect();
    println!(
        "found {} GTLs covering {} cells ({:.1}% of design)\n",
        result.gtls.len(),
        gtl_cells.len(),
        100.0 * gtl_cells.len() as f64 / netlist.num_cells() as f64
    );

    // --- Inflation flow (places baseline + inflated) ---------------------
    // Worker count from --threads for both the sharded placer and the
    // striped estimator; the outcome is identical for any value.
    let routing = RoutingConfig {
        tiles: 24,
        target_mean: 0.5,
        threads: args.threads,
        ..RoutingConfig::default()
    };
    let placer = PlacerConfig { threads: args.threads, ..PlacerConfig::default() };
    // Generous baseline whitespace, as in the paper's floorplan: inflation
    // must be absorbable without densifying the whole die.
    let outcome = run_inflation_flow(netlist, &gtl_cells, 4.0, 0.35, &placer, &routing);

    // --- Figure 1: baseline congestion ----------------------------------
    let t = outcome.baseline_map.tiles();
    let before_grid = outcome.baseline_map.to_grid();
    write_pgm(args.out.join("fig1_congestion_before.pgm"), &before_grid, t, t)
        .expect("write fig1 heatmap");
    println!("Figure 1 — routing congestion, baseline placement:");
    println!("{}", ascii_heatmap(&before_grid, t, t));

    // --- Figure 6: GTL overlay on the baseline placement -----------------
    let die = outcome.die;
    let mut overlay = vec![0.0f64; t * t];
    for gtl in &result.gtls {
        for &c in &gtl.cells {
            let (x, y) = outcome.baseline_placement.position(c);
            let gx = ((x / die.width * t as f64) as usize).min(t - 1);
            let gy = ((y / die.height * t as f64) as usize).min(t - 1);
            overlay[gy * t + gx] += 1.0;
        }
    }
    write_pgm(args.out.join("fig6_gtl_overlay.pgm"), &overlay, t, t).expect("write fig6 heatmap");
    println!("Figure 6 — GTL cells in the baseline placement:");
    println!("{}", ascii_heatmap(&overlay, t, t));

    // Numeric form of "GTLs match the hotspots": fraction of the hottest
    // tiles that contain GTL cells.
    let mut ranked: Vec<usize> = (0..t * t).collect();
    ranked.sort_by(|&a, &b| before_grid[b].total_cmp(&before_grid[a]));
    let hot = &ranked[..(t * t / 20).max(1)];
    let covered = hot.iter().filter(|&&i| overlay[i] > 0.0).count();
    println!(
        "{covered}/{} of the hottest 5% tiles contain GTL cells \
         (paper: GTLs \"match almost exactly\" the hotspots)\n",
        hot.len()
    );

    // --- Figure 7: after inflation ---------------------------------------
    let after_grid = outcome.inflated_map.to_grid();
    write_pgm(args.out.join("fig7_congestion_after.pgm"), &after_grid, t, t)
        .expect("write fig7 heatmap");
    println!("Figure 7 — routing congestion after 4× inflation of GTL cells:");
    println!("{}", ascii_heatmap(&after_grid, t, t));

    // --- §5.1.3 statistics -----------------------------------------------
    println!("before: {}", outcome.before);
    println!("after:  {}", outcome.after);
    println!(
        "nets through ≥100% tiles: {} → {} ({:.1}× reduction; paper 179K → 36K ≈ 5×)",
        outcome.before.nets_through_100pct,
        outcome.after.nets_through_100pct,
        outcome.reduction_100pct()
    );
    println!(
        "nets through ≥90% tiles:  {} → {} ({:.1}× reduction; paper 217K → 113K ≈ 2×)",
        outcome.before.nets_through_90pct,
        outcome.after.nets_through_90pct,
        outcome.reduction_90pct()
    );
    println!(
        "average congestion metric: {:.0}% → {:.0}% (paper 136% → 91%)",
        outcome.before.average_congestion_pct, outcome.after.average_congestion_pct
    );
}
