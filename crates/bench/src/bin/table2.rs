//! Reproduces **Table 2**: finder results on the ISPD 2005/2006 placement
//! benchmarks (Bigblue1–3, Adaptec1–3).
//!
//! By default each benchmark is an ISPD-like synthetic circuit at the
//! requested scale (see `DESIGN.md` §4 for the substitution rationale).
//! Pass `--bookshelf <dir>` holding `<name>.aux` files to run on the real
//! benchmarks instead.

#![forbid(unsafe_code)]

use std::time::Instant;

use gtl_bench::args::CommonArgs;
use gtl_bench::report::Table;
use gtl_synth::ispd_like::{self, IspdBenchmark, IspdLikeConfig};
use gtl_tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(0.02);
    println!("== Table 2: results on ISPD 05/06 placement benchmarks (scale {}) ==\n", args.scale);

    let mut table = Table::new(&[
        "Case",
        "|V|",
        "#seeds",
        "#GTL",
        "Top 3",
        "GTL size",
        "Cut",
        "GTL-S",
        "GTL-SD",
        "Runtime(m)",
    ]);

    for benchmark in IspdBenchmark::ALL {
        let netlist = match &args.bookshelf {
            Some(dir) => {
                let aux = dir.join(format!("{}.aux", benchmark.name()));
                match gtl_netlist::bookshelf::read_aux(&aux) {
                    Ok(design) => design.netlist,
                    Err(e) => {
                        eprintln!("{}: skipping ({e})", benchmark.name());
                        continue;
                    }
                }
            }
            None => {
                let mut cfg = IspdLikeConfig::new(benchmark, args.scale);
                cfg.seed ^= args.rng;
                ispd_like::generate(&cfg).netlist
            }
        };

        let finder_config = FinderConfig {
            num_seeds: args.seeds,
            max_order_len: (netlist.num_cells() / 5).clamp(2_000, 100_000),
            min_size: 30,
            threads: args.threads,
            rng_seed: args.rng,
            ..FinderConfig::default()
        };
        let start = Instant::now();
        let result = TangledLogicFinder::new(&netlist, finder_config).run();
        let minutes = start.elapsed().as_secs_f64() / 60.0;

        if result.gtls.is_empty() {
            table.row(&[
                benchmark.name().to_string(),
                format!("{}", netlist.num_cells()),
                format!("{}", args.seeds),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{minutes:.2}"),
            ]);
            continue;
        }
        for (i, gtl) in result.gtls.iter().take(3).enumerate() {
            let (case, v, seeds, count, runtime) = if i == 0 {
                (
                    benchmark.name().to_string(),
                    format!("{}", netlist.num_cells()),
                    format!("{}", args.seeds),
                    format!("{}", result.gtls.len()),
                    format!("{minutes:.2}"),
                )
            } else {
                Default::default()
            };
            table.row(&[
                case,
                v,
                seeds,
                count,
                format!("Structure {}", i + 1),
                format!("{}", gtl.len()),
                format!("{}", gtl.stats.cut),
                format!("{:.3}", gtl.ngtl_score),
                format!("{:.3}", gtl.gtl_sd),
                runtime,
            ]);
        }
        eprintln!(
            "{}: {} candidates from {} seeds, p≈{:.2}",
            benchmark.name(),
            result.num_candidates,
            args.seeds,
            result.avg_rent_exponent
        );
    }

    println!("{}", table.render());
    println!(
        "(paper at full scale: 54–112 GTLs per design; top GTL-S 0.065–0.204, \
         GTL-SD 0.031–0.225; runtimes 77–159 min on 8 threads)"
    );
}
