//! Reproduces **Table 1**: tangled-logic finder on random graphs with
//! planted GTLs.
//!
//! Paper setup: four cases (10K/100K/100K/800K cells; planted 500×1,
//! 2K+15K, 5K×1, 40K×6), 100 seeds. Run `--full` for paper sizes; the
//! default scale finishes in about a minute.

#![forbid(unsafe_code)]

use std::time::Instant;

use gtl_bench::args::CommonArgs;
use gtl_bench::report::Table;
use gtl_synth::planted;
use gtl_tangled::{match_gtls, FinderConfig, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(0.05);
    println!("== Table 1: experimental results on random graphs (scale {}) ==\n", args.scale);

    let mut table = Table::new(&[
        "Case",
        "|V|",
        "Planted GTLs",
        "#seeds",
        "#found",
        "GTL size",
        "nGTL-S",
        "GTL-SD",
        "Miss",
        "Over",
    ]);

    for (case_idx, mut config) in planted::table1_cases(args.scale).into_iter().enumerate() {
        config.seed = config.seed.wrapping_add(args.rng);
        let graph = planted::generate(&config);
        let largest = config.blocks.iter().copied().max().unwrap_or(1);
        let smallest = config.blocks.iter().copied().min().unwrap_or(1);

        let finder_config = FinderConfig {
            num_seeds: args.seeds,
            max_order_len: (largest * 5 / 2).max(256),
            min_size: (smallest / 3).clamp(8, 100),
            threads: args.threads,
            rng_seed: args.rng,
            ..FinderConfig::default()
        };
        let start = Instant::now();
        let result = TangledLogicFinder::new(&graph.netlist, finder_config).run();
        let elapsed = start.elapsed();

        let found: Vec<Vec<_>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
        let report = match_gtls(&graph.truth, &found, graph.netlist.num_cells());

        let planted_desc = describe_blocks(&config.blocks);
        let mut first = true;
        for m in &report.matches {
            let gtl = &result.gtls[m.found_index];
            let (case, v, planted, seeds, found_count) = if first {
                (
                    format!("{}", case_idx + 1),
                    format!("{}", graph.netlist.num_cells()),
                    planted_desc.clone(),
                    format!("{}", args.seeds),
                    format!("{}", result.gtls.len()),
                )
            } else {
                Default::default()
            };
            first = false;
            table.row(&[
                case,
                v,
                planted,
                seeds,
                found_count,
                format!("{}", gtl.len()),
                format!("{:.4}", gtl.ngtl_score),
                format!("{:.4}", gtl.gtl_sd),
                format!("{:.2}%", m.miss_pct),
                format!("{:.2}%", m.over_pct),
            ]);
        }
        if report.matches.is_empty() {
            table.row(&[
                format!("{}", case_idx + 1),
                format!("{}", graph.netlist.num_cells()),
                planted_desc,
                format!("{}", args.seeds),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "100%".into(),
                "-".into(),
            ]);
        }
        eprintln!(
            "case {}: {} candidates, {} empty searches, p≈{:.2}, {:.1}s",
            case_idx + 1,
            result.num_candidates,
            result.num_empty_searches,
            result.avg_rent_exponent,
            elapsed.as_secs_f64()
        );
    }

    println!("{}", table.render());
    println!("(paper: all GTLs found; max Miss 0.14%, max Over 0.5%)");
}

fn describe_blocks(blocks: &[usize]) -> String {
    // Compress runs of equal sizes: [40K; 6] → "40000×6".
    let mut parts: Vec<(usize, usize)> = Vec::new();
    for &b in blocks {
        match parts.last_mut() {
            Some((size, count)) if *size == b => *count += 1,
            _ => parts.push((b, 1)),
        }
    }
    parts.into_iter().map(|(size, count)| format!("{size}×{count}")).collect::<Vec<_>>().join(" + ")
}
