//! Reproduces **Figure 5**: nGTL-Score, density-aware GTL-SD, and ratio
//! cut `T(C)/|C|` versus the prefix groups of one Bigblue1 linear
//! ordering.
//!
//! The paper's point: both GTL metrics dip at the same structure boundary
//! (GTL-SD deeper), while ratio cut decreases monotonically — its global
//! minimum sits at the right end, so it cannot identify structures.
//!
//! Emits `fig5_curves.csv` (size, ngtl_s, gtl_sd, ratio_cut).

#![forbid(unsafe_code)]

use gtl_bench::args::CommonArgs;
use gtl_bench::report::write_csv;
use gtl_synth::ispd_like::{self, IspdBenchmark, IspdLikeConfig};
use gtl_tangled::candidate::{score_curve, CandidateConfig};
use gtl_tangled::metrics::baseline;
use gtl_tangled::{GrowthConfig, MetricKind, OrderingGrower};

fn main() {
    let args = CommonArgs::parse(0.02);
    println!(
        "== Figure 5: metric curves on a Bigblue1 linear ordering (scale {}) ==\n",
        args.scale
    );

    let mut cfg = IspdLikeConfig::new(IspdBenchmark::Bigblue1, args.scale);
    cfg.seed ^= args.rng;
    let circuit = ispd_like::generate(&cfg);
    println!("{}: |V| = {}", circuit.name, circuit.netlist.num_cells());

    // Seed inside the first embedded structure so the ordering crosses a
    // real boundary (the paper grows from a random seed that found one).
    let seed = circuit.truth[0][circuit.truth[0].len() / 2];
    let growth = GrowthConfig {
        max_len: (circuit.netlist.num_cells() / 4).clamp(512, 100_000),
        ..GrowthConfig::default()
    };
    let ordering = OrderingGrower::new(&circuit.netlist, growth).grow(seed);
    let a_g = circuit.netlist.avg_pins_per_cell();

    let ngtl = score_curve(
        &ordering,
        a_g,
        &CandidateConfig { metric: MetricKind::NGtlScore, ..CandidateConfig::default() },
    );
    let gtlsd = score_curve(
        &ordering,
        a_g,
        &CandidateConfig { metric: MetricKind::GtlSd, ..CandidateConfig::default() },
    );
    let ratio: Vec<f64> =
        (0..ordering.len()).map(|k| baseline::ratio_cut(&ordering.stats_at(k))).collect();

    let sizes: Vec<f64> = (1..=ordering.len()).map(|k| k as f64).collect();
    let path = args.out.join("fig5_curves.csv");
    write_csv(
        &path,
        &[
            ("size", &sizes),
            ("ngtl_s", &ngtl.scores),
            ("gtl_sd", &gtlsd.scores),
            ("ratio_cut", &ratio),
        ],
    )
    .expect("write curve CSV");
    println!("wrote {}", path.display());

    // The paper's three claims, checked numerically.
    let skip = 10.min(ordering.len().saturating_sub(1));
    let argmin = |scores: &[f64]| {
        scores[skip..]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &s)| (i + skip + 1, s))
            .unwrap()
    };
    let (k_ngtl, s_ngtl) = argmin(&ngtl.scores);
    let (k_sd, s_sd) = argmin(&gtlsd.scores);
    let (k_rc, _) = argmin(&ratio);
    println!("nGTL-S  minimum: {s_ngtl:.3} at size {k_ngtl}");
    println!("GTL-SD  minimum: {s_sd:.3} at size {k_sd}");
    println!(
        "ratio-cut minimum at size {k_rc} of {} ({})",
        ordering.len(),
        if k_rc + skip >= ordering.len() * 9 / 10 {
            "right end — favors huge groups, as the paper shows"
        } else {
            "NOT at the right end — unlike the paper"
        }
    );
    println!(
        "\n(paper: both GTL curves dip at the same place, GTL-SD deeper; the ratio-cut \
         curve is flat with its global minimum at its right end)"
    );
}
