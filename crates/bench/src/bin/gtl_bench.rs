//! `gtl-bench` — offline utilities over the bench artifacts.
//!
//! ```text
//! gtl-bench trend [--results DIR] [--baselines DIR] [--max-regress F]
//! ```
//!
//! `trend` compares the freshly emitted `results/*.json` bench reports
//! against the committed snapshots in `results/baselines/` and exits
//! non-zero on a cold-path regression beyond the tolerance (default
//! 30%) — the CI bench-trend gate. See [`gtl_bench::trend`].

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use gtl_bench::trend::{self, MetricCheck};

const USAGE: &str = "\
gtl-bench — offline bench-artifact utilities

USAGE:
  gtl-bench trend [--results DIR] [--baselines DIR] [--max-regress F]

  trend   compare results/*.json against results/baselines/*.json and
          fail (exit 1) when a tracked cold-path metric drops more than
          the tolerance below its baseline (default 0.30 = 30%).
          Missing or malformed artifacts fail the gate loudly.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trend") => cmd_trend(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let value = args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))?;
    if value.starts_with("--") {
        // A flag directly followed by another flag has no value; dying
        // here beats silently treating "--baselines" as a path.
        eprintln!("{flag} expects a value, found `{value}`");
        std::process::exit(2);
    }
    Some(value)
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let results =
        flag_value(args, "--results").map(PathBuf::from).unwrap_or_else(gtl_bench::results_dir);
    let baselines = flag_value(args, "--baselines")
        .map(PathBuf::from)
        .unwrap_or_else(|| gtl_bench::results_dir().join(trend::BASELINES_SUBDIR));
    let max_regress: f64 = match flag_value(args, "--max-regress") {
        None => trend::DEFAULT_MAX_REGRESS,
        Some(raw) => match raw.parse() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!("--max-regress expects a fraction in [0, 1), got `{raw}`");
                return ExitCode::from(2);
            }
        },
    };

    let checks = match trend::run_gate(&results, &baselines, max_regress) {
        Ok(checks) => checks,
        Err(message) => {
            eprintln!("bench-trend gate error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let mut table = gtl_bench::report::Table::new(&[
        "bench", "metric", "baseline", "current", "ratio", "status",
    ]);
    let mut regressed = false;
    for MetricCheck { bench, metric, baseline, current, ratio, regressed: bad } in &checks {
        regressed |= bad;
        table.row(&[
            bench.clone(),
            metric.clone(),
            format!("{baseline:.3}"),
            format!("{current:.3}"),
            format!("{ratio:.3}"),
            if *bad { "REGRESSED".to_string() } else { "ok".to_string() },
        ]);
    }
    print!("{}", table.render());
    if regressed {
        eprintln!(
            "bench-trend gate FAILED: a cold-path metric dropped more than {:.0}% below {}",
            max_regress * 100.0,
            baselines.display()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-trend gate ok ({} metric(s) within {:.0}% of baseline)",
            checks.len(),
            max_regress * 100.0
        );
        ExitCode::SUCCESS
    }
}
