//! Reproduces **Table 3**: GTLs found on the industrial circuit.
//!
//! The industrial-like design plants five dissolved-ROM blobs with the
//! paper's size proportions (4 × ~32K + ~11K at full scale) and tiny
//! boundary cuts; the finder must recover all five nearly exactly with
//! GTL-Scores ≈ 0.025.

#![forbid(unsafe_code)]

use std::time::Instant;

use gtl_bench::args::CommonArgs;
use gtl_bench::report::Table;
use gtl_synth::industrial::{self, IndustrialConfig};
use gtl_tangled::{match_gtls, FinderConfig, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(0.02);
    println!("== Table 3: GTLs found on the industrial circuit (scale {}) ==\n", args.scale);

    let config = IndustrialConfig {
        scale: args.scale,
        seed: 0x65AA ^ args.rng,
        ..IndustrialConfig::default()
    };
    let circuit = industrial::generate(&config);
    eprintln!("{}: |V| = {}", circuit.name, circuit.netlist.num_cells());

    let largest = circuit.truth.iter().map(Vec::len).max().unwrap_or(1);
    let smallest = circuit.truth.iter().map(Vec::len).min().unwrap_or(1);
    // Random seeds only find a blob when one lands inside it (§3.2.2: "if
    // the number of searches is large enough, most of the GTLs can be
    // captured"); guarantee ≈3 expected hits even in the smallest blob.
    let num_seeds = args.seeds.max(3 * circuit.netlist.num_cells() / smallest.max(1));
    let finder_config = FinderConfig {
        num_seeds,
        max_order_len: (largest * 5 / 2).max(512),
        min_size: (largest / 20).clamp(16, 1000),
        // The paper's rule of thumb: strong GTLs score well below 0.1;
        // marginal background regions (≈0.6) are not dissolved ROMs.
        accept_threshold: 0.3,
        threads: args.threads,
        rng_seed: args.rng,
        ..FinderConfig::default()
    };
    let start = Instant::now();
    let result = TangledLogicFinder::new(&circuit.netlist, finder_config).run();
    let elapsed = start.elapsed();

    let found: Vec<Vec<_>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
    let report = match_gtls(&circuit.truth, &found, circuit.netlist.num_cells());

    let mut table = Table::new(&["Size of GTL in design", "Size of GTL found", "Cut", "GTL-Score"]);
    for m in &report.matches {
        let gtl = &result.gtls[m.found_index];
        table.row(&[
            format!("{}", m.truth_size),
            format!("{}", gtl.len()),
            format!("{}", gtl.stats.cut),
            format!("{:.3}", gtl.ngtl_score),
        ]);
    }
    for &missed in &report.missed_truths {
        table.row(&[
            format!("{}", circuit.truth[missed].len()),
            "MISSED".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "found {}/{} blobs in {:.1}s ({} total GTLs reported, {} spurious)",
        report.matches.len(),
        circuit.truth.len(),
        elapsed.as_secs_f64(),
        result.gtls.len(),
        report.spurious_found.len()
    );
    println!(
        "(paper: 5/5 blobs; found sizes within ±0.2% of design sizes; cuts 28–36; \
         GTL-Score 0.025–0.028)"
    );
}
