//! Reproduces **Figure 4**: placement plot of Bigblue1 with the discovered
//! GTLs highlighted.
//!
//! The circuit is placed with the quadratic placer; each discovered GTL's
//! cells are tagged. Because a placer pulls highly connected cells
//! together, each GTL should occupy a small local region ("clots with
//! colors different from the majority").
//!
//! Emits `fig4_placement.csv` (x, y, gtl — 0 for background, i ≥ 1 for
//! the i-th GTL) and `fig4_gtls.pgm` (GTL cell density heatmap), plus a
//! numeric spread check per GTL.

#![forbid(unsafe_code)]

use gtl_bench::args::CommonArgs;
use gtl_bench::report::{write_csv, write_pgm};
use gtl_place::{place, Die, PlacerConfig};
use gtl_synth::ispd_like::{self, IspdBenchmark, IspdLikeConfig};
use gtl_tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    let args = CommonArgs::parse(0.02);
    println!("== Figure 4: GTLs found in Bigblue1, shown on placement (scale {}) ==\n", args.scale);

    let mut cfg = IspdLikeConfig::new(IspdBenchmark::Bigblue1, args.scale);
    // A handful of structures so the figure shows distinct clots rather
    // than a structure-saturated die.
    cfg.num_structures = Some(8);
    cfg.seed ^= args.rng;
    let circuit = ispd_like::generate(&cfg);
    let netlist = &circuit.netlist;
    println!("{}: |V| = {}", circuit.name, netlist.num_cells());

    // Find GTLs.
    let finder_config = FinderConfig {
        num_seeds: args.seeds,
        max_order_len: (netlist.num_cells() / 5).clamp(1_000, 100_000),
        min_size: 30,
        threads: args.threads,
        rng_seed: args.rng,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(netlist, finder_config).run();
    println!("found {} GTLs", result.gtls.len());

    // Place (sharded; worker count from --threads, same result for any).
    let die = Die::for_netlist(netlist, 0.7);
    let placer_config = PlacerConfig { threads: args.threads, ..PlacerConfig::default() };
    let placement = place(netlist, &die, &placer_config);

    // Tag cells with their GTL index.
    let mut tag = vec![0usize; netlist.num_cells()];
    for (i, gtl) in result.gtls.iter().enumerate() {
        for &c in &gtl.cells {
            tag[c.index()] = i + 1;
        }
    }

    let xs: Vec<f64> = placement.xs().to_vec();
    let ys: Vec<f64> = placement.ys().to_vec();
    let tags: Vec<f64> = tag.iter().map(|&t| t as f64).collect();
    let path = args.out.join("fig4_placement.csv");
    write_csv(&path, &[("x", &xs), ("y", &ys), ("gtl", &tags)]).expect("write placement CSV");
    println!("wrote {}", path.display());

    // GTL-cell density heatmap (bright = many GTL cells).
    let grid_n = 64usize;
    let mut grid = vec![0.0f64; grid_n * grid_n];
    for cell in netlist.cells() {
        if tag[cell.index()] == 0 {
            continue;
        }
        let (x, y) = placement.position(cell);
        let gx = ((x / die.width * grid_n as f64) as usize).min(grid_n - 1);
        let gy = ((y / die.height * grid_n as f64) as usize).min(grid_n - 1);
        grid[gy * grid_n + gx] += 1.0;
    }
    let pgm = args.out.join("fig4_gtls.pgm");
    write_pgm(&pgm, &grid, grid_n, grid_n).expect("write heatmap");
    println!("wrote {}", pgm.display());

    // Numeric version of the visual claim: each GTL is spatially compact.
    // RMS radius around the GTL centroid is robust to a few straggler
    // cells that a bounding box would over-weight.
    let mut compact = 0usize;
    for (i, gtl) in result.gtls.iter().enumerate() {
        let n = gtl.len() as f64;
        let (mut cx, mut cy) = (0.0, 0.0);
        for &c in &gtl.cells {
            let (x, y) = placement.position(c);
            cx += x;
            cy += y;
        }
        cx /= n;
        cy /= n;
        let mut rr = 0.0;
        for &c in &gtl.cells {
            let (x, y) = placement.position(c);
            rr += (x - cx).powi(2) + (y - cy).powi(2);
        }
        let rms = (rr / n).sqrt();
        // Fair-share radius: a disc holding the GTL's area share.
        let cell_frac = n / netlist.num_cells() as f64;
        let fair = (cell_frac * die.width * die.height / std::f64::consts::PI).sqrt();
        if rms < 3.0 * fair {
            compact += 1;
        }
        if i < 6 {
            println!(
                "GTL {}: {} cells, RMS radius {:.1} (fair-share radius {:.1}, die {:.0}×{:.0})",
                i + 1,
                gtl.len(),
                rms,
                fair,
                die.width,
                die.height
            );
        }
    }
    println!(
        "\n{compact}/{} GTLs are spatially compact after placement \
         (paper: GTLs appear as localized clots in Figure 4)",
        result.gtls.len()
    );
}
