//! The offline bench-trend gate behind `gtl-bench trend`.
//!
//! CI runs the bench smoke steps (which emit `results/*.json` through
//! [`crate::results_dir`]), then compares the fresh numbers against the
//! committed snapshots in `results/baselines/` and fails the build on a
//! cold-path regression beyond [`DEFAULT_MAX_REGRESS`]. The gate is pure
//! file comparison — no benchmark re-runs, no network — so it can run
//! anywhere the JSON artifacts exist.
//!
//! Tracked metrics (higher is better, all cold-path — warm-cache numbers
//! are bounded by memcpy and too noisy to gate on):
//!
//! * `serve_throughput.json` → `cold_req_per_s` (requests per second
//!   with the response cache disabled);
//! * `finder_parallel.json` → `serial_finds_per_s` (the reciprocal of
//!   the single-thread wall time of the full three-phase finder);
//! * `placement_parallel.json` → `serial_places_per_s` (the reciprocal
//!   of the single-thread wall time of a full sharded `place()` run);
//! * `solver_kernels.json` → `<kernel>_solves_per_s` for every kernel
//!   row (currently `anchored` and `shard`), gating the fused CG
//!   kernels directly, below placer-level noise;
//! * `loadgen.json` → `closed_req_per_s` (closed-loop replay throughput
//!   of the full serve path over real TCP, emitted by
//!   `gtl loadgen replay --summary`).
//!
//! Baselines are **machine- and toolchain-relative** absolute numbers:
//! they must be re-snapshotted whenever the reference hardware or the
//! pinned toolchain changes (run every tracked bench, then copy
//! `results/<bench>.json` into `results/baselines/`), and a CI
//! migration to different runner hardware starts by refreshing them in
//! the same PR. The 30% default tolerance absorbs run-to-run noise, not
//! hardware deltas.

use std::path::Path;

use crate::report::Json;

/// Benches the gate tracks; each must have a current result *and* a
/// committed baseline, so a silently-missing artifact fails loudly
/// instead of passing vacuously.
pub const TRACKED_BENCHES: &[&str] =
    &["serve_throughput", "finder_parallel", "placement_parallel", "solver_kernels", "loadgen"];

/// Default tolerated cold-path regression: fail when a tracked metric
/// drops more than 30% below its committed baseline.
pub const DEFAULT_MAX_REGRESS: f64 = 0.30;

/// Directory (under the results dir) holding the committed snapshots.
pub const BASELINES_SUBDIR: &str = "baselines";

/// One tracked metric compared against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Which bench file the metric came from.
    pub bench: String,
    /// Metric name (see module docs).
    pub metric: String,
    /// The committed baseline value (higher is better).
    pub baseline: f64,
    /// The freshly measured value.
    pub current: f64,
    /// `current / baseline`; below `1 - max_regress` is a regression.
    pub ratio: f64,
    /// Whether this metric regressed beyond the tolerance.
    pub regressed: bool,
}

fn field<'a>(doc: &'a Json, name: &str, context: &str) -> Result<&'a Json, String> {
    doc.get(name).ok_or_else(|| format!("{context}: missing `{name}`"))
}

fn number(doc: &Json, name: &str, context: &str) -> Result<f64, String> {
    field(doc, name, context)?
        .as_f64()
        .ok_or_else(|| format!("{context}: `{name}` is not a number"))
}

/// Extracts the tracked cold-path metrics from one bench report.
///
/// # Errors
///
/// A description of the first missing/malformed field, or an unknown
/// bench name.
pub fn tracked_metrics(bench: &str, doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let runs = field(doc, "runs", bench)?
        .as_arr()
        .ok_or_else(|| format!("{bench}: `runs` is not an array"))?;
    match bench {
        "serve_throughput" => {
            for run in runs {
                if field(run, "mode", bench)?.as_str() == Some("cold") {
                    let req_per_s = number(run, "req_per_s", bench)?;
                    return Ok(vec![("cold_req_per_s".to_string(), req_per_s)]);
                }
            }
            Err(format!("{bench}: no run with mode \"cold\""))
        }
        "finder_parallel" => {
            for run in runs {
                if field(run, "threads", bench)?.as_u64() == Some(1) {
                    let wall = number(run, "wall_seconds", bench)?;
                    if wall <= 0.0 || wall.is_nan() {
                        return Err(format!("{bench}: non-positive serial wall time {wall}"));
                    }
                    return Ok(vec![("serial_finds_per_s".to_string(), 1.0 / wall)]);
                }
            }
            Err(format!("{bench}: no run with threads 1"))
        }
        "placement_parallel" => {
            for run in runs {
                if field(run, "threads", bench)?.as_u64() == Some(1) {
                    let wall = number(run, "wall_seconds", bench)?;
                    if wall <= 0.0 || wall.is_nan() {
                        return Err(format!("{bench}: non-positive serial wall time {wall}"));
                    }
                    return Ok(vec![("serial_places_per_s".to_string(), 1.0 / wall)]);
                }
            }
            Err(format!("{bench}: no run with threads 1"))
        }
        "solver_kernels" => {
            let mut metrics = Vec::new();
            for run in runs {
                let kernel = field(run, "kernel", bench)?
                    .as_str()
                    .ok_or_else(|| format!("{bench}: `kernel` is not a string"))?;
                let solves_per_s = number(run, "solves_per_s", bench)?;
                metrics.push((format!("{kernel}_solves_per_s"), solves_per_s));
            }
            if metrics.is_empty() {
                return Err(format!("{bench}: no kernel runs"));
            }
            Ok(metrics)
        }
        "loadgen" => {
            for run in runs {
                if field(run, "mode", bench)?.as_str() == Some("closed") {
                    let req_per_s = number(run, "req_per_s", bench)?;
                    return Ok(vec![("closed_req_per_s".to_string(), req_per_s)]);
                }
            }
            Err(format!("{bench}: no run with mode \"closed\""))
        }
        other => Err(format!("unknown tracked bench `{other}`")),
    }
}

/// Compares one bench's current report against its baseline.
///
/// # Errors
///
/// A description of any missing/malformed metric (a metric present in
/// the baseline but absent from the current report is an error, not a
/// pass).
pub fn compare(
    bench: &str,
    baseline: &Json,
    current: &Json,
    max_regress: f64,
) -> Result<Vec<MetricCheck>, String> {
    let base = tracked_metrics(bench, baseline)?;
    let now = tracked_metrics(bench, current)?;
    base.into_iter()
        .map(|(metric, baseline_value)| {
            let current_value = now
                .iter()
                .find(|(name, _)| *name == metric)
                .map(|&(_, v)| v)
                .ok_or_else(|| format!("{bench}: current report lacks metric `{metric}`"))?;
            if baseline_value <= 0.0 || baseline_value.is_nan() {
                return Err(format!("{bench}: non-positive baseline for `{metric}`"));
            }
            let ratio = current_value / baseline_value;
            Ok(MetricCheck {
                bench: bench.to_string(),
                metric,
                baseline: baseline_value,
                current: current_value,
                ratio,
                regressed: ratio < 1.0 - max_regress,
            })
        })
        .collect()
}

/// Runs the whole gate: for every tracked bench, load
/// `<results>/<bench>.json` and `<baselines>/<bench>.json` and compare.
///
/// # Errors
///
/// A description of the first unreadable/unparseable file or malformed
/// report — missing artifacts fail the gate rather than skipping it.
pub fn run_gate(
    results: &Path,
    baselines: &Path,
    max_regress: f64,
) -> Result<Vec<MetricCheck>, String> {
    let load = |path: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde::json::from_str::<Json>(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))
    };
    let mut checks = Vec::new();
    for bench in TRACKED_BENCHES {
        let file = format!("{bench}.json");
        let baseline = load(&baselines.join(&file))?;
        let current = load(&results.join(&file))?;
        checks.extend(compare(bench, &baseline, &current, max_regress)?);
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_doc(cold_rps: f64) -> Json {
        Json::obj([
            ("bench", Json::str("serve_throughput")),
            (
                "runs",
                Json::arr([
                    Json::obj([
                        ("mode", Json::str("cold")),
                        ("req_per_s", Json::num(cold_rps)),
                        ("wall_seconds", Json::num(1.0)),
                    ]),
                    Json::obj([
                        ("mode", Json::str("warm")),
                        ("req_per_s", Json::num(cold_rps * 50.0)),
                    ]),
                ]),
            ),
        ])
    }

    fn finder_doc(serial_wall: f64) -> Json {
        Json::obj([
            ("bench", Json::str("finder_parallel")),
            (
                "runs",
                Json::arr([
                    Json::obj([
                        ("threads", Json::num(1.0)),
                        ("wall_seconds", Json::num(serial_wall)),
                    ]),
                    Json::obj([("threads", Json::num(8.0)), ("wall_seconds", Json::num(0.2))]),
                ]),
            ),
        ])
    }

    fn placement_doc(serial_wall: f64) -> Json {
        Json::obj([
            ("bench", Json::str("placement_parallel")),
            (
                "runs",
                Json::arr([
                    Json::obj([
                        ("threads", Json::num(1.0)),
                        ("wall_seconds", Json::num(serial_wall)),
                    ]),
                    Json::obj([("threads", Json::num(4.0)), ("wall_seconds", Json::num(0.3))]),
                ]),
            ),
        ])
    }

    fn solver_doc(anchored_sps: f64, shard_sps: f64) -> Json {
        Json::obj([
            ("bench", Json::str("solver_kernels")),
            (
                "runs",
                Json::arr([
                    Json::obj([
                        ("kernel", Json::str("anchored")),
                        ("solves_per_s", Json::num(anchored_sps)),
                    ]),
                    Json::obj([
                        ("kernel", Json::str("shard")),
                        ("solves_per_s", Json::num(shard_sps)),
                    ]),
                ]),
            ),
        ])
    }

    fn loadgen_doc(closed_rps: f64) -> Json {
        Json::obj([
            ("bench", Json::str("loadgen")),
            (
                "runs",
                Json::arr([Json::obj([
                    ("mode", Json::str("closed")),
                    ("inflight", Json::num(4.0)),
                    ("requests", Json::num(40.0)),
                    ("responses", Json::num(40.0)),
                    ("wall_seconds", Json::num(0.5)),
                    ("req_per_s", Json::num(closed_rps)),
                    ("kinds", Json::arr([])),
                ])]),
            ),
        ])
    }

    #[test]
    fn within_tolerance_passes() {
        let checks = compare("serve_throughput", &serve_doc(100.0), &serve_doc(80.0), 0.30)
            .expect("compare");
        assert_eq!(checks.len(), 1);
        assert!(!checks[0].regressed, "{checks:?}");
        assert!((checks[0].ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let checks = compare("serve_throughput", &serve_doc(100.0), &serve_doc(60.0), 0.30)
            .expect("compare");
        assert!(checks[0].regressed, "{checks:?}");
    }

    #[test]
    fn improvements_always_pass() {
        let checks = compare("serve_throughput", &serve_doc(100.0), &serve_doc(500.0), 0.30)
            .expect("compare");
        assert!(!checks[0].regressed);
        assert!(checks[0].ratio > 4.9);
    }

    #[test]
    fn finder_metric_is_reciprocal_wall_time() {
        // Serial wall grew 2× → throughput halved → a 30% gate trips.
        let checks =
            compare("finder_parallel", &finder_doc(1.0), &finder_doc(2.0), 0.30).expect("compare");
        assert_eq!(checks[0].metric, "serial_finds_per_s");
        assert!(checks[0].regressed, "{checks:?}");
        // 25% slower wall → 0.8× throughput → passes a 30% gate.
        let checks =
            compare("finder_parallel", &finder_doc(1.0), &finder_doc(1.25), 0.30).expect("compare");
        assert!(!checks[0].regressed, "{checks:?}");
    }

    #[test]
    fn placement_metric_is_reciprocal_wall_time() {
        let checks = compare("placement_parallel", &placement_doc(1.0), &placement_doc(2.0), 0.30)
            .expect("compare");
        assert_eq!(checks[0].metric, "serial_places_per_s");
        assert!(checks[0].regressed, "{checks:?}");
        let checks = compare("placement_parallel", &placement_doc(1.0), &placement_doc(1.2), 0.30)
            .expect("compare");
        assert!(!checks[0].regressed, "{checks:?}");
    }

    #[test]
    fn solver_kernels_track_one_metric_per_kernel() {
        let checks =
            compare("solver_kernels", &solver_doc(100.0, 40.0), &solver_doc(90.0, 20.0), 0.30)
                .expect("compare");
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].metric, "anchored_solves_per_s");
        assert!(!checks[0].regressed, "{checks:?}");
        assert_eq!(checks[1].metric, "shard_solves_per_s");
        assert!(checks[1].regressed, "{checks:?}");
        // A kernel present in the baseline but missing from the current
        // report is an error, not a silent pass.
        let anchored_only = Json::obj([(
            "runs",
            Json::arr([Json::obj([
                ("kernel", Json::str("anchored")),
                ("solves_per_s", Json::num(90.0)),
            ])]),
        )]);
        assert!(compare("solver_kernels", &solver_doc(100.0, 40.0), &anchored_only, 0.3).is_err());
        let empty_runs = Json::obj([("runs", Json::arr([]))]);
        assert!(tracked_metrics("solver_kernels", &empty_runs).is_err());
    }

    #[test]
    fn loadgen_metric_is_closed_loop_throughput() {
        let checks =
            compare("loadgen", &loadgen_doc(100.0), &loadgen_doc(60.0), 0.30).expect("compare");
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].metric, "closed_req_per_s");
        assert!(checks[0].regressed, "{checks:?}");
        let checks =
            compare("loadgen", &loadgen_doc(100.0), &loadgen_doc(80.0), 0.30).expect("compare");
        assert!(!checks[0].regressed, "{checks:?}");
        // An open-loop-only report cannot satisfy the gate: the tracked
        // number is sustainable closed-loop throughput.
        let open_only = Json::obj([(
            "runs",
            Json::arr([Json::obj([("mode", Json::str("open")), ("req_per_s", Json::num(9.0))])]),
        )]);
        assert!(tracked_metrics("loadgen", &open_only).is_err());
    }

    #[test]
    fn malformed_reports_error_instead_of_passing() {
        let empty = Json::obj([("bench", Json::str("serve_throughput"))]);
        assert!(compare("serve_throughput", &empty, &serve_doc(1.0), 0.3).is_err());
        assert!(compare("serve_throughput", &serve_doc(1.0), &empty, 0.3).is_err());
        let no_cold = Json::obj([("runs", Json::arr([]))]);
        assert!(compare("serve_throughput", &serve_doc(1.0), &no_cold, 0.3).is_err());
        assert!(tracked_metrics("unknown_bench", &serve_doc(1.0)).is_err());
        assert!(tracked_metrics("finder_parallel", &finder_doc(0.0)).is_err());
    }

    #[test]
    fn run_gate_fails_on_missing_files() {
        let dir = std::env::temp_dir().join("gtl_trend_missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_gate(&dir, &dir, 0.3).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn run_gate_reads_real_files() {
        let dir = std::env::temp_dir().join("gtl_trend_ok");
        let results = dir.join("results");
        let baselines = dir.join("baselines");
        std::fs::create_dir_all(&results).unwrap();
        std::fs::create_dir_all(&baselines).unwrap();
        for (target, scale) in [(&baselines, 1.0), (&results, 1.1)] {
            crate::report::write_json(target.join("serve_throughput.json"), &serve_doc(100.0))
                .unwrap();
            crate::report::write_json(target.join("finder_parallel.json"), &finder_doc(scale))
                .unwrap();
            crate::report::write_json(
                target.join("placement_parallel.json"),
                &placement_doc(scale),
            )
            .unwrap();
            crate::report::write_json(target.join("solver_kernels.json"), &solver_doc(100.0, 40.0))
                .unwrap();
            crate::report::write_json(target.join("loadgen.json"), &loadgen_doc(100.0)).unwrap();
        }
        let checks = run_gate(&results, &baselines, 0.3).expect("gate");
        assert_eq!(checks.len(), 6);
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
        // Deleting any one tracked artifact fails the whole gate.
        std::fs::remove_file(baselines.join("solver_kernels.json")).unwrap();
        let err = run_gate(&results, &baselines, 0.3).unwrap_err();
        assert!(err.contains("solver_kernels"), "{err}");
    }
}
