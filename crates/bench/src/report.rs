//! Rendering helpers: ASCII tables, CSV series, JSON reports, and PGM
//! heatmaps.
//!
//! JSON documents are [`serde::Value`] trees (re-exported here as
//! [`Json`]); this crate no longer maintains a parallel serializer — the
//! bench reports render through the same deterministic JSON machinery as
//! the `gtl-api` wire contracts.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value for machine-readable bench reports — an alias for
/// [`serde::Value`], which provides the [`Json::num`] / [`Json::str`] /
/// [`Json::arr`] / [`Json::obj`] constructors the bench binaries use.
///
/// # Example
///
/// ```
/// use gtl_bench::report::Json;
///
/// let doc = Json::obj([
///     ("bench", Json::str("finder_parallel")),
///     ("threads", Json::arr([Json::num(1.0), Json::num(8.0)])),
/// ]);
/// assert_eq!(
///     doc.render(),
///     r#"{"bench":"finder_parallel","threads":[1,8]}"#
/// );
/// ```
pub use serde::Value as Json;

/// Writes a [`Json`] document (with a trailing newline).
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_json(path: impl AsRef<Path>, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render() + "\n")
}

/// A simple left-aligned ASCII table, printed like the paper's tables.
///
/// # Example
///
/// ```
/// use gtl_bench::report::Table;
///
/// let mut t = Table::new(&["case", "|V|", "found"]);
/// t.row(&["1", "10000", "1"]);
/// let text = t.render();
/// assert!(text.contains("case"));
/// assert!(text.contains("10000"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extras are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table with column-aligned padding.
    pub fn render(&self) -> String {
        let columns = self.rows.iter().map(Vec::len).chain([self.header.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            #[allow(clippy::needless_range_loop)] // rows may be shorter than `columns`
            for i in 0..columns {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
                if i + 1 < columns {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Writes named columns of equal length as a CSV file.
///
/// # Panics
///
/// Panics if the column lengths differ.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_csv(path: impl AsRef<Path>, columns: &[(&str, &[f64])]) -> std::io::Result<()> {
    let len = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
    assert!(columns.iter().all(|(_, c)| c.len() == len), "column length mismatch");
    let mut out = String::new();
    let _ = writeln!(out, "{}", columns.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(","));
    for i in 0..len {
        let line: Vec<String> = columns.iter().map(|(_, c)| format!("{}", c[i])).collect();
        let _ = writeln!(out, "{}", line.join(","));
    }
    std::fs::write(path, out)
}

/// Writes a row-major grid of values in `[0, max]` as a binary PGM
/// heatmap (renderable by any image viewer; used for the congestion and
/// placement figures).
///
/// # Panics
///
/// Panics if `grid.len() != width * height`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_pgm(
    path: impl AsRef<Path>,
    grid: &[f64],
    width: usize,
    height: usize,
) -> std::io::Result<()> {
    assert_eq!(grid.len(), width * height, "grid dimensions mismatch");
    let peak = grid.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut data = format!("P5\n{width} {height}\n255\n").into_bytes();
    // Flip vertically: row 0 of the grid is the bottom of the die.
    for y in (0..height).rev() {
        for x in 0..width {
            let v = (grid[y * width + x] / peak * 255.0).round().clamp(0.0, 255.0);
            data.push(v as u8);
        }
    }
    std::fs::write(path, data)
}

/// Renders a grid as a coarse ASCII heatmap (for terminal output), using
/// ten brightness levels.
pub fn ascii_heatmap(grid: &[f64], width: usize, height: usize) -> String {
    assert_eq!(grid.len(), width * height, "grid dimensions mismatch");
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let peak = grid.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut out = String::with_capacity((width + 1) * height);
    for y in (0..height).rev() {
        for x in 0..width {
            let level = (grid[y * width + x] / peak * 9.0).round() as usize;
            out.push(RAMP[level.min(9)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_alias_keeps_report_conventions() {
        // Integral numbers render without a decimal point, non-finite as
        // null — the conventions results/*.json consumers rely on.
        let doc = Json::arr([Json::num(f64::NAN), Json::num(f64::INFINITY), Json::num(1.5)]);
        assert_eq!(doc.render(), "[null,null,1.5]");
        assert_eq!(Json::num(8.0).render(), "8");
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxx", "1"]);
        t.row(&["y"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("xxxx"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gtl_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, &[("x", &[1.0, 2.0]), ("y", &[3.5, 4.5])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,3.5\n2,4.5\n");
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn csv_mismatched_columns_panic() {
        let dir = std::env::temp_dir();
        let _ = write_csv(dir.join("bad.csv"), &[("x", &[1.0]), ("y", &[1.0, 2.0])]);
    }

    #[test]
    fn pgm_header_and_size() {
        let dir = std::env::temp_dir().join("gtl_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&path, &[0.0, 0.5, 1.0, 0.25], 2, 2).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(data.len(), b"P5\n2 2\n255\n".len() + 4);
        // Brightest pixel is value 1.0 → 255.
        assert!(data.ends_with(&[128, 255, 0, 64]) || data[data.len() - 4..].contains(&255));
    }

    #[test]
    fn ascii_heatmap_shape() {
        let text = ascii_heatmap(&[0.0, 1.0, 0.5, 0.0], 2, 2);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
        // Peak maps to '@'.
        assert!(text.contains('@'));
    }
}
