//! Recorded-trace load generation for the `gtl serve` path.
//!
//! The ROADMAP's "heavy traffic" claims need to be measured, not
//! asserted. This crate provides the two halves of that measurement
//! (ROADMAP item 3; surfaced as `gtl loadgen`):
//!
//! * [`record`] — a proxy/tee that sits between JSON-lines clients and a
//!   live server, forwarding bytes both ways while capturing every
//!   request line into a deterministic [`trace`] file (connection id,
//!   per-connection sequence number, arrival offset, raw line);
//! * [`replay`] — drives a recorded trace (or a raw request-line file)
//!   back against a live server, open-loop (at recorded offsets or a
//!   target rate) or closed-loop (bounded in-flight window), with
//!   per-request-kind latency percentiles via
//!   [`gtl_core::obs::LatencyHistogram`], a machine-readable summary for
//!   the `gtl-bench trend` gate, and an `--expect` mode that byte-diffs
//!   responses against a golden and fails with a deterministic exit code
//!   on drift — CI's serve goldens are replayed through it.
//!
//! Replays are deterministic: requests go out in trace order per
//! connection, connections are established serially in id order (so the
//! server's accept order — and therefore its v5 trace-ID stamps — is a
//! pure function of the trace), and responses are logged in connection,
//! then sequence order. Two replays of the same trace against the same
//! server shape produce byte-identical response logs; the determinism
//! matrix in CI holds that across server thread/chunk shapes.
//!
//! Connection fan-out goes through [`gtl_core::exec::parallel_map`] (the
//! workspace's only sanctioned fan-out primitive — `gtl-lint` enforces
//! this); the record proxy is single-threaded by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;
pub mod replay;
pub mod trace;

/// Request kinds tracked in per-kind latency summaries, in the order of
/// the serve protocol's request envelope variants; `other` catches
/// malformed or future envelopes.
pub const KINDS: [&str; 9] = [
    "find",
    "place",
    "stats",
    "metrics",
    "metrics_text",
    "load_netlist",
    "unload_netlist",
    "list_sessions",
    "other",
];

/// Index into [`KINDS`] for one raw request line, by its envelope tag
/// (the first JSON object key, e.g. `{"Find":…}` → `find`).
pub fn kind_of(line: &str) -> usize {
    let rest = match line.trim_start().strip_prefix("{\"") {
        Some(r) => r,
        None => return KINDS.len() - 1,
    };
    let tag = rest.split('"').next().unwrap_or("");
    match tag {
        "Find" => 0,
        "Place" => 1,
        "Stats" => 2,
        "Metrics" => 3,
        "MetricsText" => 4,
        "LoadNetlist" => 5,
        "UnloadNetlist" => 6,
        "ListSessions" => 7,
        _ => KINDS.len() - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_of_maps_envelope_tags() {
        assert_eq!(KINDS[kind_of(r#"{"Find":{"v":5}}"#)], "find");
        assert_eq!(KINDS[kind_of(r#"  {"MetricsText":{"v":5}}"#)], "metrics_text");
        assert_eq!(KINDS[kind_of(r#"{"LoadNetlist":{"v":4}}"#)], "load_netlist");
        assert_eq!(KINDS[kind_of(r#"{"ListSessions":{"v":4}}"#)], "list_sessions");
        assert_eq!(KINDS[kind_of("not json")], "other");
        assert_eq!(KINDS[kind_of(r#"{"Future":{}}"#)], "other");
        assert_eq!(KINDS[kind_of("")], "other");
    }
}
