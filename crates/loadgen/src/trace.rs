//! The frozen JSON-lines trace-file format.
//!
//! One [`TraceRecord`] per line, rendered with the workspace's
//! deterministic serde (declaration-order fields), e.g.:
//!
//! ```text
//! {"v":1,"conn":0,"seq":0,"offset_us":0,"line":"{\"Stats\":{\"v\":1}}"}
//! ```
//!
//! The format is version-tagged (`v`, currently [`TRACE_VERSION`]) and
//! frozen by the golden at `tests/golden/loadgen_trace.jsonl`
//! (re-bless with `GTL_BLESS=1` after an intentional change). Raw
//! request-line files — like the serve goldens CI replays — are also
//! accepted via [`from_request_lines`], which wraps them as one
//! connection sending back-to-back.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use gtl_api::ApiError;
use serde::{Deserialize, Serialize};

/// Newest trace-file format version this build writes.
pub const TRACE_VERSION: u32 = 1;

/// One captured request line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Trace format version ([`TRACE_VERSION`]).
    pub v: u32,
    /// Connection the request arrived on (0-based, accept order).
    pub conn: u32,
    /// Sequence number within the connection (0-based).
    pub seq: u32,
    /// Arrival offset in microseconds since recording started.
    pub offset_us: u64,
    /// The raw request line, without the trailing newline.
    pub line: String,
}

impl TraceRecord {
    /// A version-stamped record.
    pub fn new(conn: u32, seq: u32, offset_us: u64, line: impl Into<String>) -> Self {
        Self { v: TRACE_VERSION, conn, seq, offset_us, line: line.into() }
    }
}

/// Renders one record as its trace-file line (no trailing newline).
pub fn render_line(record: &TraceRecord) -> String {
    serde::json::to_string(record)
}

/// Parses one trace-file line.
///
/// # Errors
///
/// Returns [`ApiError::BadRequest`] on malformed JSON or an unsupported
/// `v`.
pub fn parse_line(line: &str) -> Result<TraceRecord, ApiError> {
    let record: TraceRecord = serde::json::from_str(line)
        .map_err(|e| ApiError::bad_request(format!("malformed trace line: {e}")))?;
    if record.v != TRACE_VERSION {
        return Err(ApiError::bad_request(format!(
            "unsupported trace version {} (this build speaks {TRACE_VERSION})",
            record.v
        )));
    }
    Ok(record)
}

/// Writes a trace file (one record per line).
///
/// # Errors
///
/// Returns [`ApiError::Io`] on write failure.
pub fn write_trace(path: impl AsRef<Path>, records: &[TraceRecord]) -> Result<(), ApiError> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for record in records {
        writeln!(out, "{}", render_line(record))?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a trace file; blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`ApiError::Io`] on read failure and [`ApiError::BadRequest`]
/// on malformed records.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, ApiError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| ApiError::io(format!("open trace {}: {e}", path.display())))?;
    let mut records = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        records.push(parse_line(trimmed)?);
    }
    Ok(records)
}

/// Wraps a raw JSON-lines request file (e.g. the CI serve goldens) as a
/// single-connection trace: line `i` becomes `conn 0, seq i, offset 0`
/// (back-to-back replay).
pub fn from_request_lines(text: &str) -> Vec<TraceRecord> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| TraceRecord::new(0, i as u32, 0, line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0, 0, 0, r#"{"Stats":{"v":1}}"#),
            TraceRecord::new(0, 1, 1250, r#"{"Find":{"v":5,"config":{"num_seeds":4}}}"#),
            TraceRecord::new(1, 0, 2000, r#"{"ListSessions":{"v":4}}"#),
        ]
    }

    #[test]
    fn roundtrip_through_render_and_parse() {
        for record in sample_records() {
            assert_eq!(parse_line(&render_line(&record)).unwrap(), record);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gtl_loadgen_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let records = sample_records();
        write_trace(&path, &records).unwrap();
        assert_eq!(read_trace(&path).unwrap(), records);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let dir = std::env::temp_dir().join("gtl_loadgen_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comments.jsonl");
        let body = format!("# recorded by test\n\n{}\n", render_line(&sample_records()[0]));
        std::fs::write(&path, body).unwrap();
        assert_eq!(read_trace(&path).unwrap().len(), 1);
    }

    #[test]
    fn future_version_rejected() {
        let mut record = sample_records()[0].clone();
        record.v = TRACE_VERSION + 1;
        let err = parse_line(&render_line(&record)).unwrap_err();
        assert!(err.to_string().contains("unsupported trace version"), "{err}");
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(parse_line("{not json").is_err());
        assert!(parse_line(r#"{"v":1}"#).is_err());
    }

    #[test]
    fn request_lines_become_one_connection() {
        let records = from_request_lines("{\"Stats\":{\"v\":1}}\n\n{\"Metrics\":{\"v\":2}}\n");
        assert_eq!(records.len(), 2);
        assert_eq!((records[0].conn, records[0].seq), (0, 0));
        assert_eq!((records[1].conn, records[1].seq), (0, 1));
        assert!(records.iter().all(|r| r.offset_us == 0 && r.v == TRACE_VERSION));
    }

    /// Re-bless with `GTL_BLESS=1` after an intentional format change.
    #[test]
    fn golden_trace_format_is_frozen() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/loadgen_trace.jsonl");
        let rendered: String = sample_records().iter().map(|r| render_line(r) + "\n").collect();
        if std::env::var_os("GTL_BLESS").is_some() {
            std::fs::write(path, &rendered).unwrap();
            return;
        }
        let golden = std::fs::read_to_string(path)
            .expect("tests/golden/loadgen_trace.jsonl missing — run with GTL_BLESS=1 to create it");
        assert_eq!(
            rendered, golden,
            "trace format drifted from tests/golden/loadgen_trace.jsonl — if intentional, bump \
             TRACE_VERSION and re-bless with GTL_BLESS=1"
        );
        // And the frozen bytes must still parse.
        for line in golden.lines() {
            parse_line(line).unwrap();
        }
    }
}
