//! Open- and closed-loop trace replay against a live server.
//!
//! [`run`] takes the parsed trace, drives it at the server named in
//! [`ReplayOptions`], and produces a [`ReplayReport`]: the deterministic
//! response log, per-kind latency percentiles, and throughput. Two
//! replay disciplines are supported:
//!
//! * **closed loop** ([`ReplayMode::Closed`]) — each connection keeps at
//!   most `inflight` requests outstanding and sends the next one as soon
//!   as a response frees a slot. Measures sustainable throughput; the
//!   bench trend gate reads `req_per_s` from this mode.
//! * **open loop** ([`ReplayMode::Open`]) — requests are sent at their
//!   recorded arrival offsets (or at a fixed target rate), regardless of
//!   response progress. Measures latency under offered load.
//!
//! Determinism: connections are established serially in trace
//! connection-id order, so the server's accept order (and its v5
//! per-connection trace-ID stamps) is a pure function of the trace.
//! Per-connection request order follows trace sequence order, the serve
//! protocol answers in order, and the response log concatenates
//! connections in id order — so two replays of the same trace against
//! the same server shape are byte-identical, which is what `--expect`
//! checks. Connection fan-out uses [`gtl_core::exec::parallel_map`].

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gtl_api::ApiError;
use gtl_core::exec::parallel_map;
use gtl_core::obs::LatencyHistogram;
use serde::Value;

use crate::record::would_block;
use crate::trace::TraceRecord;
use crate::{kind_of, KINDS};

/// How replayed requests are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// At most `inflight` outstanding requests per connection; the next
    /// request goes out as soon as a response frees a slot.
    Closed {
        /// Per-connection in-flight window (must be at least 1).
        inflight: usize,
    },
    /// Requests go out on a schedule regardless of response progress:
    /// at `rate` requests/second across the whole trace when positive,
    /// at the recorded arrival offsets when `rate` is zero.
    Open {
        /// Target request rate in requests/second; `0.0` replays the
        /// recorded offsets.
        rate: f64,
    },
}

impl ReplayMode {
    /// The mode tag used in summaries (`"closed"` / `"open"`).
    pub fn tag(&self) -> &'static str {
        match self {
            ReplayMode::Closed { .. } => "closed",
            ReplayMode::Open { .. } => "open",
        }
    }
}

/// Configuration for [`run`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Server address (e.g. `127.0.0.1:17777`).
    pub addr: String,
    /// Pacing discipline.
    pub mode: ReplayMode,
    /// Replay the whole trace this many times back to back (>= 1).
    pub repeat: usize,
    /// How long to keep retrying the initial connect while the server
    /// boots (subsequent connections use the same budget).
    pub connect_timeout: Duration,
    /// Write the deterministic response log here.
    pub out: Option<PathBuf>,
    /// Write the machine-readable summary JSON here.
    pub summary_out: Option<PathBuf>,
    /// Byte-compare the response log against this golden; mismatch is a
    /// netlist-class error (exit code 1 in the CLI).
    pub expect: Option<PathBuf>,
    /// Scrape `GET /metrics` from this address after the replay, while
    /// the replay connections are still open.
    pub scrape_addr: Option<String>,
    /// Write the raw scrape response here.
    pub scrape_out: Option<PathBuf>,
}

impl ReplayOptions {
    /// Closed-loop options with window 1 and the CLI's default timeouts.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            mode: ReplayMode::Closed { inflight: 1 },
            repeat: 1,
            connect_timeout: Duration::from_secs(10),
            out: None,
            summary_out: None,
            expect: None,
            scrape_addr: None,
            scrape_out: None,
        }
    }
}

/// Latency digest for one request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// Kind name (one of [`KINDS`]).
    pub kind: &'static str,
    /// Requests of this kind that completed.
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Worst observed latency in microseconds.
    pub max_us: u64,
}

/// What a finished replay measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The pacing discipline that ran.
    pub mode: ReplayMode,
    /// Requests sent.
    pub requests: u64,
    /// Responses received (equals `requests` on success).
    pub responses: u64,
    /// Wall-clock duration of the replay in seconds.
    pub wall_seconds: f64,
    /// Completed requests per second.
    pub req_per_s: f64,
    /// Per-kind latency digests (kinds with at least one request).
    pub kinds: Vec<KindStats>,
    /// Response log: connections in id order, responses in sequence
    /// order, one line each.
    pub log: String,
    /// Raw `/metrics` scrape response, when requested.
    pub scrape: Option<String>,
}

impl ReplayReport {
    /// Renders the machine-readable summary consumed by the
    /// `gtl-bench trend` gate (`results/loadgen.json` shape).
    pub fn summary_json(&self) -> String {
        let knob = match self.mode {
            ReplayMode::Closed { inflight } => ("inflight", Value::U64(inflight as u64)),
            ReplayMode::Open { rate } => ("rate", Value::num(rate)),
        };
        let kinds = self.kinds.iter().map(|k| {
            Value::obj([
                ("kind", Value::str(k.kind)),
                ("count", Value::U64(k.count)),
                ("p50_us", Value::U64(k.p50_us)),
                ("p95_us", Value::U64(k.p95_us)),
                ("p99_us", Value::U64(k.p99_us)),
                ("max_us", Value::U64(k.max_us)),
            ])
        });
        let run = Value::obj(vec![
            ("mode", Value::str(self.mode.tag())),
            knob,
            ("requests", Value::U64(self.requests)),
            ("responses", Value::U64(self.responses)),
            ("wall_seconds", Value::num(self.wall_seconds)),
            ("req_per_s", Value::num(self.req_per_s)),
            ("kinds", Value::arr(kinds)),
        ]);
        Value::obj([("bench", Value::str("loadgen")), ("runs", Value::arr([run]))]).render()
    }
}

/// One scheduled request on one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlanItem {
    /// Send time in microseconds from replay start (open loop only).
    target_us: u64,
    /// Index into [`KINDS`].
    kind: usize,
    /// The raw request line.
    line: String,
}

/// What one connection's replay produced. The stream rides along so all
/// connections stay open until after the optional metrics scrape.
struct ConnOutput {
    responses: Vec<String>,
    hists: Vec<LatencyHistogram>,
    /// Held only to keep the connection open until the scrape.
    _stream: TcpStream,
}

/// Replays the trace and handles the report's file outputs: writes
/// `--out` / `--summary` / `--scrape-out` first, then byte-compares
/// against `--expect` so the drifted log is on disk for debugging.
///
/// # Errors
///
/// [`ApiError::BadRequest`] for an empty trace or invalid options,
/// [`ApiError::Io`] for socket/file failures, and [`ApiError::Netlist`]
/// when the response log drifts from the `--expect` golden.
pub fn run(records: &[TraceRecord], options: &ReplayOptions) -> Result<ReplayReport, ApiError> {
    let report = replay(records, options)?;
    if let Some(path) = &options.out {
        std::fs::write(path, &report.log)
            .map_err(|e| ApiError::io(format!("write {}: {e}", path.display())))?;
    }
    if let Some(path) = &options.summary_out {
        std::fs::write(path, report.summary_json() + "\n")
            .map_err(|e| ApiError::io(format!("write {}: {e}", path.display())))?;
    }
    if let (Some(path), Some(text)) = (&options.scrape_out, &report.scrape) {
        std::fs::write(path, text)
            .map_err(|e| ApiError::io(format!("write {}: {e}", path.display())))?;
    }
    if let Some(path) = &options.expect {
        let want = std::fs::read_to_string(path)
            .map_err(|e| ApiError::io(format!("read expected {}: {e}", path.display())))?;
        if let Some(detail) = first_divergence(&want, &report.log) {
            return Err(ApiError::netlist(format!(
                "response drift vs {}: {detail}",
                path.display()
            )));
        }
    }
    Ok(report)
}

/// Drives the trace against the server and collects the report. Pure
/// replay: no file outputs, no golden comparison (see [`run`]).
///
/// # Errors
///
/// [`ApiError::BadRequest`] for an empty trace or invalid options,
/// [`ApiError::Io`] when a connection fails or the server closes one
/// mid-replay.
pub fn replay(records: &[TraceRecord], options: &ReplayOptions) -> Result<ReplayReport, ApiError> {
    let plans = build_plans(records, options.mode, options.repeat)?;
    let streams: Vec<Mutex<Option<TcpStream>>> = {
        // Serial, in connection-id order: the server's accept order (and
        // its v5 trace-ID stamps) must be a pure function of the trace.
        let mut out = Vec::with_capacity(plans.len());
        for _ in &plans {
            out.push(Mutex::new(Some(connect_with_retry(&options.addr, options.connect_timeout)?)));
        }
        out
    };
    let mode = options.mode;
    let start = Instant::now();
    let outputs: Vec<Result<ConnOutput, ApiError>> = parallel_map(plans.len(), plans.len(), |i| {
        let stream = streams[i]
            .lock()
            .map_err(|_| ApiError::io("replay connection state poisoned"))?
            .take()
            .ok_or_else(|| ApiError::io("replay connection taken twice"))?;
        run_conn(stream, &plans[i].1, mode, start)
    });
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let outputs: Vec<ConnOutput> = outputs.into_iter().collect::<Result<_, _>>()?;

    let scrape = match &options.scrape_addr {
        Some(addr) => Some(scrape_metrics(addr, options.connect_timeout)?),
        None => None,
    };
    let mut merged: Vec<LatencyHistogram> =
        (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect();
    let mut log = String::new();
    let mut responses = 0u64;
    for output in &outputs {
        for (hist, conn_hist) in merged.iter_mut().zip(&output.hists) {
            hist.merge(conn_hist);
        }
        for line in &output.responses {
            log.push_str(line);
            log.push('\n');
        }
        responses += output.responses.len() as u64;
    }
    drop(outputs); // now the replay connections close

    let requests: u64 = plans.iter().map(|(_, plan)| plan.len() as u64).sum();
    let kinds = KINDS
        .iter()
        .zip(&merged)
        .filter(|(_, h)| !h.is_empty())
        .map(|(kind, h)| KindStats {
            kind,
            count: h.count(),
            p50_us: h.percentile_us(0.50),
            p95_us: h.percentile_us(0.95),
            p99_us: h.percentile_us(0.99),
            max_us: h.max_us(),
        })
        .collect();
    Ok(ReplayReport {
        mode,
        requests,
        responses,
        wall_seconds,
        req_per_s: responses as f64 / wall_seconds,
        kinds,
        log,
        scrape,
    })
}

/// Expands the trace into per-connection send plans: groups by
/// connection id, orders by sequence number, applies `repeat`, and for
/// fixed-rate open loop assigns global send offsets at `rate` req/s.
fn build_plans(
    records: &[TraceRecord],
    mode: ReplayMode,
    repeat: usize,
) -> Result<Vec<(u32, Vec<PlanItem>)>, ApiError> {
    if records.is_empty() {
        return Err(ApiError::bad_request("trace is empty"));
    }
    if repeat == 0 {
        return Err(ApiError::bad_request("--repeat must be at least 1"));
    }
    match mode {
        ReplayMode::Closed { inflight: 0 } => {
            return Err(ApiError::bad_request("--inflight must be at least 1"));
        }
        ReplayMode::Open { rate } if !rate.is_finite() || rate < 0.0 => {
            return Err(ApiError::bad_request("--rate must be a non-negative number"));
        }
        _ => {}
    }
    let mut by_conn: BTreeMap<u32, Vec<&TraceRecord>> = BTreeMap::new();
    for record in records {
        by_conn.entry(record.conn).or_default().push(record);
    }
    // One repetition spans the recorded window; later repetitions shift
    // past it so recorded-offset pacing stays monotonic per connection.
    let span_us = records.iter().map(|r| r.offset_us).max().unwrap_or(0) + 1;
    let mut plans: Vec<(u32, Vec<PlanItem>)> = Vec::with_capacity(by_conn.len());
    for (conn, mut conn_records) in by_conn {
        conn_records.sort_by_key(|r| r.seq);
        let mut plan = Vec::with_capacity(conn_records.len() * repeat);
        for rep in 0..repeat {
            for record in &conn_records {
                plan.push(PlanItem {
                    target_us: record.offset_us + rep as u64 * span_us,
                    kind: kind_of(&record.line),
                    line: record.line.clone(),
                });
            }
        }
        plans.push((conn, plan));
    }
    if let ReplayMode::Open { rate } = mode {
        if rate > 0.0 {
            // Fixed-rate schedule: order all requests by recorded time
            // (ties by connection then plan position) and space them
            // evenly at `rate` requests/second across the whole trace.
            let mut order: Vec<(u64, usize, usize)> = Vec::new();
            for (ci, (_, plan)) in plans.iter().enumerate() {
                for (pi, item) in plan.iter().enumerate() {
                    order.push((item.target_us, ci, pi));
                }
            }
            order.sort();
            for (i, (_, ci, pi)) in order.into_iter().enumerate() {
                plans[ci].1[pi].target_us = (i as f64 * 1_000_000.0 / rate) as u64;
            }
        }
    }
    Ok(plans)
}

/// Replays one connection's plan.
fn run_conn(
    stream: TcpStream,
    plan: &[PlanItem],
    mode: ReplayMode,
    start: Instant,
) -> Result<ConnOutput, ApiError> {
    let mut hists: Vec<LatencyHistogram> =
        (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect();
    let responses = match mode {
        ReplayMode::Closed { inflight } => run_conn_closed(&stream, plan, inflight, &mut hists)?,
        ReplayMode::Open { .. } => run_conn_open(&stream, plan, start, &mut hists)?,
    };
    Ok(ConnOutput { responses, hists, _stream: stream })
}

/// Closed loop: keep up to `inflight` requests outstanding, blocking on
/// responses to refill the window.
fn run_conn_closed(
    stream: &TcpStream,
    plan: &[PlanItem],
    inflight: usize,
    hists: &mut [LatencyHistogram],
) -> Result<Vec<String>, ApiError> {
    stream.set_read_timeout(None).map_err(ApiError::from)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(ApiError::from)?);
    let mut writer = stream;
    let mut window: VecDeque<(usize, Instant)> = VecDeque::with_capacity(inflight);
    let mut responses = Vec::with_capacity(plan.len());
    let mut send_buf = String::new();
    let mut next = 0usize;
    while responses.len() < plan.len() {
        while next < plan.len() && window.len() < inflight {
            send_buf.clear();
            send_buf.push_str(&plan[next].line);
            send_buf.push('\n');
            writer.write_all(send_buf.as_bytes()).map_err(ApiError::from)?;
            window.push_back((plan[next].kind, Instant::now()));
            next += 1;
        }
        let mut line = Vec::new();
        let n = reader.read_until(b'\n', &mut line).map_err(ApiError::from)?;
        if n == 0 {
            return Err(ApiError::io(format!(
                "server closed the connection after {} of {} responses",
                responses.len(),
                plan.len()
            )));
        }
        let (kind, sent) = window
            .pop_front()
            .ok_or_else(|| ApiError::io("response received with no request outstanding"))?;
        hists[kind].record_us(sent.elapsed().as_micros() as u64);
        responses.push(finish_line(line)?);
    }
    Ok(responses)
}

/// Open loop: send each request at its scheduled offset, draining
/// responses opportunistically in between, then collect the stragglers.
fn run_conn_open(
    stream: &TcpStream,
    plan: &[PlanItem],
    start: Instant,
    hists: &mut [LatencyHistogram],
) -> Result<Vec<String>, ApiError> {
    // The short timeout doubles as the wait-loop sleep: each poll blocks
    // at most this long, keeping send times within ~2ms of schedule.
    stream.set_read_timeout(Some(Duration::from_millis(2))).map_err(ApiError::from)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(ApiError::from)?);
    let mut writer = stream;
    let mut sent: Vec<(usize, Instant)> = Vec::with_capacity(plan.len());
    let mut responses: Vec<String> = Vec::with_capacity(plan.len());
    let mut partial: Vec<u8> = Vec::new();
    let mut send_buf = String::new();
    for item in plan {
        let target = start + Duration::from_micros(item.target_us);
        while Instant::now() < target {
            poll_response(&mut reader, &mut partial, &mut responses, &sent, hists)?;
        }
        send_buf.clear();
        send_buf.push_str(&item.line);
        send_buf.push('\n');
        writer.write_all(send_buf.as_bytes()).map_err(ApiError::from)?;
        sent.push((item.kind, Instant::now()));
    }
    // Everything is sent; block for the remaining responses.
    stream.set_read_timeout(None).map_err(ApiError::from)?;
    while responses.len() < plan.len() {
        let n = reader.read_until(b'\n', &mut partial).map_err(ApiError::from)?;
        if n == 0 || partial.last() != Some(&b'\n') {
            return Err(ApiError::io(format!(
                "server closed the connection after {} of {} responses",
                responses.len(),
                plan.len()
            )));
        }
        complete_response(&mut partial, &mut responses, &sent, hists)?;
    }
    Ok(responses)
}

/// One bounded-wait read attempt; completes at most one response line.
/// Partial bytes persist in `partial` across timeouts.
fn poll_response(
    reader: &mut BufReader<TcpStream>,
    partial: &mut Vec<u8>,
    responses: &mut Vec<String>,
    sent: &[(usize, Instant)],
    hists: &mut [LatencyHistogram],
) -> Result<(), ApiError> {
    match reader.read_until(b'\n', partial) {
        Ok(0) => Err(ApiError::io("server closed the connection mid-replay")),
        Ok(_) => {
            if partial.last() == Some(&b'\n') {
                complete_response(partial, responses, sent, hists)
            } else {
                // EOF with a dangling fragment.
                Err(ApiError::io("server closed the connection mid-response"))
            }
        }
        Err(e) if would_block(&e) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Books the completed line sitting in `partial` as the next response.
fn complete_response(
    partial: &mut Vec<u8>,
    responses: &mut Vec<String>,
    sent: &[(usize, Instant)],
    hists: &mut [LatencyHistogram],
) -> Result<(), ApiError> {
    let line = std::mem::take(partial);
    let (kind, at) = *sent
        .get(responses.len())
        .ok_or_else(|| ApiError::io("response received with no request outstanding"))?;
    hists[kind].record_us(at.elapsed().as_micros() as u64);
    responses.push(finish_line(line)?);
    Ok(())
}

/// Strips the line terminator and validates UTF-8.
fn finish_line(mut line: Vec<u8>) -> Result<String, ApiError> {
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ApiError::io("server response is not valid UTF-8"))
}

/// Fetches the raw `GET /metrics` response from the v5 scrape listener.
fn scrape_metrics(addr: &str, timeout: Duration) -> Result<String, ApiError> {
    let mut stream = connect_with_retry(addr, timeout)?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(ApiError::from)?;
    stream.set_read_timeout(None).map_err(ApiError::from)?;
    let mut text = String::new();
    stream.read_to_string(&mut text).map_err(ApiError::from)?;
    Ok(text)
}

/// Connects to `addr`, retrying while the server boots. This replaces
/// the shell retry loops CI used to wrap around `/dev/tcp` replays.
pub(crate) fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream, ApiError> {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if start.elapsed() >= timeout {
                    return Err(ApiError::io(format!(
                        "connect {addr}: {e} (gave up after {:.1}s)",
                        start.elapsed().as_secs_f64()
                    )));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// First line where `got` differs from `want`, rendered for an error
/// message; `None` when the logs match byte for byte.
fn first_divergence(want: &str, got: &str) -> Option<String> {
    if want == got {
        return None;
    }
    let want_lines: Vec<&str> = want.lines().collect();
    let got_lines: Vec<&str> = got.lines().collect();
    for (i, (w, g)) in want_lines.iter().zip(&got_lines).enumerate() {
        if w != g {
            return Some(format!("line {}: expected {w:?}, got {g:?}", i + 1));
        }
    }
    if want_lines.len() != got_lines.len() {
        return Some(format!("expected {} lines, got {}", want_lines.len(), got_lines.len()));
    }
    // Same lines, different bytes: terminator drift.
    Some("line terminators differ".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(conn: u32, seq: u32, offset_us: u64, line: &str) -> TraceRecord {
        TraceRecord::new(conn, seq, offset_us, line)
    }

    #[test]
    fn plans_group_by_conn_and_sort_by_seq() {
        let records = vec![
            record(1, 1, 30, r#"{"Stats":{"v":1}}"#),
            record(0, 0, 0, r#"{"Find":{"v":1}}"#),
            record(1, 0, 20, r#"{"Metrics":{"v":2}}"#),
        ];
        let plans = build_plans(&records, ReplayMode::Closed { inflight: 1 }, 1).unwrap();
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].0, 0);
        assert_eq!(plans[1].0, 1);
        assert_eq!(plans[1].1[0].line, r#"{"Metrics":{"v":2}}"#);
        assert_eq!(plans[1].1[1].line, r#"{"Stats":{"v":1}}"#);
        assert_eq!(plans[0].1[0].kind, 0); // find
        assert_eq!(plans[1].1[0].kind, 3); // metrics
    }

    #[test]
    fn repeat_shifts_offsets_past_the_recorded_span() {
        let records = vec![
            record(0, 0, 0, r#"{"Stats":{"v":1}}"#),
            record(0, 1, 500, r#"{"Stats":{"v":1}}"#),
        ];
        let plans = build_plans(&records, ReplayMode::Open { rate: 0.0 }, 3).unwrap();
        let targets: Vec<u64> = plans[0].1.iter().map(|p| p.target_us).collect();
        assert_eq!(targets, vec![0, 500, 501, 1001, 1002, 1502]);
    }

    #[test]
    fn fixed_rate_schedule_spaces_requests_evenly() {
        let records = vec![
            record(0, 0, 0, r#"{"Stats":{"v":1}}"#),
            record(1, 0, 10, r#"{"Stats":{"v":1}}"#),
            record(0, 1, 20, r#"{"Stats":{"v":1}}"#),
        ];
        let plans = build_plans(&records, ReplayMode::Open { rate: 100.0 }, 1).unwrap();
        // 100 req/s -> one every 10_000us, ordered by recorded offset.
        assert_eq!(plans[0].1[0].target_us, 0);
        assert_eq!(plans[1].1[0].target_us, 10_000);
        assert_eq!(plans[0].1[1].target_us, 20_000);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let records = vec![record(0, 0, 0, "x")];
        assert!(build_plans(&[], ReplayMode::Closed { inflight: 1 }, 1).is_err());
        assert!(build_plans(&records, ReplayMode::Closed { inflight: 0 }, 1).is_err());
        assert!(build_plans(&records, ReplayMode::Closed { inflight: 1 }, 0).is_err());
        assert!(build_plans(&records, ReplayMode::Open { rate: -1.0 }, 1).is_err());
        assert!(build_plans(&records, ReplayMode::Open { rate: f64::NAN }, 1).is_err());
    }

    #[test]
    fn divergence_reports_first_differing_line() {
        assert_eq!(first_divergence("a\nb\n", "a\nb\n"), None);
        let detail = first_divergence("a\nb\n", "a\nc\n").unwrap();
        assert!(detail.contains("line 2"), "{detail}");
        let detail = first_divergence("a\n", "a\nb\n").unwrap();
        assert!(detail.contains("expected 1 lines, got 2"), "{detail}");
        let detail = first_divergence("a\nb\n", "a\r\nb\n").unwrap();
        assert!(detail.contains("terminators"), "{detail}");
    }

    #[test]
    fn summary_json_has_the_trend_gate_shape() {
        let report = ReplayReport {
            mode: ReplayMode::Closed { inflight: 4 },
            requests: 10,
            responses: 10,
            wall_seconds: 0.5,
            req_per_s: 20.0,
            kinds: vec![KindStats {
                kind: "stats",
                count: 10,
                p50_us: 100,
                p95_us: 200,
                p99_us: 250,
                max_us: 300,
            }],
            log: String::new(),
            scrape: None,
        };
        let parsed = serde::json::parse(&report.summary_json()).unwrap();
        assert_eq!(parsed.get("bench").and_then(Value::as_str), Some("loadgen"));
        let runs = match parsed.get("runs") {
            Some(Value::Arr(runs)) => runs,
            other => panic!("runs missing: {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("mode").and_then(Value::as_str), Some("closed"));
        assert_eq!(runs[0].get("req_per_s").and_then(Value::as_f64), Some(20.0));
        assert_eq!(runs[0].get("inflight").and_then(Value::as_u64), Some(4));
    }
}
