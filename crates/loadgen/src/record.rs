//! The record proxy: a tee between JSON-lines clients and a live server.
//!
//! `gtl loadgen record` listens on one address, forwards every byte to
//! the upstream server and back, and captures each complete request line
//! into the [`trace`](crate::trace) file together with its connection id,
//! per-connection sequence number and arrival offset. Point clients at
//! the proxy instead of the server and traffic records itself.
//!
//! The proxy is deliberately single-threaded (the workspace's
//! no-raw-thread rule applies to I/O crates too): it serves one client
//! connection at a time with short socket read timeouts, pumping both
//! directions from one loop. Concurrent clients queue in the listen
//! backlog — fine for the capture use case, which cares about request
//! content and pacing, not proxy throughput.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gtl_api::ApiError;

use crate::replay::connect_with_retry;
use crate::trace::{render_line, TraceRecord};

/// Cap on one captured request line; longer lines abort the recording.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Poll interval for the duplex pump.
const POLL: Duration = Duration::from_millis(5);

/// Configuration for [`record`].
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Address the proxy listens on (e.g. `127.0.0.1:17900`).
    pub listen: String,
    /// Address of the live upstream server.
    pub upstream: String,
    /// Trace file to write.
    pub out: PathBuf,
    /// Stop after this many client connections (`0` = run forever).
    pub max_conns: usize,
    /// How long to keep retrying the upstream connect per connection.
    pub connect_timeout: Duration,
}

impl RecordOptions {
    /// Options with the defaults used by the CLI.
    pub fn new(
        listen: impl Into<String>,
        upstream: impl Into<String>,
        out: impl Into<PathBuf>,
    ) -> Self {
        Self {
            listen: listen.into(),
            upstream: upstream.into(),
            out: out.into(),
            max_conns: 0,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// What a finished recording captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSummary {
    /// Client connections proxied.
    pub connections: u32,
    /// Request lines captured.
    pub requests: u64,
}

/// Runs the record proxy until the connection budget is exhausted.
///
/// # Errors
///
/// Returns [`ApiError::Io`] on socket or trace-file failure and
/// [`ApiError::BadRequest`] when a client sends an over-long or
/// non-UTF-8 request line.
pub fn record(options: &RecordOptions) -> Result<RecordSummary, ApiError> {
    let listener = TcpListener::bind(&options.listen)
        .map_err(|e| ApiError::io(format!("bind {}: {e}", options.listen)))?;
    record_with_listener(&listener, options)
}

/// [`record`] on an already-bound listener (tests bind port 0 and need
/// the resolved address); `options.listen` is ignored.
///
/// # Errors
///
/// As [`record`].
pub fn record_with_listener(
    listener: &TcpListener,
    options: &RecordOptions,
) -> Result<RecordSummary, ApiError> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(&options.out)?);
    let start = Instant::now();
    let mut connections = 0u32;
    let mut requests = 0u64;
    loop {
        if options.max_conns > 0 && connections as usize >= options.max_conns {
            break;
        }
        let (client, _) = listener.accept().map_err(ApiError::from)?;
        requests += proxy_connection(&client, options, connections, start, &mut |record| {
            writeln!(out, "{}", render_line(record)).map_err(ApiError::from)
        })?;
        connections += 1;
        out.flush()?;
    }
    out.flush()?;
    Ok(RecordSummary { connections, requests })
}

/// Pumps one client connection against the upstream, handing each
/// complete request line to `sink`. Returns the number of lines captured.
fn proxy_connection(
    client: &TcpStream,
    options: &RecordOptions,
    conn: u32,
    start: Instant,
    sink: &mut dyn FnMut(&TraceRecord) -> Result<(), ApiError>,
) -> Result<u64, ApiError> {
    let upstream = connect_with_retry(&options.upstream, options.connect_timeout)?;
    client.set_read_timeout(Some(POLL)).map_err(ApiError::from)?;
    upstream.set_read_timeout(Some(POLL)).map_err(ApiError::from)?;
    let mut client_r = client;
    let mut upstream_r = &upstream;

    let mut buf = [0u8; 8192];
    let mut acc: Vec<u8> = Vec::new();
    let mut seq = 0u32;
    let mut client_open = true;

    let mut capture = |acc: &mut Vec<u8>, upto: usize, seq: &mut u32| -> Result<(), ApiError> {
        let mut line: Vec<u8> = acc.drain(..upto + 1).collect();
        line.pop(); // the \n
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        let text = String::from_utf8(line)
            .map_err(|_| ApiError::bad_request("request line is not valid UTF-8"))?;
        let offset_us = start.elapsed().as_micros() as u64;
        sink(&TraceRecord::new(conn, *seq, offset_us, text))?;
        *seq += 1;
        Ok(())
    };

    loop {
        if client_open {
            match client_r.read(&mut buf) {
                Ok(0) => {
                    client_open = false;
                    // Record a trailing unterminated fragment too — the
                    // server sees those bytes and answers them at EOF.
                    if !acc.is_empty() {
                        acc.push(b'\n');
                        let upto = acc.len() - 1;
                        capture(&mut acc, upto, &mut seq)?;
                    }
                    let _ = upstream.shutdown(Shutdown::Write);
                }
                Ok(n) => {
                    upstream_r.write_all(&buf[..n]).map_err(ApiError::from)?;
                    acc.extend_from_slice(&buf[..n]);
                    while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                        capture(&mut acc, pos, &mut seq)?;
                    }
                    if acc.len() > MAX_LINE_BYTES {
                        return Err(ApiError::bad_request(format!(
                            "request line exceeds {MAX_LINE_BYTES} bytes"
                        )));
                    }
                }
                Err(e) if would_block(&e) => {}
                Err(e) => return Err(e.into()),
            }
        }
        match upstream_r.read(&mut buf) {
            Ok(0) => break, // upstream closed: connection is done
            Ok(n) => {
                let mut client_w = client;
                client_w.write_all(&buf[..n]).map_err(ApiError::from)?;
            }
            Err(e) if would_block(&e) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(seq as u64)
}

/// True for the two kinds a timed-out socket read surfaces as.
pub(crate) fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}
