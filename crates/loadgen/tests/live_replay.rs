//! Live-server replay tests: boot the real `gtl_api::serve` loop on a
//! loopback port and drive it with `gtl_loadgen::replay`.
//!
//! Raw `thread::scope` is fine here (test zone); production loadgen code
//! fans out through `gtl_core::exec::parallel_map` only.

use std::path::PathBuf;

use gtl_api::{
    bind, serve, serve_with_metrics, FindRequest, Request, ServeOptions, Session, StatsRequest,
};
use gtl_loadgen::replay::{self, ReplayMode, ReplayOptions, ReplayReport};
use gtl_loadgen::trace::TraceRecord;
use gtl_netlist::NetlistBuilder;
use gtl_tangled::FinderConfig;

/// The 20-cell clique-plus-ring fixture the serve tests use.
fn session() -> Session {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..20).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
    for i in 0..5 {
        for j in (i + 1)..5 {
            b.add_anonymous_net([cells[i], cells[j]]);
        }
    }
    for i in 0..20 {
        b.add_anonymous_net([cells[i], cells[(i + 1) % 20]]);
    }
    Session::builder().netlist(b.finish()).build().unwrap()
}

fn find_line() -> String {
    serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
        num_seeds: 6,
        min_size: 3,
        max_order_len: 10,
        rng_seed: 3,
        ..FinderConfig::default()
    })))
}

fn stats_line() -> String {
    serde::json::to_string(&Request::Stats(StatsRequest::new()))
}

/// Boots a fresh server with an accept budget of `max_conns`, runs `f`
/// against its address, and joins the server before returning.
fn with_server<R: Send>(max_conns: usize, f: impl FnOnce(&str) -> R + Send) -> R {
    let session = session();
    let listener = bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions::new().lanes(1).max_connections(Some(max_conns));
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
        let result = f(&addr);
        handle.join().unwrap();
        result
    })
}

fn unique_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gtl_loadgen_live").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn replays_across_fresh_servers_are_byte_identical() {
    // Two connections: conn 0 pipelines a Find and a Stats, conn 1 sends
    // one Find. v5 responses carry accept-order trace stamps, so byte
    // identity across runs also proves the serial-connect contract.
    let records = vec![
        TraceRecord::new(0, 0, 0, find_line()),
        TraceRecord::new(0, 1, 100, stats_line()),
        TraceRecord::new(1, 0, 200, find_line()),
    ];
    let run_one = || {
        with_server(2, |addr| {
            let mut options = ReplayOptions::new(addr);
            options.mode = ReplayMode::Closed { inflight: 2 };
            replay::run(&records, &options).unwrap()
        })
    };
    let a: ReplayReport = run_one();
    let b: ReplayReport = run_one();
    assert_eq!(a.log, b.log, "two replays of the same trace must be byte-identical");
    assert_eq!(a.responses, 3);
    assert_eq!(a.log.lines().count(), 3);
    assert!(a.req_per_s > 0.0);
    let counts: Vec<(&str, u64)> = a.kinds.iter().map(|k| (k.kind, k.count)).collect();
    assert_eq!(counts, vec![("find", 2), ("stats", 1)]);
}

#[test]
fn expect_mode_passes_on_match_and_fails_on_drift() {
    let golden = unique_dir("expect").join("golden.log");
    let records =
        vec![TraceRecord::new(0, 0, 0, find_line()), TraceRecord::new(0, 1, 0, stats_line())];
    with_server(1, |addr| {
        let mut options = ReplayOptions::new(addr);
        options.out = Some(golden.clone());
        replay::run(&records, &options).unwrap();
    });
    with_server(1, |addr| {
        let mut options = ReplayOptions::new(addr);
        options.expect = Some(golden.clone());
        replay::run(&records, &options).unwrap();
    });
    // Tamper with one byte of the golden: the replay must fail and name
    // the diverging line.
    let mut text = std::fs::read_to_string(&golden).unwrap();
    text = text.replacen("{", "[", 1);
    std::fs::write(&golden, text).unwrap();
    let err = with_server(1, |addr| {
        let mut options = ReplayOptions::new(addr);
        options.expect = Some(golden.clone());
        replay::run(&records, &options).unwrap_err()
    });
    let message = err.to_string();
    assert!(message.contains("response drift"), "{message}");
    assert!(message.contains("line 1"), "{message}");
}

#[test]
fn closed_loop_repeat_reports_per_kind_latencies() {
    let summary_path = unique_dir("closed").join("loadgen.json");
    let records =
        vec![TraceRecord::new(0, 0, 0, find_line()), TraceRecord::new(0, 1, 0, stats_line())];
    let report = with_server(1, |addr| {
        let mut options = ReplayOptions::new(addr);
        options.mode = ReplayMode::Closed { inflight: 2 };
        options.repeat = 5;
        options.summary_out = Some(summary_path.clone());
        replay::run(&records, &options).unwrap()
    });
    assert_eq!(report.requests, 10);
    assert_eq!(report.responses, 10);
    assert!(report.req_per_s > 0.0);
    let find = report.kinds.iter().find(|k| k.kind == "find").unwrap();
    let stats = report.kinds.iter().find(|k| k.kind == "stats").unwrap();
    assert_eq!((find.count, stats.count), (5, 5));
    assert!(find.p50_us <= find.p95_us && find.p95_us <= find.p99_us);
    assert!(find.max_us > 0);

    let parsed = serde::json::parse(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
    assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("loadgen"));
    let runs = match parsed.get("runs") {
        Some(serde::Value::Arr(runs)) => runs,
        other => panic!("runs missing: {other:?}"),
    };
    assert_eq!(runs[0].get("mode").and_then(|v| v.as_str()), Some("closed"));
    assert_eq!(runs[0].get("responses").and_then(|v| v.as_u64()), Some(10));
    assert!(runs[0].get("req_per_s").and_then(|v| v.as_f64()).unwrap() > 0.0);
}

#[test]
fn open_loop_paces_requests_at_recorded_offsets() {
    // Offsets span 60ms; an open-loop replay cannot finish faster than
    // the last scheduled send.
    let records = vec![
        TraceRecord::new(0, 0, 0, stats_line()),
        TraceRecord::new(0, 1, 30_000, stats_line()),
        TraceRecord::new(0, 2, 60_000, stats_line()),
    ];
    let report = with_server(1, |addr| {
        let mut options = ReplayOptions::new(addr);
        options.mode = ReplayMode::Open { rate: 0.0 };
        replay::run(&records, &options).unwrap()
    });
    assert_eq!(report.responses, 3);
    assert_eq!(report.log.lines().count(), 3);
    assert!(
        report.wall_seconds >= 0.06,
        "open loop finished in {}s, before the 60ms schedule",
        report.wall_seconds
    );
}

#[test]
fn scrape_captures_metrics_while_connections_are_open() {
    let dir = unique_dir("scrape");
    let scrape_out = dir.join("scrape.txt");
    let records =
        vec![TraceRecord::new(0, 0, 0, find_line()), TraceRecord::new(0, 1, 0, stats_line())];
    let session = session();
    let listener = bind("127.0.0.1:0").unwrap();
    let metrics_listener = bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let metrics_addr = metrics_listener.local_addr().unwrap().to_string();
    let options = ServeOptions::new().lanes(1).max_connections(Some(1));
    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            serve_with_metrics(&session, &listener, &options, Some(&metrics_listener)).unwrap()
        });
        let mut replay_options = ReplayOptions::new(&addr);
        replay_options.scrape_addr = Some(metrics_addr);
        replay_options.scrape_out = Some(scrape_out.clone());
        let report = replay::run(&records, &replay_options).unwrap();
        handle.join().unwrap();
        report
    });
    let scrape = report.scrape.expect("scrape text in report");
    assert!(scrape.contains("200 OK"), "{scrape}");
    assert!(scrape.contains("gtl_requests"), "{scrape}");
    assert_eq!(std::fs::read_to_string(&scrape_out).unwrap(), scrape);
}
