//! Live record-proxy test: client → proxy → real server, then replay
//! the captured trace against a fresh server and compare bytes.
//!
//! Raw `thread::scope` is fine here (test zone); the production proxy
//! itself is single-threaded.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use gtl_api::{bind, serve, FindRequest, Request, ServeOptions, Session, StatsRequest};
use gtl_loadgen::record::{record_with_listener, RecordOptions};
use gtl_loadgen::replay::{self, ReplayOptions};
use gtl_loadgen::trace::read_trace;
use gtl_netlist::NetlistBuilder;
use gtl_tangled::FinderConfig;

fn session() -> Session {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..20).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
    for i in 0..5 {
        for j in (i + 1)..5 {
            b.add_anonymous_net([cells[i], cells[j]]);
        }
    }
    for i in 0..20 {
        b.add_anonymous_net([cells[i], cells[(i + 1) % 20]]);
    }
    Session::builder().netlist(b.finish()).build().unwrap()
}

fn find_line() -> String {
    serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
        num_seeds: 6,
        min_size: 3,
        max_order_len: 10,
        rng_seed: 3,
        ..FinderConfig::default()
    })))
}

fn stats_line() -> String {
    serde::json::to_string(&Request::Stats(StatsRequest::new()))
}

#[test]
fn proxy_captures_traffic_that_replays_byte_identically() {
    let dir = std::env::temp_dir().join("gtl_loadgen_live").join("record");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("captured.jsonl");

    // Phase 1: record. A client talks to the real server through the
    // proxy; the proxy must be a transparent byte pipe while capturing
    // every request line.
    let upstream_session = session();
    let upstream_listener = bind("127.0.0.1:0").unwrap();
    let upstream_addr = upstream_listener.local_addr().unwrap().to_string();
    let serve_options = ServeOptions::new().lanes(1).max_connections(Some(1));

    let proxy_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = proxy_listener.local_addr().unwrap().to_string();
    let mut record_options = RecordOptions::new("ignored", &upstream_addr, &trace_path);
    record_options.max_conns = 1;

    let (client_lines, summary) = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve(&upstream_session, &upstream_listener, &serve_options).unwrap());
        let proxy = scope.spawn(|| record_with_listener(&proxy_listener, &record_options).unwrap());

        let mut conn = TcpStream::connect(&proxy_addr).unwrap();
        write!(conn, "{}\n{}\n", find_line(), stats_line()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim_end().to_string());
        }
        drop(reader);
        drop(conn); // client hangs up; proxy propagates EOF upstream

        let summary = proxy.join().unwrap();
        server.join().unwrap();
        (lines, summary)
    });
    assert_eq!((summary.connections, summary.requests), (1, 2));

    let records = read_trace(&trace_path).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].line, find_line());
    assert_eq!(records[1].line, stats_line());
    assert_eq!((records[0].conn, records[0].seq), (0, 0));
    assert_eq!((records[1].conn, records[1].seq), (0, 1));
    assert!(records[0].offset_us <= records[1].offset_us);

    // Phase 2: replay the capture against a fresh server. The fresh
    // server assigns the same accept-order trace stamps, so the replayed
    // responses must match what the live client saw byte for byte.
    let replay_session = session();
    let replay_listener = bind("127.0.0.1:0").unwrap();
    let replay_addr = replay_listener.local_addr().unwrap().to_string();
    let report = std::thread::scope(|scope| {
        let server =
            scope.spawn(|| serve(&replay_session, &replay_listener, &serve_options).unwrap());
        let report = replay::run(&records, &ReplayOptions::new(&replay_addr)).unwrap();
        server.join().unwrap();
        report
    });
    assert_eq!(report.responses, 2);
    let replayed: Vec<&str> = report.log.lines().collect();
    assert_eq!(replayed, client_lines.iter().map(String::as_str).collect::<Vec<_>>());
}
