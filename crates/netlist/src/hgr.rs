//! hMETIS-style plain hypergraph format (`.hgr`).
//!
//! The format is a de-facto interchange standard in partitioning research
//! and is handy for fixtures: the first non-comment line holds
//! `<num_nets> <num_cells>`, and each following line lists the 1-based cell
//! indices of one net. Lines starting with `%` are comments.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::hgr;
//!
//! let text = "% tiny\n2 3\n1 2\n2 3\n";
//! let nl = hgr::parse_str(text)?;
//! assert_eq!(nl.num_cells(), 3);
//! assert_eq!(nl.num_nets(), 2);
//! let out = hgr::to_string(&nl);
//! let again = hgr::parse_str(&out)?;
//! assert_eq!(again.num_pins(), nl.num_pins());
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::Path;

use crate::stream::{LineScanner, DEFAULT_MAX_LINE_BYTES};
use crate::{CellId, Netlist, NetlistBuilder, NetlistError, ParseContext};

/// Parses a `.hgr` hypergraph from a reader.
///
/// Streams through a bounded line buffer (see [`crate::stream`]); the
/// whole file is never materialized, so multi-million-cell designs parse
/// in memory proportional to the netlist itself, not the file. A mut
/// reference to a reader can be passed (`&mut reader`) thanks to the
/// blanket `Read for &mut R` impl.
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] on malformed numbers or out-of-range
/// pins, and [`NetlistError::CountMismatch`] if the header count disagrees
/// with the body.
pub fn parse<R: Read>(reader: R, label: &str) -> Result<Netlist, NetlistError> {
    parse_with(reader, label, DEFAULT_MAX_LINE_BYTES)
}

/// [`parse`] with an explicit per-line byte cap.
///
/// A line longer than `max_line_bytes` fails with
/// [`NetlistError::Syntax`] instead of growing the scan buffer — useful
/// when ingesting untrusted files.
///
/// # Errors
///
/// Same as [`parse`], plus the over-long-line rejection.
pub fn parse_with<R: Read>(
    reader: R,
    label: &str,
    max_line_bytes: usize,
) -> Result<Netlist, NetlistError> {
    let mut scanner = LineScanner::with_max_line(reader, label, max_line_bytes);

    let (num_nets, num_cells) = loop {
        match scanner.next_line()? {
            Some((no, line)) => {
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                let mut parts = trimmed.split_whitespace();
                let num_nets: usize = parse_num(parts.next(), label, no, "net count")?;
                let num_cells: usize = parse_num(parts.next(), label, no, "cell count")?;
                if let Some(fmt) = parts.next() {
                    if fmt != "0" {
                        return Err(NetlistError::syntax(
                            ParseContext::new(label, no),
                            format!("weighted hgr format `{fmt}` is not supported"),
                        ));
                    }
                }
                break (num_nets, num_cells);
            }
            None => {
                return Err(NetlistError::syntax(ParseContext::new(label, 1), "empty hgr file"))
            }
        }
    };

    let mut builder = NetlistBuilder::with_capacity(num_cells, num_nets);
    builder.add_anonymous_cells(num_cells);

    let mut nets_read = 0usize;
    let mut pins: Vec<CellId> = Vec::new();
    while let Some((no, line)) = scanner.next_line()? {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if nets_read == num_nets {
            return Err(NetlistError::CountMismatch {
                what: "nets".into(),
                declared: num_nets,
                found: nets_read + 1,
            });
        }
        pins.clear();
        for tok in trimmed.split_whitespace() {
            let idx: usize = parse_num(Some(tok), label, no, "pin")?;
            if idx == 0 || idx > num_cells {
                return Err(NetlistError::syntax(
                    ParseContext::new(label, no),
                    format!("pin index {idx} out of range 1..={num_cells}"),
                ));
            }
            pins.push(CellId::new(idx - 1));
        }
        builder.add_anonymous_net(pins.iter().copied());
        nets_read += 1;
    }
    if nets_read != num_nets {
        return Err(NetlistError::CountMismatch {
            what: "nets".into(),
            declared: num_nets,
            found: nets_read,
        });
    }
    Ok(builder.finish())
}

/// Parses a `.hgr` hypergraph from a string.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_str(text: &str) -> Result<Netlist, NetlistError> {
    parse(text.as_bytes(), "<string>")
}

/// Reads a `.hgr` file from disk.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on I/O failure plus everything [`parse`]
/// can return.
pub fn read(path: impl AsRef<Path>) -> Result<Netlist, NetlistError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    parse(file, &path.display().to_string())
}

/// Serializes a netlist to `.hgr` text.
///
/// Cell names and areas are not representable in this format and are
/// dropped; a round-trip preserves only connectivity.
pub fn to_string(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", netlist.num_nets(), netlist.num_cells());
    for net in netlist.nets() {
        let mut first = true;
        for &cell in netlist.net_cells(net) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", cell.index() + 1);
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Writes a netlist as `.hgr` to disk.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on I/O failure.
pub fn write(netlist: &Netlist, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_string(netlist).as_bytes())?;
    Ok(())
}

fn parse_num(
    tok: Option<&str>,
    label: &str,
    line: usize,
    what: &str,
) -> Result<usize, NetlistError> {
    let tok = tok.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(label, line), format!("missing {what}"))
    })?;
    tok.parse().map_err(|_| {
        NetlistError::syntax(ParseContext::new(label, line), format!("invalid {what} `{tok}`"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let nl = parse_str("3 4\n1 2\n2 3 4\n1 4\n").unwrap();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 7);
        nl.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let nl = parse_str("% header\n\n2 2\n% net one\n1 2\n\n1 2\n").unwrap();
        assert_eq!(nl.num_nets(), 2);
    }

    #[test]
    fn count_mismatch_too_few() {
        let err = parse_str("2 2\n1 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { declared: 2, found: 1, .. }));
    }

    #[test]
    fn count_mismatch_too_many() {
        let err = parse_str("1 2\n1 2\n1 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { .. }));
    }

    #[test]
    fn out_of_range_pin() {
        let err = parse_str("1 2\n1 3\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_pin_rejected() {
        let err = parse_str("1 2\n0 1\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(parse_str("").is_err());
        assert!(parse_str("% only comments\n").is_err());
    }

    #[test]
    fn weighted_format_rejected() {
        let err = parse_str("1 2 11\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn truncated_body_reports_count_mismatch() {
        // Simulates a file cut off mid-transfer: header promises 3 nets
        // but the stream ends after one.
        let err = parse_str("3 4\n1 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { declared: 3, found: 1, .. }));
    }

    #[test]
    fn unterminated_final_net_line_still_parses() {
        let nl = parse_str("2 3\n1 2\n2 3").unwrap();
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.num_pins(), 4);
    }

    #[test]
    fn oversized_line_rejected_with_cap() {
        let mut text = String::from("1 64\n");
        for i in 1..=64 {
            text.push_str(&format!("{i} "));
        }
        text.push('\n');
        let err = parse_with(text.as_bytes(), "<capped>", 32).unwrap_err();
        assert!(err.to_string().contains("maximum length"), "{err}");
        // The same input parses fine without the tight cap.
        assert!(parse_str(&text).is_ok());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let bytes: &[u8] = b"1 2\n1 \xff2\n";
        let err = parse(bytes, "<bin>").unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn roundtrip() {
        let nl = parse_str("2 3\n1 2 3\n2 3\n").unwrap();
        let text = to_string(&nl);
        let again = parse_str(&text).unwrap();
        assert_eq!(again.num_cells(), nl.num_cells());
        assert_eq!(again.num_nets(), nl.num_nets());
        assert_eq!(again.num_pins(), nl.num_pins());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gtl_hgr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hgr");
        let nl = parse_str("1 2\n1 2\n").unwrap();
        write(&nl, &path).unwrap();
        let again = read(&path).unwrap();
        assert_eq!(again.num_nets(), 1);
    }
}
