//! hMETIS-style plain hypergraph format (`.hgr`).
//!
//! The format is a de-facto interchange standard in partitioning research
//! and is handy for fixtures: the first non-comment line holds
//! `<num_nets> <num_cells>`, and each following line lists the 1-based cell
//! indices of one net. Lines starting with `%` are comments.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::hgr;
//!
//! let text = "% tiny\n2 3\n1 2\n2 3\n";
//! let nl = hgr::parse_str(text)?;
//! assert_eq!(nl.num_cells(), 3);
//! assert_eq!(nl.num_nets(), 2);
//! let out = hgr::to_string(&nl);
//! let again = hgr::parse_str(&out)?;
//! assert_eq!(again.num_pins(), nl.num_pins());
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{CellId, Netlist, NetlistBuilder, NetlistError, ParseContext};

/// Parses a `.hgr` hypergraph from a reader.
///
/// A mut reference to a reader can be passed (`&mut reader`) thanks to the
/// blanket `Read for &mut R` impl.
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] on malformed numbers or out-of-range
/// pins, and [`NetlistError::CountMismatch`] if the header count disagrees
/// with the body.
pub fn parse<R: Read>(reader: R, label: &str) -> Result<Netlist, NetlistError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed.to_string());
            }
            None => {
                return Err(NetlistError::syntax(ParseContext::new(label, 1), "empty hgr file"))
            }
        }
    };

    let mut parts = header.split_whitespace();
    let num_nets: usize = parse_num(parts.next(), label, header_line_no, "net count")?;
    let num_cells: usize = parse_num(parts.next(), label, header_line_no, "cell count")?;
    if let Some(fmt) = parts.next() {
        if fmt != "0" {
            return Err(NetlistError::syntax(
                ParseContext::new(label, header_line_no),
                format!("weighted hgr format `{fmt}` is not supported"),
            ));
        }
    }

    let mut builder = NetlistBuilder::with_capacity(num_cells, num_nets);
    builder.add_anonymous_cells(num_cells);

    let mut nets_read = 0usize;
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if nets_read == num_nets {
            return Err(NetlistError::CountMismatch {
                what: "nets".into(),
                declared: num_nets,
                found: nets_read + 1,
            });
        }
        let mut pins = Vec::new();
        for tok in trimmed.split_whitespace() {
            let idx: usize = parse_num(Some(tok), label, i + 1, "pin")?;
            if idx == 0 || idx > num_cells {
                return Err(NetlistError::syntax(
                    ParseContext::new(label, i + 1),
                    format!("pin index {idx} out of range 1..={num_cells}"),
                ));
            }
            pins.push(CellId::new(idx - 1));
        }
        builder.add_anonymous_net(pins);
        nets_read += 1;
    }
    if nets_read != num_nets {
        return Err(NetlistError::CountMismatch {
            what: "nets".into(),
            declared: num_nets,
            found: nets_read,
        });
    }
    Ok(builder.finish())
}

/// Parses a `.hgr` hypergraph from a string.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_str(text: &str) -> Result<Netlist, NetlistError> {
    parse(text.as_bytes(), "<string>")
}

/// Reads a `.hgr` file from disk.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on I/O failure plus everything [`parse`]
/// can return.
pub fn read(path: impl AsRef<Path>) -> Result<Netlist, NetlistError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    parse(file, &path.display().to_string())
}

/// Serializes a netlist to `.hgr` text.
///
/// Cell names and areas are not representable in this format and are
/// dropped; a round-trip preserves only connectivity.
pub fn to_string(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", netlist.num_nets(), netlist.num_cells());
    for net in netlist.nets() {
        let mut first = true;
        for &cell in netlist.net_cells(net) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", cell.index() + 1);
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Writes a netlist as `.hgr` to disk.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on I/O failure.
pub fn write(netlist: &Netlist, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_string(netlist).as_bytes())?;
    Ok(())
}

fn parse_num(
    tok: Option<&str>,
    label: &str,
    line: usize,
    what: &str,
) -> Result<usize, NetlistError> {
    let tok = tok.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(label, line), format!("missing {what}"))
    })?;
    tok.parse().map_err(|_| {
        NetlistError::syntax(ParseContext::new(label, line), format!("invalid {what} `{tok}`"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let nl = parse_str("3 4\n1 2\n2 3 4\n1 4\n").unwrap();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 7);
        nl.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let nl = parse_str("% header\n\n2 2\n% net one\n1 2\n\n1 2\n").unwrap();
        assert_eq!(nl.num_nets(), 2);
    }

    #[test]
    fn count_mismatch_too_few() {
        let err = parse_str("2 2\n1 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { declared: 2, found: 1, .. }));
    }

    #[test]
    fn count_mismatch_too_many() {
        let err = parse_str("1 2\n1 2\n1 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { .. }));
    }

    #[test]
    fn out_of_range_pin() {
        let err = parse_str("1 2\n1 3\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_pin_rejected() {
        let err = parse_str("1 2\n0 1\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(parse_str("").is_err());
        assert!(parse_str("% only comments\n").is_err());
    }

    #[test]
    fn weighted_format_rejected() {
        let err = parse_str("1 2 11\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn roundtrip() {
        let nl = parse_str("2 3\n1 2 3\n2 3\n").unwrap();
        let text = to_string(&nl);
        let again = parse_str(&text).unwrap();
        assert_eq!(again.num_cells(), nl.num_cells());
        assert_eq!(again.num_nets(), nl.num_nets());
        assert_eq!(again.num_pins(), nl.num_pins());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gtl_hgr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hgr");
        let nl = parse_str("1 2\n1 2\n").unwrap();
        write(&nl, &path).unwrap();
        let again = read(&path).unwrap();
        assert_eq!(again.num_nets(), 1);
    }
}
