//! Bounded-memory line scanning for streaming netlist parsers.
//!
//! The million-cell ISPD-like designs the serve path loads through the
//! session registry are too large to `read_to_string` comfortably, and a
//! hostile input must not be able to balloon memory by omitting newlines.
//! [`LineScanner`] reads from any [`Read`] through a single reusable
//! buffer: the buffer grows only as far as the longest line seen (capped
//! at a configurable maximum), so peak memory is bounded by
//! `max_line_bytes` regardless of file size.
//!
//! The [`hgr`](crate::hgr) and [`bookshelf`](crate::bookshelf) parsers are
//! built on this scanner, which makes "streaming parse" and "whole-buffer
//! parse" the same code path — property-tested to be byte-equivalent.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::stream::LineScanner;
//!
//! let mut scanner = LineScanner::new("a\r\nbb\nccc".as_bytes(), "demo");
//! let mut lines = Vec::new();
//! while let Some((no, line)) = scanner.next_line()? {
//!     lines.push((no, line.to_string()));
//! }
//! assert_eq!(lines, [(1, "a".into()), (2, "bb".into()), (3, "ccc".into())]);
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::io::Read;

use crate::{NetlistError, ParseContext};

/// Default cap on a single line, in bytes (8 MiB).
///
/// Generous enough for the widest net records in multi-million-cell
/// designs while still bounding what a newline-free input can consume.
pub const DEFAULT_MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Initial scan-buffer size; the buffer doubles lazily as lines demand.
const INITIAL_BUF_BYTES: usize = 64 * 1024;

/// Streaming line reader with a bounded, reusable buffer.
///
/// Yields `(line_number, line)` pairs via [`next_line`](Self::next_line).
/// Line numbers are 1-based; a trailing `\r` is stripped (CRLF input);
/// a final line without a trailing newline is still yielded, matching
/// [`std::io::BufRead::lines`] semantics. Each line is validated as UTF-8.
pub struct LineScanner<R> {
    reader: R,
    label: String,
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
    /// End of valid bytes in `buf`.
    end: usize,
    line_no: usize,
    max_line_bytes: usize,
    eof: bool,
}

impl<R: Read> LineScanner<R> {
    /// Creates a scanner with the [`DEFAULT_MAX_LINE_BYTES`] line cap.
    ///
    /// `label` names the stream in error messages (a file path, or
    /// `"<string>"` for in-memory input).
    pub fn new(reader: R, label: impl Into<String>) -> Self {
        Self::with_max_line(reader, label, DEFAULT_MAX_LINE_BYTES)
    }

    /// Creates a scanner with an explicit per-line byte cap.
    ///
    /// A line longer than `max_line_bytes` (excluding the newline) fails
    /// with [`NetlistError::Syntax`] instead of growing the buffer.
    pub fn with_max_line(reader: R, label: impl Into<String>, max_line_bytes: usize) -> Self {
        Self {
            reader,
            label: label.into(),
            buf: vec![0; INITIAL_BUF_BYTES.min(max_line_bytes.saturating_add(2)).max(16)],
            start: 0,
            end: 0,
            line_no: 0,
            max_line_bytes,
            eof: false,
        }
    }

    /// The stream label used in error messages.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// 1-based number of the most recently returned line (0 before any).
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// Returns the next line as `(line_number, line)`, or `None` at EOF.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Io`] on read failure and
    /// [`NetlistError::Syntax`] for an over-long line or invalid UTF-8.
    pub fn next_line(&mut self) -> Result<Option<(usize, &str)>, NetlistError> {
        loop {
            if let Some(pos) = find_byte(&self.buf[self.start..self.end], b'\n') {
                let line_start = self.start;
                let line_end = self.start + pos;
                self.start = line_end + 1;
                self.line_no += 1;
                let bytes = trim_cr(&self.buf[line_start..line_end]);
                return Ok(Some((self.line_no, self.check_utf8(bytes)?)));
            }
            if self.eof {
                if self.start == self.end {
                    return Ok(None);
                }
                let line_start = self.start;
                let line_end = self.end;
                self.start = self.end;
                self.line_no += 1;
                let bytes = trim_cr(&self.buf[line_start..line_end]);
                return Ok(Some((self.line_no, self.check_utf8(bytes)?)));
            }
            self.refill()?;
        }
    }

    /// Compacts the partial line to the buffer front and reads more bytes.
    fn refill(&mut self) -> Result<(), NetlistError> {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        // `refill` only runs when `buf[..end]` holds a single partial line,
        // so its length is the current line length.
        if self.end > self.max_line_bytes {
            return Err(NetlistError::syntax(
                ParseContext::new(&self.label, self.line_no + 1),
                format!("line exceeds maximum length of {} bytes", self.max_line_bytes),
            ));
        }
        if self.end == self.buf.len() {
            // Doubling keeps the buffer within 2x of the longest line, and
            // the cap check above bounds that at 2 * max_line_bytes.
            let new_len = (self.buf.len() * 2).max(16);
            self.buf.resize(new_len, 0);
        }
        let n = self.reader.read(&mut self.buf[self.end..])?;
        if n == 0 {
            self.eof = true;
        } else {
            self.end += n;
        }
        Ok(())
    }

    fn check_utf8<'a>(&self, bytes: &'a [u8]) -> Result<&'a str, NetlistError> {
        std::str::from_utf8(bytes).map_err(|_| {
            NetlistError::syntax(
                ParseContext::new(&self.label, self.line_no),
                "line is not valid UTF-8",
            )
        })
    }
}

fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line {
        [rest @ .., b'\r'] => rest,
        _ => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(text: &str) -> Vec<(usize, String)> {
        let mut scanner = LineScanner::new(text.as_bytes(), "<test>");
        let mut out = Vec::new();
        while let Some((no, line)) = scanner.next_line().unwrap() {
            out.push((no, line.to_string()));
        }
        out
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(collect("").is_empty());
    }

    #[test]
    fn final_line_without_newline_is_yielded() {
        assert_eq!(collect("a\nb"), [(1, "a".into()), (2, "b".into())]);
    }

    #[test]
    fn crlf_is_stripped() {
        assert_eq!(collect("a\r\nb\r\n"), [(1, "a".into()), (2, "b".into())]);
    }

    #[test]
    fn blank_lines_keep_numbering() {
        assert_eq!(collect("a\n\nc\n"), [(1, "a".into()), (2, "".into()), (3, "c".into())]);
    }

    #[test]
    fn line_longer_than_initial_buffer_grows() {
        let long = "x".repeat(INITIAL_BUF_BYTES * 3);
        let text = format!("{long}\nshort\n");
        let lines = collect(&text);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].1.len(), INITIAL_BUF_BYTES * 3);
        assert_eq!(lines[1].1, "short");
    }

    #[test]
    fn oversized_line_is_rejected() {
        let text = format!("{}\n", "y".repeat(100));
        let mut scanner = LineScanner::with_max_line(text.as_bytes(), "<cap>", 64);
        let err = scanner.next_line().unwrap_err();
        assert!(err.to_string().contains("maximum length of 64 bytes"), "{err}");
        assert!(err.to_string().starts_with("<cap>:1"), "{err}");
    }

    #[test]
    fn line_exactly_at_cap_is_accepted() {
        let text = format!("{}\n", "z".repeat(64));
        let mut scanner = LineScanner::with_max_line(text.as_bytes(), "<cap>", 64);
        let (no, line) = scanner.next_line().unwrap().unwrap();
        assert_eq!((no, line.len()), (1, 64));
        assert!(scanner.next_line().unwrap().is_none());
    }

    #[test]
    fn invalid_utf8_is_rejected_with_line_number() {
        let bytes: &[u8] = b"ok\n\xff\xfe\n";
        let mut scanner = LineScanner::new(bytes, "<bin>");
        assert_eq!(scanner.next_line().unwrap().unwrap(), (1, "ok"));
        let err = scanner.next_line().unwrap_err();
        assert!(err.to_string().starts_with("<bin>:2"), "{err}");
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn dribbling_reader_matches_whole_buffer() {
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let text = "alpha\nbeta\r\n\ngamma";
        let mut scanner = LineScanner::new(OneByte(text.as_bytes()), "<dribble>");
        let mut out = Vec::new();
        while let Some((no, line)) = scanner.next_line().unwrap() {
            out.push((no, line.to_string()));
        }
        assert_eq!(out, collect(text));
    }

    #[test]
    fn line_no_tracks_last_returned_line() {
        let mut scanner = LineScanner::new("a\nb\n".as_bytes(), "<n>");
        assert_eq!(scanner.line_no(), 0);
        scanner.next_line().unwrap();
        assert_eq!(scanner.line_no(), 1);
        scanner.next_line().unwrap();
        scanner.next_line().unwrap();
        assert_eq!(scanner.line_no(), 2);
    }
}
