//! Bookshelf placement format, as used by the ISPD 2005/2006 benchmarks.
//!
//! The paper's Table 2 evaluates the tangled-logic finder on the ISPD
//! placement benchmarks (Bigblue1–3, Adaptec1–3), which are distributed in
//! this format. A design is a set of files referenced by a `.aux` index:
//!
//! * `.nodes` — cell names and dimensions (`NumNodes`, `NumTerminals`),
//! * `.nets`  — hyperedges (`NumNets`, `NumPins`, `NetDegree` records),
//! * `.pl`    — placement (x, y, orientation, optional `/FIXED`),
//! * `.scl`   — standard-cell rows (parsed for row geometry, optional).
//!
//! This module provides a hand-written reader and writer. The reader is
//! tolerant of the formatting variations found in the wild (variable
//! whitespace, comment lines, optional pin offsets on net records).
//!
//! # Example
//!
//! ```
//! use gtl_netlist::bookshelf::{self, BookshelfDesign};
//!
//! let nodes = "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\n a 2 1\n p 1 1 terminal\n";
//! let nets = "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a I : 0 0\n p O : 0 0\n";
//! let design = bookshelf::parse_parts(nodes, nets, None, None)?;
//! assert_eq!(design.netlist.num_cells(), 2);
//! assert!(design.fixed[design.netlist.find_cell("p").unwrap().index()]);
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::stream::LineScanner;
use crate::{CellId, Netlist, NetlistBuilder, NetlistError, ParseContext};

/// One standard-cell row from a `.scl` file.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Row {
    /// Bottom y coordinate of the row.
    pub y: f64,
    /// Row height.
    pub height: f64,
    /// Leftmost site x coordinate.
    pub x: f64,
    /// Number of placement sites in the row.
    pub num_sites: usize,
    /// Width of one site.
    pub site_width: f64,
}

impl Row {
    /// Rightmost coordinate of the row.
    pub fn x_end(&self) -> f64 {
        self.x + self.num_sites as f64 * self.site_width
    }
}

/// A parsed Bookshelf design: netlist plus physical annotations.
#[derive(Debug, Clone)]
pub struct BookshelfDesign {
    /// The connectivity hypergraph. Cell area = width × height.
    pub netlist: Netlist,
    /// Cell widths from the `.nodes` file, indexed by cell id.
    pub widths: Vec<f64>,
    /// Cell heights from the `.nodes` file, indexed by cell id.
    pub heights: Vec<f64>,
    /// `true` for terminals / `/FIXED` cells, indexed by cell id.
    pub fixed: Vec<bool>,
    /// `(x, y)` positions from the `.pl` file, if one was given.
    pub positions: Option<Vec<(f64, f64)>>,
    /// Rows from the `.scl` file, if one was given.
    pub rows: Vec<Row>,
}

impl BookshelfDesign {
    /// Bounding box `(x_min, y_min, x_max, y_max)` of the rows, or of the
    /// placement if no rows were parsed.
    ///
    /// Returns `None` when neither rows nor positions are available.
    pub fn core_bounds(&self) -> Option<(f64, f64, f64, f64)> {
        if !self.rows.is_empty() {
            let x0 = self.rows.iter().map(|r| r.x).fold(f64::INFINITY, f64::min);
            let x1 = self.rows.iter().map(|r| r.x_end()).fold(f64::NEG_INFINITY, f64::max);
            let y0 = self.rows.iter().map(|r| r.y).fold(f64::INFINITY, f64::min);
            let y1 = self.rows.iter().map(|r| r.y + r.height).fold(f64::NEG_INFINITY, f64::max);
            return Some((x0, y0, x1, y1));
        }
        let pos = self.positions.as_ref()?;
        if pos.is_empty() {
            return None;
        }
        let x0 = pos.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x1 = pos.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y0 = pos.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let y1 = pos.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        Some((x0, y0, x1, y1))
    }
}

/// Reads a design given its `.aux` file.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] if a referenced file is missing and
/// [`NetlistError::Syntax`] on malformed content.
pub fn read_aux(path: impl AsRef<Path>) -> Result<BookshelfDesign, NetlistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut nodes: Option<PathBuf> = None;
    let mut nets: Option<PathBuf> = None;
    let mut pl: Option<PathBuf> = None;
    let mut scl: Option<PathBuf> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let names = line.split(':').next_back().unwrap_or("");
        for tok in names.split_whitespace() {
            let p = dir.join(tok);
            match Path::new(tok).extension().and_then(|e| e.to_str()) {
                Some("nodes") => nodes = Some(p),
                Some("nets") => nets = Some(p),
                Some("pl") => pl = Some(p),
                Some("scl") => scl = Some(p),
                _ => {}
            }
        }
    }
    let label = path.display().to_string();
    let nodes = nodes.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(&label, 1), "aux lists no .nodes file")
    })?;
    let nets = nets.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(&label, 1), "aux lists no .nets file")
    })?;
    // The .nodes and .nets files dominate a design's size (a million-cell
    // design is hundreds of MB of net records); stream them through the
    // bounded scanner. The .pl/.scl files are O(cells) lines of short
    // fixed-width records and stay on the eager path.
    let nodes_file = std::fs::File::open(&nodes)?;
    let mut nodes_scanner = LineScanner::new(nodes_file, nodes.display().to_string());
    let nets_file = std::fs::File::open(&nets)?;
    let mut nets_scanner = LineScanner::new(nets_file, nets.display().to_string());
    let pl_text = match &pl {
        Some(p) if p.exists() => Some(std::fs::read_to_string(p)?),
        _ => None,
    };
    let scl_text = match &scl {
        Some(p) if p.exists() => Some(std::fs::read_to_string(p)?),
        _ => None,
    };
    build_design(&mut nodes_scanner, &mut nets_scanner, pl_text.as_deref(), scl_text.as_deref())
}

/// Parses a design from in-memory file contents.
///
/// `pl` and `scl` are optional. This is the entry point used by tests and
/// by [`read_aux`].
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] on malformed content,
/// [`NetlistError::UnknownCell`] when a net references an undeclared node,
/// and [`NetlistError::CountMismatch`] when header counts disagree with the
/// body.
pub fn parse_parts(
    nodes: &str,
    nets: &str,
    pl: Option<&str>,
    scl: Option<&str>,
) -> Result<BookshelfDesign, NetlistError> {
    let mut nodes_scanner = LineScanner::new(nodes.as_bytes(), "<nodes>");
    let mut nets_scanner = LineScanner::new(nets.as_bytes(), "<nets>");
    build_design(&mut nodes_scanner, &mut nets_scanner, pl, scl)
}

/// Shared body of [`parse_parts`] and [`read_aux`]: the `.nodes` and
/// `.nets` sides stream through [`LineScanner`]s, so the two entry points
/// are the same code path (the streaming-equivalence proptest relies on
/// this).
fn build_design<Rn: Read, Re: Read>(
    nodes_scanner: &mut LineScanner<Rn>,
    nets_scanner: &mut LineScanner<Re>,
    pl: Option<&str>,
    scl: Option<&str>,
) -> Result<BookshelfDesign, NetlistError> {
    let parsed_nodes = parse_nodes(nodes_scanner)?;
    let mut name_to_id: HashMap<String, CellId> = HashMap::with_capacity(parsed_nodes.len());
    let mut builder = NetlistBuilder::with_capacity(parsed_nodes.len(), 0);
    let mut widths = Vec::with_capacity(parsed_nodes.len());
    let mut heights = Vec::with_capacity(parsed_nodes.len());
    let mut fixed = Vec::with_capacity(parsed_nodes.len());
    for node in &parsed_nodes {
        let area = (node.width * node.height).max(f64::MIN_POSITIVE);
        let id = builder.add_cell(node.name.clone(), area);
        if name_to_id.insert(node.name.clone(), id).is_some() {
            return Err(NetlistError::DuplicateName { name: node.name.clone() });
        }
        widths.push(node.width);
        heights.push(node.height);
        fixed.push(node.terminal);
    }

    parse_nets(nets_scanner, &name_to_id, &mut builder)?;
    let netlist = builder.finish();

    let positions = match pl {
        Some(text) => Some(parse_pl(text, &name_to_id, &mut fixed, netlist.num_cells())?),
        None => None,
    };
    let rows = match scl {
        Some(text) => parse_scl(text)?,
        None => Vec::new(),
    };

    Ok(BookshelfDesign { netlist, widths, heights, fixed, positions, rows })
}

struct NodeRec {
    name: String,
    width: f64,
    height: f64,
    terminal: bool,
}

fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or("").trim()
}

fn header_value(line: &str, key: &str) -> Option<usize> {
    let rest = line.strip_prefix(key)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    rest.split_whitespace().next()?.parse().ok()
}

fn parse_nodes<R: Read>(scanner: &mut LineScanner<R>) -> Result<Vec<NodeRec>, NetlistError> {
    let label = scanner.label().to_string();
    let mut declared: Option<usize> = None;
    let mut out = Vec::new();
    while let Some((i, raw)) = scanner.next_line()? {
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        if let Some(n) = header_value(line, "NumNodes") {
            declared = Some(n);
            continue;
        }
        if header_value(line, "NumTerminals").is_some() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let name = toks.next().unwrap_or_default().to_string();
        let width: f64 = parse_f64(toks.next(), &label, i, "node width")?;
        let height: f64 = parse_f64(toks.next(), &label, i, "node height")?;
        let terminal = toks.next().map(|t| t.eq_ignore_ascii_case("terminal")).unwrap_or(false);
        out.push(NodeRec { name, width, height, terminal });
    }
    if let Some(n) = declared {
        if n != out.len() {
            return Err(NetlistError::CountMismatch {
                what: "nodes".into(),
                declared: n,
                found: out.len(),
            });
        }
    }
    Ok(out)
}

fn parse_nets<R: Read>(
    scanner: &mut LineScanner<R>,
    names: &HashMap<String, CellId>,
    builder: &mut NetlistBuilder,
) -> Result<(), NetlistError> {
    let label = scanner.label().to_string();
    let mut declared: Option<usize> = None;
    let mut current: Option<(String, usize, Vec<CellId>)> = None;
    let mut nets_read = 0usize;

    let flush = |current: &mut Option<(String, usize, Vec<CellId>)>,
                 builder: &mut NetlistBuilder,
                 line: usize|
     -> Result<(), NetlistError> {
        if let Some((name, degree, pins)) = current.take() {
            if pins.len() != degree {
                return Err(NetlistError::syntax(
                    ParseContext::new(&label, line),
                    format!("net `{name}` declared degree {degree} but has {} pins", pins.len()),
                ));
            }
            builder.add_net(name, pins);
        }
        Ok(())
    };

    while let Some((i, raw)) = scanner.next_line()? {
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        if let Some(n) = header_value(line, "NumNets") {
            declared = Some(n);
            continue;
        }
        if header_value(line, "NumPins").is_some() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("NetDegree") {
            flush(&mut current, builder, i)?;
            let rest = rest.trim_start().strip_prefix(':').ok_or_else(|| {
                NetlistError::syntax(ParseContext::new(&label, i), "expected `:` after NetDegree")
            })?;
            let mut toks = rest.split_whitespace();
            let degree: usize = parse_num(toks.next(), &label, i, "net degree")?;
            let name = toks.next().map(str::to_string).unwrap_or_else(|| format!("net{nets_read}"));
            current = Some((name, degree, Vec::with_capacity(degree)));
            nets_read += 1;
            continue;
        }
        // A pin line: `<node> <I|O|B> [: xoff yoff]`.
        let (name_tok, _) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let cell = *names.get(name_tok).ok_or_else(|| NetlistError::UnknownCell {
            name: name_tok.to_string(),
            context: Some(ParseContext::new(&label, i)),
        })?;
        match &mut current {
            Some((_, _, pins)) => pins.push(cell),
            None => {
                return Err(NetlistError::syntax(
                    ParseContext::new(&label, i),
                    "pin line before any NetDegree record",
                ))
            }
        }
    }
    // A record still open at EOF (mid-record truncation) is caught here:
    // its pin count cannot match the declared degree unless the file ended
    // exactly at a record boundary.
    flush(&mut current, builder, scanner.line_no())?;
    if let Some(n) = declared {
        if n != nets_read {
            return Err(NetlistError::CountMismatch {
                what: "nets".into(),
                declared: n,
                found: nets_read,
            });
        }
    }
    Ok(())
}

fn parse_pl(
    text: &str,
    names: &HashMap<String, CellId>,
    fixed: &mut [bool],
    num_cells: usize,
) -> Result<Vec<(f64, f64)>, NetlistError> {
    let label = "<pl>";
    let mut pos = vec![(0.0, 0.0); num_cells];
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        let mut toks = line.split_whitespace();
        let name = toks.next().unwrap();
        let x = parse_f64(toks.next(), label, i + 1, "x coordinate")?;
        let y = parse_f64(toks.next(), label, i + 1, "y coordinate")?;
        let cell = *names.get(name).ok_or_else(|| NetlistError::UnknownCell {
            name: name.to_string(),
            context: Some(ParseContext::new(label, i + 1)),
        })?;
        pos[cell.index()] = (x, y);
        if line.contains("/FIXED") {
            fixed[cell.index()] = true;
        }
    }
    Ok(pos)
}

fn parse_scl(text: &str) -> Result<Vec<Row>, NetlistError> {
    let label = "<scl>";
    let mut rows = Vec::new();
    let mut in_row = false;
    let mut y = 0.0;
    let mut height = 0.0;
    let mut site_width = 1.0;
    let mut x = 0.0;
    let mut num_sites = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("corerow") {
            in_row = true;
            continue;
        }
        if lower.starts_with("end") {
            if in_row {
                rows.push(Row { y, height, x, num_sites, site_width });
            }
            in_row = false;
            continue;
        }
        if !in_row {
            continue;
        }
        let grab = |key: &str| -> Option<&str> {
            let pos = lower.find(key)?;
            line[pos + key.len()..].trim_start().strip_prefix(':').map(str::trim_start)
        };
        if let Some(v) = grab("coordinate") {
            y = parse_f64(v.split_whitespace().next(), label, i + 1, "row coordinate")?;
        }
        if let Some(v) = grab("height") {
            height = parse_f64(v.split_whitespace().next(), label, i + 1, "row height")?;
        }
        if let Some(v) = grab("sitewidth") {
            site_width = parse_f64(v.split_whitespace().next(), label, i + 1, "site width")?;
        }
        if let Some(v) = grab("subroworigin") {
            x = parse_f64(v.split_whitespace().next(), label, i + 1, "subrow origin")?;
            if let Some(n) = lower.find("numsites") {
                let rest = line[n + "numsites".len()..].trim_start();
                let rest = rest.strip_prefix(':').map(str::trim_start).unwrap_or(rest);
                num_sites = parse_num(rest.split_whitespace().next(), label, i + 1, "numsites")?;
            }
        }
    }
    Ok(rows)
}

fn parse_num(
    tok: Option<&str>,
    label: &str,
    line: usize,
    what: &str,
) -> Result<usize, NetlistError> {
    let tok = tok.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(label, line), format!("missing {what}"))
    })?;
    tok.parse().map_err(|_| {
        NetlistError::syntax(ParseContext::new(label, line), format!("invalid {what} `{tok}`"))
    })
}

fn parse_f64(tok: Option<&str>, label: &str, line: usize, what: &str) -> Result<f64, NetlistError> {
    let tok = tok.ok_or_else(|| {
        NetlistError::syntax(ParseContext::new(label, line), format!("missing {what}"))
    })?;
    tok.parse().map_err(|_| {
        NetlistError::syntax(ParseContext::new(label, line), format!("invalid {what} `{tok}`"))
    })
}

/// Writes a design to `dir` as `<name>.aux/.nodes/.nets/.pl/.scl`.
///
/// Useful for exporting synthetic circuits so that external placers can
/// consume them.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on I/O failure.
pub fn write_design(
    design: &BookshelfDesign,
    dir: impl AsRef<Path>,
    name: &str,
) -> Result<(), NetlistError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let nl = &design.netlist;

    let mut nodes = String::new();
    let _ = writeln!(nodes, "UCLA nodes 1.0");
    let _ = writeln!(nodes, "NumNodes : {}", nl.num_cells());
    let num_term = design.fixed.iter().filter(|&&f| f).count();
    let _ = writeln!(nodes, "NumTerminals : {num_term}");
    for cell in nl.cells() {
        let i = cell.index();
        let term = if design.fixed[i] { " terminal" } else { "" };
        let _ = writeln!(
            nodes,
            "  {} {} {}{}",
            node_name(nl, cell),
            design.widths[i],
            design.heights[i],
            term
        );
    }
    std::fs::write(dir.join(format!("{name}.nodes")), nodes)?;

    let mut nets = String::new();
    let _ = writeln!(nets, "UCLA nets 1.0");
    let _ = writeln!(nets, "NumNets : {}", nl.num_nets());
    let _ = writeln!(nets, "NumPins : {}", nl.num_pins());
    for net in nl.nets() {
        let nname = if nl.net_name(net).is_empty() {
            format!("n{}", net.index())
        } else {
            nl.net_name(net).to_string()
        };
        let _ = writeln!(nets, "NetDegree : {} {}", nl.net_degree(net), nname);
        for &cell in nl.net_cells(net) {
            let _ = writeln!(nets, "  {} B : 0 0", node_name(nl, cell));
        }
    }
    std::fs::write(dir.join(format!("{name}.nets")), nets)?;

    if let Some(pos) = &design.positions {
        let mut pl = String::new();
        let _ = writeln!(pl, "UCLA pl 1.0");
        for cell in nl.cells() {
            let (x, y) = pos[cell.index()];
            let fix = if design.fixed[cell.index()] { " /FIXED" } else { "" };
            let _ = writeln!(pl, "{} {} {} : N{}", node_name(nl, cell), x, y, fix);
        }
        std::fs::write(dir.join(format!("{name}.pl")), pl)?;
    }

    if !design.rows.is_empty() {
        let mut scl = String::new();
        let _ = writeln!(scl, "UCLA scl 1.0");
        let _ = writeln!(scl, "NumRows : {}", design.rows.len());
        for row in &design.rows {
            let _ = writeln!(scl, "CoreRow Horizontal");
            let _ = writeln!(scl, "  Coordinate : {}", row.y);
            let _ = writeln!(scl, "  Height : {}", row.height);
            let _ = writeln!(scl, "  Sitewidth : {}", row.site_width);
            let _ = writeln!(scl, "  SubrowOrigin : {} NumSites : {}", row.x, row.num_sites);
            let _ = writeln!(scl, "End");
        }
        std::fs::write(dir.join(format!("{name}.scl")), scl)?;
    }

    let mut aux = format!("RowBasedPlacement : {name}.nodes {name}.nets");
    if design.positions.is_some() {
        let _ = write!(aux, " {name}.pl");
    }
    if !design.rows.is_empty() {
        let _ = write!(aux, " {name}.scl");
    }
    aux.push('\n');
    std::fs::write(dir.join(format!("{name}.aux")), aux)?;
    Ok(())
}

fn node_name(nl: &Netlist, cell: CellId) -> String {
    let n = nl.cell_name(cell);
    if n.is_empty() {
        format!("o{}", cell.index())
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: &str = "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n  a 2 1\n  b 3 1\n  p0 1 1 terminal\n";
    const NETS: &str = "UCLA nets 1.0\nNumNets : 2\nNumPins : 5\nNetDegree : 3 sig\n  a I : 0.5 0\n  b O : -0.5 0\n  p0 I\nNetDegree : 2\n  a O : 0 0\n  b I : 0 0\n";
    const PL: &str = "UCLA pl 1.0\na 10 20 : N\nb 30 40 : N\np0 0 0 : N /FIXED\n";
    const SCL: &str = "UCLA scl 1.0\nNumRows : 2\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 12\n  Sitewidth : 1\n  SubrowOrigin : 0 NumSites : 100\nEnd\nCoreRow Horizontal\n  Coordinate : 12\n  Height : 12\n  Sitewidth : 1\n  SubrowOrigin : 0 NumSites : 100\nEnd\n";

    #[test]
    fn full_design_parses() {
        let d = parse_parts(NODES, NETS, Some(PL), Some(SCL)).unwrap();
        assert_eq!(d.netlist.num_cells(), 3);
        assert_eq!(d.netlist.num_nets(), 2);
        assert_eq!(d.netlist.num_pins(), 5);
        let a = d.netlist.find_cell("a").unwrap();
        assert_eq!(d.netlist.cell_area(a), 2.0);
        assert_eq!(d.positions.as_ref().unwrap()[a.index()], (10.0, 20.0));
        let p0 = d.netlist.find_cell("p0").unwrap();
        assert!(d.fixed[p0.index()]);
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[1].y, 12.0);
        assert_eq!(d.rows[0].num_sites, 100);
        d.netlist.validate().unwrap();
    }

    #[test]
    fn unnamed_net_gets_default_name() {
        let d = parse_parts(NODES, NETS, None, None).unwrap();
        assert_eq!(d.netlist.net_name(crate::NetId::new(0)), "sig");
        assert_eq!(d.netlist.net_name(crate::NetId::new(1)), "net1");
    }

    #[test]
    fn core_bounds_from_rows() {
        let d = parse_parts(NODES, NETS, Some(PL), Some(SCL)).unwrap();
        let (x0, y0, x1, y1) = d.core_bounds().unwrap();
        assert_eq!((x0, y0, x1, y1), (0.0, 0.0, 100.0, 24.0));
    }

    #[test]
    fn core_bounds_from_positions_when_no_rows() {
        let d = parse_parts(NODES, NETS, Some(PL), None).unwrap();
        let (x0, y0, x1, y1) = d.core_bounds().unwrap();
        assert_eq!((x0, y0), (0.0, 0.0));
        assert_eq!((x1, y1), (30.0, 40.0));
    }

    #[test]
    fn node_count_mismatch() {
        let bad = "UCLA nodes 1.0\nNumNodes : 5\n a 1 1\n";
        let err = parse_parts(bad, "UCLA nets 1.0\nNumNets : 0\n", None, None).unwrap_err();
        assert!(matches!(err, NetlistError::CountMismatch { .. }));
    }

    #[test]
    fn unknown_cell_in_net() {
        let bad_nets = "NumNets : 1\nNetDegree : 1 x\n zz I\n";
        let err = parse_parts(NODES, bad_nets, None, None).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownCell { .. }));
    }

    #[test]
    fn degree_mismatch_in_net() {
        let bad_nets = "NumNets : 1\nNetDegree : 3 x\n a I\n b I\n";
        let err = parse_parts(NODES, bad_nets, None, None).unwrap_err();
        assert!(err.to_string().contains("declared degree 3"));
    }

    #[test]
    fn pin_before_netdegree() {
        let bad_nets = "NumNets : 1\n a I\n";
        let err = parse_parts(NODES, bad_nets, None, None).unwrap_err();
        assert!(err.to_string().contains("before any NetDegree"));
    }

    #[test]
    fn duplicate_node_name() {
        let bad = "NumNodes : 2\n a 1 1\n a 1 1\n";
        let err = parse_parts(bad, "NumNets : 0\n", None, None).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    fn write_and_read_roundtrip() {
        let d = parse_parts(NODES, NETS, Some(PL), Some(SCL)).unwrap();
        let dir = std::env::temp_dir().join("gtl_bookshelf_test");
        write_design(&d, &dir, "t").unwrap();
        let again = read_aux(dir.join("t.aux")).unwrap();
        assert_eq!(again.netlist.num_cells(), 3);
        assert_eq!(again.netlist.num_nets(), 2);
        assert_eq!(again.netlist.num_pins(), 5);
        assert_eq!(again.rows.len(), 2);
        let p0 = again.netlist.find_cell("p0").unwrap();
        assert!(again.fixed[p0.index()]);
        assert_eq!(again.positions.as_ref().unwrap()[p0.index()], (0.0, 0.0));
    }
}
