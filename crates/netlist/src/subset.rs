//! Cell subsets and their connectivity statistics.
//!
//! A candidate GTL is just a subset of cells; this module provides the
//! [`CellSet`] container used throughout the finder (Phase III manipulates
//! candidates with union/intersection/difference, exactly as in the paper's
//! genetic-style refinement) and [`SubsetStats`], which computes the raw
//! quantities every metric in the paper is built from: the net cut `T(C)`,
//! the group size `|C|`, and the pin count of the group.

use std::collections::BTreeMap;

use crate::{CellId, Netlist};

/// A set of cells over a fixed universe `0..universe`, stored as a bitmask.
///
/// Supports the set algebra Phase III of the tangled-logic finder needs
/// (union, intersection, difference) in `O(universe/64)` words, plus
/// iteration in ascending id order.
///
/// # Example
///
/// ```
/// use gtl_netlist::{CellId, CellSet};
///
/// let mut s = CellSet::new(10);
/// s.insert(CellId::new(3));
/// s.insert(CellId::new(7));
/// let mut t = CellSet::new(10);
/// t.insert(CellId::new(7));
/// assert_eq!(s.intersection(&t).len(), 1);
/// assert_eq!(s.union(&t).len(), 2);
/// assert_eq!(s.difference(&t).iter().next(), Some(CellId::new(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl CellSet {
    /// Creates an empty set over ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self { words: vec![0; universe.div_ceil(64)], universe, len: 0 }
    }

    /// Creates a set from an iterator of cells.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`.
    pub fn from_cells(universe: usize, cells: impl IntoIterator<Item = CellId>) -> Self {
        let mut s = Self::new(universe);
        for c in cells {
            s.insert(c);
        }
        s
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of cells in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `cell` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the universe.
    #[inline]
    pub fn contains(&self, cell: CellId) -> bool {
        assert!(cell.index() < self.universe, "cell {cell} outside universe {}", self.universe);
        self.words[cell.index() / 64] >> (cell.index() % 64) & 1 == 1
    }

    /// Inserts `cell`, returning `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the universe.
    pub fn insert(&mut self, cell: CellId) -> bool {
        assert!(cell.index() < self.universe, "cell {cell} outside universe {}", self.universe);
        let w = &mut self.words[cell.index() / 64];
        let bit = 1u64 << (cell.index() % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `cell`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the universe.
    pub fn remove(&mut self, cell: CellId) -> bool {
        assert!(cell.index() < self.universe, "cell {cell} outside universe {}", self.universe);
        let w = &mut self.words[cell.index() / 64];
        let bit = 1u64 << (cell.index() % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every cell, keeping the allocation (for scratch reuse —
    /// `O(universe/64)`).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Set union `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Set intersection `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Set difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Whether `self` and `other` share no cell.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Number of cells shared with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection_len(&self, other: &Self) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Iterator over members in ascending id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects the members into a vector, ascending.
    pub fn to_vec(&self) -> Vec<CellId> {
        self.iter().collect()
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let words: Vec<u64> = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        Self { words, universe: self.universe, len }
    }
}

impl FromIterator<CellId> for CellSet {
    /// Builds a set whose universe is one past the largest id seen.
    fn from_iter<I: IntoIterator<Item = CellId>>(iter: I) -> Self {
        let cells: Vec<CellId> = iter.into_iter().collect();
        let universe = cells.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        Self::from_cells(universe, cells)
    }
}

impl Extend<CellId> for CellSet {
    fn extend<I: IntoIterator<Item = CellId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

/// Iterator over the members of a [`CellSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(CellId::new(self.word_idx * 64 + bit))
    }
}

impl<'a> IntoIterator for &'a CellSet {
    type Item = CellId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Raw connectivity statistics of a cell subset, the inputs to every GTL
/// metric in the paper.
///
/// * `size` — `|C|`, the number of cells.
/// * `cut` — `T(C)`, the number of nets with pins both inside and outside.
/// * `pins` — total pins on cells of `C` (so `A_C = pins / size`).
/// * `internal_nets` — nets entirely inside `C` (useful diagnostics).
///
/// # Example
///
/// ```
/// use gtl_netlist::{CellSet, NetlistBuilder, SubsetStats};
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// let z = b.add_cell("z", 1.0);
/// b.add_net("in", [x, y]);
/// b.add_net("out", [y, z]);
/// let nl = b.finish();
///
/// let group = CellSet::from_cells(nl.num_cells(), [x, y]);
/// let stats = SubsetStats::compute(&nl, &group);
/// assert_eq!(stats.size, 2);
/// assert_eq!(stats.cut, 1); // only "out" crosses the boundary
/// assert_eq!(stats.internal_nets, 1);
/// assert_eq!(stats.pins, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SubsetStats {
    /// Number of cells in the subset, `|C|`.
    pub size: usize,
    /// Net cut `T(C)`: nets with at least one pin inside and one outside.
    pub cut: usize,
    /// Total pins on member cells.
    pub pins: usize,
    /// Nets entirely contained in the subset.
    pub internal_nets: usize,
}

impl SubsetStats {
    /// Computes the statistics of `set` against `netlist` in
    /// `O(Σ deg(v) for v ∈ set)`.
    ///
    /// # Panics
    ///
    /// Panics if the set's universe is smaller than the netlist.
    pub fn compute(netlist: &Netlist, set: &CellSet) -> Self {
        assert!(
            set.universe() >= netlist.num_cells(),
            "set universe {} smaller than netlist {}",
            set.universe(),
            netlist.num_cells()
        );
        // BTreeMap, not HashMap: net visit order must not depend on a
        // per-process hash seed (no-unordered-iteration-in-compute).
        let mut inside: BTreeMap<crate::NetId, u32> = BTreeMap::new();
        let mut pins = 0usize;
        for cell in set.iter() {
            let nets = netlist.cell_nets(cell);
            pins += nets.len();
            for &net in nets {
                *inside.entry(net).or_insert(0) += 1;
            }
        }
        let mut cut = 0usize;
        let mut internal = 0usize;
        for (net, count) in &inside {
            if (*count as usize) < netlist.net_degree(*net) {
                cut += 1;
            } else {
                internal += 1;
            }
        }
        Self { size: set.len(), cut, pins, internal_nets: internal }
    }

    /// Average pins per cell in the subset, the paper's `A_C`.
    ///
    /// Returns `0.0` for an empty subset.
    pub fn avg_pins_per_cell(&self) -> f64 {
        if self.size == 0 {
            0.0
        } else {
            self.pins as f64 / self.size as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn insert_remove_contains() {
        let mut s = CellSet::new(130);
        assert!(s.insert(CellId::new(0)));
        assert!(s.insert(CellId::new(64)));
        assert!(s.insert(CellId::new(129)));
        assert!(!s.insert(CellId::new(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(CellId::new(129)));
        assert!(s.remove(CellId::new(64)));
        assert!(!s.remove(CellId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let s = CellSet::from_cells(200, [5, 199, 64, 63].map(CellId::new));
        let v: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(v, [5, 63, 64, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = CellSet::from_cells(100, (0..10).map(CellId::new));
        let b = CellSet::from_cells(100, (5..15).map(CellId::new));
        assert_eq!(a.union(&b).len(), 15);
        assert_eq!(a.intersection(&b).len(), 5);
        assert_eq!(a.difference(&b).len(), 5);
        assert_eq!(a.intersection_len(&b), 5);
        assert!(!a.is_disjoint(&b));
        let c = CellSet::from_cells(100, (50..60).map(CellId::new));
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn from_iterator_universe() {
        let s: CellSet = [CellId::new(3), CellId::new(10)].into_iter().collect();
        assert_eq!(s.universe(), 11);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_set() {
        let s = CellSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = CellSet::new(10);
        let b = CellSet::new(20);
        let _ = a.union(&b);
    }

    #[test]
    fn stats_all_cells_has_zero_cut() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_anonymous_cells(4);
        for i in 0..3u32 {
            b.add_anonymous_net([CellId::new(i as usize), CellId::new(i as usize + 1)]);
        }
        let nl = b.finish();
        let all = CellSet::from_cells(nl.num_cells(), nl.cells());
        let stats = SubsetStats::compute(&nl, &all);
        assert_eq!(stats.cut, 0);
        assert_eq!(stats.internal_nets, 3);
        assert_eq!(stats.pins, 6);
        let _ = c0;
    }

    #[test]
    fn stats_single_cell() {
        let mut b = NetlistBuilder::new();
        let x = b.add_cell("x", 1.0);
        let y = b.add_cell("y", 1.0);
        b.add_net("n", [x, y]);
        let nl = b.finish();
        let s = SubsetStats::compute(&nl, &CellSet::from_cells(2, [x]));
        assert_eq!(s.size, 1);
        assert_eq!(s.cut, 1);
        assert_eq!(s.pins, 1);
        assert!((s.avg_pins_per_cell() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extend_trait() {
        let mut s = CellSet::new(10);
        s.extend([CellId::new(1), CellId::new(2)]);
        assert_eq!(s.len(), 2);
    }

    /// Regression for the old HashMap-backed net counter: repeated
    /// computations of the same subset must be identical (the counter
    /// is now a BTreeMap, so no per-process hash seed is involved).
    #[test]
    fn stats_are_deterministic_across_runs() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..6).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(3) {
            b.add_anonymous_net([w[0], w[1], w[2]]);
        }
        let nl = b.finish();
        let mut set = CellSet::new(nl.num_cells());
        set.extend([cells[0], cells[1], cells[2], cells[3]]);
        let reference = SubsetStats::compute(&nl, &set);
        for _ in 0..5 {
            assert_eq!(SubsetStats::compute(&nl, &set), reference);
        }
    }
}
