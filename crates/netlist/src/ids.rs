//! Strongly typed indices for cells and nets.

use std::fmt;

/// Index of a cell (logic gate, macro, or pad) in a [`Netlist`].
///
/// `CellId` is a dense index: a netlist with `n` cells uses ids `0..n`.
/// The newtype prevents accidentally mixing cell and net indices.
///
/// [`Netlist`]: crate::Netlist
///
/// # Example
///
/// ```
/// use gtl_netlist::CellId;
///
/// let id = CellId::new(7);
/// assert_eq!(id.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellId(u32);

/// Index of a net (hyperedge) in a [`Netlist`].
///
/// Like [`CellId`], this is a dense index in `0..num_nets`.
///
/// [`Netlist`]: crate::Netlist
///
/// # Example
///
/// ```
/// use gtl_netlist::NetId;
///
/// let id = NetId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(u32);

macro_rules! impl_id {
    ($ty:ident, $tag:literal) => {
        impl $ty {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect(concat!($tag, " index overflows u32")))
            }

            /// Returns the raw index as `usize`.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u32 {
            #[inline]
            fn from(id: $ty) -> u32 {
                id.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_id!(CellId, "c");
impl_id!(NetId, "n");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_roundtrip() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(CellId::from(42u32), id);
        assert_eq!(u32::from(id), 42);
    }

    #[test]
    fn net_id_roundtrip() {
        let id = NetId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(NetId::from(9u32), id);
    }

    #[test]
    fn ids_format_with_tag() {
        assert_eq!(format!("{}", CellId::new(3)), "c3");
        assert_eq!(format!("{:?}", NetId::new(5)), "n5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert!(NetId::new(0) < NetId::new(10));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn cell_id_overflow_panics() {
        let _ = CellId::new(usize::MAX);
    }
}
