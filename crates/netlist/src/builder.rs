//! Incremental construction of [`Netlist`]s.

use crate::{CellId, NetId, Netlist};

/// Builder that accumulates cells and nets and produces a CSR [`Netlist`].
///
/// Pins are deduplicated per net: if the same cell is listed twice on one
/// net (common in raw synthesized netlists where a gate has two input pins
/// tied to the same signal), it is recorded once. Duplicate *names* are
/// permitted — netlist formats that require unique names enforce that in
/// their parsers.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::with_capacity(2, 1);
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// b.add_net("clk", [x, y, x]); // duplicate pin on x is deduped
/// let nl = b.finish();
/// assert_eq!(nl.num_pins(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    cell_names: Vec<String>,
    cell_areas: Vec<f64>,
    net_names: Vec<String>,
    net_offsets: Vec<u32>,
    net_pins: Vec<CellId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self { net_offsets: vec![0], ..Self::default() }
    }

    /// Creates a builder with capacity reserved for `cells` cells and
    /// `nets` nets.
    pub fn with_capacity(cells: usize, nets: usize) -> Self {
        Self {
            cell_names: Vec::with_capacity(cells),
            cell_areas: Vec::with_capacity(cells),
            net_names: Vec::with_capacity(nets),
            net_offsets: {
                let mut v = Vec::with_capacity(nets + 1);
                v.push(0);
                v
            },
            net_pins: Vec::new(),
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cell_areas.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Adds a named cell with the given area and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not finite and positive.
    pub fn add_cell(&mut self, name: impl Into<String>, area: f64) -> CellId {
        assert!(area.is_finite() && area > 0.0, "cell area must be finite and positive");
        let id = CellId::new(self.cell_areas.len());
        self.cell_names.push(name.into());
        self.cell_areas.push(area);
        id
    }

    /// Adds one anonymous cell with the given area.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not finite and positive.
    pub fn add_anonymous_cell(&mut self, area: f64) -> CellId {
        self.add_cell(String::new(), area)
    }

    /// Adds `count` anonymous unit-area cells and returns the id of the
    /// first; ids are contiguous.
    ///
    /// This is the fast path used by the synthetic-workload generators,
    /// which create hundreds of thousands of cells.
    pub fn add_anonymous_cells(&mut self, count: usize) -> CellId {
        let first = CellId::new(self.cell_areas.len());
        self.cell_names.resize(self.cell_names.len() + count, String::new());
        self.cell_areas.resize(self.cell_areas.len() + count, 1.0);
        first
    }

    /// Adds a named net connecting `pins` and returns its id.
    ///
    /// Duplicate pins are removed; order of first occurrence is kept.
    ///
    /// # Panics
    ///
    /// Panics if a pin references a cell that has not been added.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: impl IntoIterator<Item = CellId>,
    ) -> NetId {
        let id = NetId::new(self.net_offsets.len() - 1);
        let start = self.net_pins.len();
        for pin in pins {
            assert!(
                pin.index() < self.cell_areas.len(),
                "net pin references cell {pin} but only {} cells exist",
                self.cell_areas.len()
            );
            // Nets are short in practice (and huge nets are rarely duplicated),
            // so a linear dedup scan beats hashing for the common case.
            if !self.net_pins[start..].contains(&pin) {
                self.net_pins.push(pin);
            }
        }
        self.net_offsets.push(self.net_pins.len() as u32);
        self.net_names.push(name.into());
        id
    }

    /// Adds an anonymous net connecting `pins`.
    ///
    /// # Panics
    ///
    /// Panics if a pin references a cell that has not been added.
    pub fn add_anonymous_net(&mut self, pins: impl IntoIterator<Item = CellId>) -> NetId {
        self.add_net(String::new(), pins)
    }

    /// Finalizes the builder into an immutable [`Netlist`].
    ///
    /// Builds the reverse (cell → nets) CSR direction in `O(pins)`.
    pub fn finish(self) -> Netlist {
        let num_cells = self.cell_areas.len();
        let num_nets = self.net_offsets.len() - 1;

        // Counting sort of pins by cell id to build the reverse CSR.
        let mut degree = vec![0u32; num_cells];
        for pin in &self.net_pins {
            degree[pin.index()] += 1;
        }
        let mut cell_offsets = Vec::with_capacity(num_cells + 1);
        let mut acc = 0u32;
        cell_offsets.push(0);
        for d in &degree {
            acc += d;
            cell_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = cell_offsets[..num_cells].to_vec();
        let mut cell_pins = vec![NetId::default(); self.net_pins.len()];
        for net in 0..num_nets {
            let lo = self.net_offsets[net] as usize;
            let hi = self.net_offsets[net + 1] as usize;
            for pin in &self.net_pins[lo..hi] {
                let slot = cursor[pin.index()];
                cell_pins[slot as usize] = NetId::new(net);
                cursor[pin.index()] = slot + 1;
            }
        }

        Netlist {
            cell_names: self.cell_names,
            net_names: self.net_names,
            cell_areas: self.cell_areas,
            net_offsets: self.net_offsets,
            net_pins: self.net_pins,
            cell_offsets,
            cell_pins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_pins() {
        let mut b = NetlistBuilder::new();
        let x = b.add_cell("x", 1.0);
        let y = b.add_cell("y", 1.0);
        let n = b.add_net("n", [x, y, x, y, x]);
        let nl = b.finish();
        assert_eq!(nl.net_cells(n), [x, y]);
    }

    #[test]
    fn anonymous_cells_are_contiguous() {
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(10);
        assert_eq!(first.index(), 0);
        assert_eq!(b.num_cells(), 10);
        let next = b.add_cell("named", 2.0);
        assert_eq!(next.index(), 10);
    }

    #[test]
    fn reverse_csr_is_sorted_by_net() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_anonymous_cells(3);
        let c1 = CellId::new(1);
        let c2 = CellId::new(2);
        b.add_anonymous_net([c0, c1]);
        b.add_anonymous_net([c1, c2]);
        b.add_anonymous_net([c0, c2]);
        let nl = b.finish();
        assert_eq!(nl.cell_nets(c0), [NetId::new(0), NetId::new(2)]);
        assert_eq!(nl.cell_nets(c1), [NetId::new(0), NetId::new(1)]);
        nl.validate().unwrap();
    }

    #[test]
    fn empty_net_allowed() {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(1);
        let n = b.add_anonymous_net([]);
        let nl = b.finish();
        assert_eq!(nl.net_degree(n), 0);
        nl.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "references cell")]
    fn dangling_pin_panics() {
        let mut b = NetlistBuilder::new();
        b.add_net("bad", [CellId::new(0)]);
    }

    #[test]
    fn capacity_constructor() {
        let b = NetlistBuilder::with_capacity(100, 50);
        assert_eq!(b.num_cells(), 0);
        assert_eq!(b.num_nets(), 0);
    }
}
