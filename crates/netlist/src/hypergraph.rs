//! The immutable CSR hypergraph at the heart of the crate.

use crate::{CellId, NetId, NetlistError};

/// An immutable hypergraph netlist.
///
/// Cells (vertices) are connected by nets (hyperedges). Both directions of
/// the incidence relation are stored in compressed sparse row (CSR) form so
/// that `cell → nets` and `net → cells` lookups are contiguous slices.
///
/// A *pin* is one `(cell, net)` incidence; pins are deduplicated, so a cell
/// appears at most once on a net. The paper's quantities map directly:
/// `A(G)` is [`Netlist::avg_pins_per_cell`], the degree of a cell is its pin
/// count, and the degree of a net is the number of cells it connects.
///
/// Construct with [`NetlistBuilder`](crate::NetlistBuilder); the structure
/// itself is immutable except for cell areas (which the cell-inflation flow
/// of the paper's §5.1.3 mutates via [`Netlist::set_cell_area`]).
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 1.0);
/// let c = b.add_cell("b", 1.0);
/// let n = b.add_net("n", [a, c]);
/// let nl = b.finish();
/// assert_eq!(nl.net_cells(n), [a, c]);
/// assert_eq!(nl.cell_nets(a), [n]);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    pub(crate) cell_names: Vec<String>,
    pub(crate) net_names: Vec<String>,
    pub(crate) cell_areas: Vec<f64>,
    /// CSR offsets into `net_pins` (length `num_nets + 1`).
    pub(crate) net_offsets: Vec<u32>,
    /// Concatenated pin lists of every net.
    pub(crate) net_pins: Vec<CellId>,
    /// CSR offsets into `cell_pins` (length `num_cells + 1`).
    pub(crate) cell_offsets: Vec<u32>,
    /// Concatenated net lists of every cell.
    pub(crate) cell_pins: Vec<NetId>,
}

impl Netlist {
    /// Number of cells in the netlist.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cell_areas.len()
    }

    /// Number of nets in the netlist.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Total number of pins (cell–net incidences).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Average pins per cell, the paper's `A(G)`.
    ///
    /// Returns `0.0` for an empty netlist.
    #[inline]
    pub fn avg_pins_per_cell(&self) -> f64 {
        if self.num_cells() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_cells() as f64
        }
    }

    /// Cells connected by `net`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of bounds.
    #[inline]
    pub fn net_cells(&self, net: NetId) -> &[CellId] {
        let lo = self.net_offsets[net.index()] as usize;
        let hi = self.net_offsets[net.index() + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// Nets incident to `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn cell_nets(&self, cell: CellId) -> &[NetId] {
        let lo = self.cell_offsets[cell.index()] as usize;
        let hi = self.cell_offsets[cell.index() + 1] as usize;
        &self.cell_pins[lo..hi]
    }

    /// Number of pins on `cell` (its hypergraph degree).
    #[inline]
    pub fn cell_degree(&self, cell: CellId) -> usize {
        self.cell_nets(cell).len()
    }

    /// Number of pins on `net` (its hyperedge cardinality `|e|`).
    #[inline]
    pub fn net_degree(&self, net: NetId) -> usize {
        self.net_cells(net).len()
    }

    /// Area of `cell` in site units.
    #[inline]
    pub fn cell_area(&self, cell: CellId) -> f64 {
        self.cell_areas[cell.index()]
    }

    /// Overwrites the area of `cell` (used by the cell-inflation flow).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds or `area` is not finite and positive.
    pub fn set_cell_area(&mut self, cell: CellId, area: f64) {
        assert!(area.is_finite() && area > 0.0, "cell area must be finite and positive");
        self.cell_areas[cell.index()] = area;
    }

    /// Total cell area of the design.
    pub fn total_cell_area(&self) -> f64 {
        self.cell_areas.iter().sum()
    }

    /// Name of `cell`; empty string if the cell was added unnamed.
    #[inline]
    pub fn cell_name(&self, cell: CellId) -> &str {
        &self.cell_names[cell.index()]
    }

    /// Name of `net`; empty string if the net was added unnamed.
    #[inline]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks up a cell by name with a linear scan.
    ///
    /// Intended for tests and small designs; build an external map for bulk
    /// lookups.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names.iter().position(|n| n == name).map(CellId::new)
    }

    /// Iterator over all cell ids, `0..num_cells`.
    pub fn cells(&self) -> impl ExactSizeIterator<Item = CellId> + Clone {
        (0..self.num_cells() as u32).map(CellId::from)
    }

    /// Iterator over all net ids, `0..num_nets`.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.num_nets() as u32).map(NetId::from)
    }

    /// Checks a cell id is in range, returning it or an error.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::IndexOutOfBounds`] when `cell` is out of
    /// range.
    pub fn check_cell(&self, cell: CellId) -> Result<CellId, NetlistError> {
        if cell.index() < self.num_cells() {
            Ok(cell)
        } else {
            Err(NetlistError::IndexOutOfBounds {
                what: format!("cell {} of {}", cell.index(), self.num_cells()),
            })
        }
    }

    /// Structural invariant check used by tests and fuzzing.
    ///
    /// Verifies the two CSR directions are mutually consistent: every pin
    /// appears exactly once in each direction and ids are in range. Cost is
    /// `O(pins)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.cell_offsets.len() != self.num_cells() + 1 {
            return Err("cell offset table has wrong length".into());
        }
        if *self.cell_offsets.last().unwrap() as usize != self.cell_pins.len() {
            return Err("cell offsets do not cover cell_pins".into());
        }
        if *self.net_offsets.last().unwrap() as usize != self.net_pins.len() {
            return Err("net offsets do not cover net_pins".into());
        }
        if self.net_pins.len() != self.cell_pins.len() {
            return Err("pin count mismatch between directions".into());
        }
        let mut seen = std::collections::HashSet::with_capacity(self.num_pins());
        for net in self.nets() {
            for &cell in self.net_cells(net) {
                if cell.index() >= self.num_cells() {
                    return Err(format!("net {net} references out-of-range {cell}"));
                }
                if !seen.insert((cell, net)) {
                    return Err(format!("duplicate pin ({cell}, {net})"));
                }
            }
        }
        for cell in self.cells() {
            for &net in self.cell_nets(cell) {
                if net.index() >= self.num_nets() {
                    return Err(format!("cell {cell} references out-of-range {net}"));
                }
                if !seen.remove(&(cell, net)) {
                    return Err(format!("pin ({cell}, {net}) missing in net direction"));
                }
            }
        }
        if !seen.is_empty() {
            return Err(format!("{} pins missing in cell direction", seen.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    fn diamond() -> crate::Netlist {
        // a--n0--b, a--n1--c, {b,c,d} on n2
        let mut b = NetlistBuilder::new();
        let ca = b.add_cell("a", 1.0);
        let cb = b.add_cell("b", 1.0);
        let cc = b.add_cell("c", 1.5);
        let cd = b.add_cell("d", 2.0);
        b.add_net("n0", [ca, cb]);
        b.add_net("n1", [ca, cc]);
        b.add_net("n2", [cb, cc, cd]);
        b.finish()
    }

    #[test]
    fn basic_counts() {
        let nl = diamond();
        assert_eq!(nl.num_cells(), 4);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 7);
        assert!((nl.avg_pins_per_cell() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn csr_directions_agree() {
        let nl = diamond();
        nl.validate().unwrap();
    }

    #[test]
    fn degrees() {
        let nl = diamond();
        let a = nl.find_cell("a").unwrap();
        let d = nl.find_cell("d").unwrap();
        assert_eq!(nl.cell_degree(a), 2);
        assert_eq!(nl.cell_degree(d), 1);
        assert_eq!(nl.net_degree(crate::NetId::new(2)), 3);
    }

    #[test]
    fn areas_mutable() {
        let mut nl = diamond();
        let d = nl.find_cell("d").unwrap();
        assert_eq!(nl.cell_area(d), 2.0);
        nl.set_cell_area(d, 8.0);
        assert_eq!(nl.cell_area(d), 8.0);
        assert!((nl.total_cell_area() - (1.0 + 1.0 + 1.5 + 8.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn negative_area_rejected() {
        let mut nl = diamond();
        nl.set_cell_area(crate::CellId::new(0), -1.0);
    }

    #[test]
    fn names_and_lookup() {
        let nl = diamond();
        assert_eq!(nl.cell_name(crate::CellId::new(2)), "c");
        assert_eq!(nl.net_name(crate::NetId::new(1)), "n1");
        assert!(nl.find_cell("zz").is_none());
    }

    #[test]
    fn check_cell_bounds() {
        let nl = diamond();
        assert!(nl.check_cell(crate::CellId::new(3)).is_ok());
        assert!(nl.check_cell(crate::CellId::new(4)).is_err());
    }

    #[test]
    fn empty_netlist() {
        let nl = NetlistBuilder::new().finish();
        assert_eq!(nl.num_cells(), 0);
        assert_eq!(nl.num_nets(), 0);
        assert_eq!(nl.avg_pins_per_cell(), 0.0);
        nl.validate().unwrap();
    }
}
