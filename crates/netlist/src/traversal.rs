//! Hypergraph traversal utilities: BFS distances, connected components,
//! and neighborhood expansion.
//!
//! Cells are adjacent when they share a net. These helpers back the
//! degree/separation baseline metric, the (K,L)-connectivity checks, and
//! several generators/tests that need to reason about reachability.

use std::collections::VecDeque;

use crate::{CellId, CellSet, Netlist};

/// Connected components of the cell-adjacency graph.
///
/// # Example
///
/// ```
/// use gtl_netlist::{traversal, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 1.0);
/// let c = b.add_cell("b", 1.0);
/// b.add_cell("loner", 1.0);
/// b.add_net("n", [a, c]);
/// let nl = b.finish();
/// let comps = traversal::connected_components(&nl);
/// assert_eq!(comps.num_components(), 2);
/// assert_eq!(comps.component_of(a), comps.component_of(c));
/// ```
#[derive(Debug, Clone)]
pub struct Components {
    labels: Vec<u32>,
    sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component index of `cell` (dense ids `0..num_components`).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn component_of(&self, cell: CellId) -> usize {
        self.labels[cell.index()] as usize
    }

    /// Number of cells in component `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn component_size(&self, index: usize) -> usize {
        self.sizes[index]
    }

    /// Size of the largest component (0 for an empty netlist).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Labels every cell with its connected component in `O(pins)`.
pub fn connected_components(netlist: &Netlist) -> Components {
    let n = netlist.num_cells();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in netlist.cells() {
        if labels[start.index()] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        labels[start.index()] = comp;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &net in netlist.cell_nets(u) {
                for &v in netlist.net_cells(net) {
                    if labels[v.index()] == u32::MAX {
                        labels[v.index()] = comp;
                        queue.push_back(v);
                    }
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// BFS hop distances from `source` to every cell (`u32::MAX` =
/// unreachable). One hop = one shared net.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_distances(netlist: &Netlist, source: CellId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; netlist.num_cells()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &net in netlist.cell_nets(u) {
            for &v in netlist.net_cells(net) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = d + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// All cells within `radius` hops of `source` (including the source),
/// as a [`CellSet`] — the "logical neighborhood" used when expanding
/// candidate regions.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn neighborhood(netlist: &Netlist, source: CellId, radius: u32) -> CellSet {
    let mut set = CellSet::new(netlist.num_cells());
    let mut dist = vec![u32::MAX; netlist.num_cells()];
    dist[source.index()] = 0;
    set.insert(source);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        if d == radius {
            continue;
        }
        for &net in netlist.cell_nets(u) {
            for &v in netlist.net_cells(net) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = d + 1;
                    set.insert(v);
                    queue.push_back(v);
                }
            }
        }
    }
    set
}

/// Whether the subgraph induced by `cells` is connected (cells connected
/// through nets whose pins may include outside cells still count as
/// adjacent only if both endpoints are in `cells`).
///
/// Returns `true` for empty or singleton sets.
pub fn is_subset_connected(netlist: &Netlist, cells: &CellSet) -> bool {
    let Some(start) = cells.iter().next() else { return true };
    let mut seen = CellSet::new(netlist.num_cells());
    seen.insert(start);
    let mut queue = VecDeque::new();
    queue.push_back(start);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &net in netlist.cell_nets(u) {
            for &v in netlist.net_cells(net) {
                if cells.contains(v) && seen.insert(v) {
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    count == cells.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    /// Two triangles and an isolated cell.
    fn fixture() -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..7).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for base in [0, 3] {
            b.add_anonymous_net([cells[base], cells[base + 1]]);
            b.add_anonymous_net([cells[base + 1], cells[base + 2]]);
            b.add_anonymous_net([cells[base], cells[base + 2]]);
        }
        (b.finish(), cells)
    }

    #[test]
    fn components_found() {
        let (nl, cells) = fixture();
        let comps = connected_components(&nl);
        assert_eq!(comps.num_components(), 3);
        assert_eq!(comps.component_of(cells[0]), comps.component_of(cells[2]));
        assert_ne!(comps.component_of(cells[0]), comps.component_of(cells[3]));
        assert_eq!(comps.largest(), 3);
        assert_eq!(comps.component_size(comps.component_of(cells[6])), 1);
    }

    #[test]
    fn bfs_distances_on_chain() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..5).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        let nl = b.finish();
        let d = bfs_distances(&nl, cells[0]);
        assert_eq!(d, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let (nl, cells) = fixture();
        let d = bfs_distances(&nl, cells[0]);
        assert_eq!(d[cells[6].index()], u32::MAX);
        assert_eq!(d[cells[1].index()], 1);
    }

    #[test]
    fn neighborhood_radius() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..6).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        let nl = b.finish();
        let hood = neighborhood(&nl, cells[0], 2);
        assert_eq!(hood.len(), 3); // c0, c1, c2
        assert!(hood.contains(cells[2]));
        assert!(!hood.contains(cells[3]));
        let zero = neighborhood(&nl, cells[0], 0);
        assert_eq!(zero.len(), 1);
    }

    #[test]
    fn subset_connectivity() {
        let (nl, cells) = fixture();
        let connected = CellSet::from_cells(nl.num_cells(), cells[0..3].iter().copied());
        assert!(is_subset_connected(&nl, &connected));
        // First triangle + isolated cell: disconnected as a subset.
        let mut broken = connected.clone();
        broken.insert(cells[6]);
        assert!(!is_subset_connected(&nl, &broken));
        // Two cells from different triangles.
        let split = CellSet::from_cells(nl.num_cells(), [cells[0], cells[4]]);
        assert!(!is_subset_connected(&nl, &split));
        assert!(is_subset_connected(&nl, &CellSet::new(nl.num_cells())));
    }
}
