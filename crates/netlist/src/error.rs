//! Error types shared by the netlist parsers and builders.

use std::error::Error;
use std::fmt;

/// Location information attached to parse errors.
///
/// # Example
///
/// ```
/// use gtl_netlist::ParseContext;
///
/// let ctx = ParseContext::new("design.nets", 12);
/// assert_eq!(ctx.to_string(), "design.nets:12");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseContext {
    file: String,
    line: usize,
}

impl ParseContext {
    /// Creates a context for `file` at 1-based `line`.
    pub fn new(file: impl Into<String>, line: usize) -> Self {
        Self { file: file.into(), line }
    }

    /// File (or stream label) the error occurred in.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// 1-based line number of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Error type for netlist construction and parsing.
///
/// All fallible public functions in this crate return
/// `Result<_, NetlistError>`.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// An I/O error while reading or writing a netlist file.
    Io(std::io::Error),
    /// A syntax error at a known location.
    Syntax {
        /// Where the error occurred.
        context: ParseContext,
        /// What went wrong.
        message: String,
    },
    /// A reference to a cell name that was never declared.
    UnknownCell {
        /// The undeclared name.
        name: String,
        /// Where the reference occurred, if known.
        context: Option<ParseContext>,
    },
    /// A cell or net name declared more than once.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// An id out of range for the netlist being built or queried.
    IndexOutOfBounds {
        /// Description of the offending index (e.g. `"cell 10 of 5"`).
        what: String,
    },
    /// The input declared one count but supplied another.
    CountMismatch {
        /// What was being counted (e.g. `"nets"`).
        what: String,
        /// The declared count.
        declared: usize,
        /// The count actually found.
        found: usize,
    },
}

impl NetlistError {
    pub(crate) fn syntax(context: ParseContext, message: impl Into<String>) -> Self {
        Self::Syntax { context, message: message.into() }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Syntax { context, message } => write!(f, "{context}: {message}"),
            Self::UnknownCell { name, context: Some(ctx) } => {
                write!(f, "{ctx}: unknown cell `{name}`")
            }
            Self::UnknownCell { name, context: None } => write!(f, "unknown cell `{name}`"),
            Self::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            Self::IndexOutOfBounds { what } => write!(f, "index out of bounds: {what}"),
            Self::CountMismatch { what, declared, found } => {
                write!(f, "{what}: declared {declared} but found {found}")
            }
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let ctx = ParseContext::new("a.nets", 3);
        let err = NetlistError::syntax(ctx, "bad token");
        assert_eq!(err.to_string(), "a.nets:3: bad token");

        let err = NetlistError::UnknownCell { name: "u42".into(), context: None };
        assert_eq!(err.to_string(), "unknown cell `u42`");

        let err = NetlistError::CountMismatch { what: "nets".into(), declared: 2, found: 3 };
        assert_eq!(err.to_string(), "nets: declared 2 but found 3");
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = NetlistError::from(io);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
