//! Hypergraph netlist substrate for tangled-logic detection.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace: a compact, immutable [`Netlist`] hypergraph (cells connected by
//! multi-pin nets, stored in CSR form), a [`NetlistBuilder`] for incremental
//! construction, design statistics ([`NetlistStats`]), and hand-written
//! parsers/writers for the file formats the DAC 2010 paper's evaluation
//! relies on:
//!
//! * [`bookshelf`] — the ISPD 2005/2006 placement-benchmark format
//!   (`.aux`, `.nodes`, `.nets`, `.pl`, `.scl`),
//! * [`verilog`] — a structural gate-level Verilog subset, the realistic
//!   ingest path for synthesized netlists,
//! * [`hgr`] — hMETIS-style plain hypergraph files, convenient for test
//!   fixtures and interchange.
//!
//! The Bookshelf and hgr readers stream through the bounded line buffer
//! in [`stream`], so multi-million-cell designs parse in memory
//! proportional to the netlist, never the file.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new();
//! let a = b.add_cell("a", 1.0);
//! let c = b.add_cell("c", 1.0);
//! let d = b.add_cell("d", 2.0);
//! b.add_net("n1", [a, c]);
//! b.add_net("n2", [a, c, d]);
//! let netlist = b.finish();
//!
//! assert_eq!(netlist.num_cells(), 3);
//! assert_eq!(netlist.num_nets(), 2);
//! assert_eq!(netlist.num_pins(), 5);
//! assert_eq!(netlist.cell_degree(a), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod hypergraph;
mod ids;
mod stats;
mod subset;

pub mod bookshelf;
pub mod hgr;
pub mod stream;
pub mod traversal;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use error::{NetlistError, ParseContext};
pub use hypergraph::Netlist;
pub use ids::{CellId, NetId};
pub use stats::{DegreeHistogram, NetlistStats};
pub use subset::{CellSet, SubsetStats};
