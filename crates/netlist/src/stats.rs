//! Whole-design statistics.

use crate::Netlist;

/// Histogram of degrees (cell pin counts or net cardinalities).
///
/// # Example
///
/// ```
/// use gtl_netlist::DegreeHistogram;
///
/// let h = DegreeHistogram::from_degrees([2, 2, 3, 5]);
/// assert_eq!(h.count(2), 2);
/// assert_eq!(h.max_degree(), 5);
/// assert!((h.mean() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegreeHistogram {
    counts: Vec<usize>,
    total: usize,
    sum: usize,
}

impl DegreeHistogram {
    /// Builds a histogram from an iterator of degrees.
    pub fn from_degrees(degrees: impl IntoIterator<Item = usize>) -> Self {
        let mut h = Self::default();
        for d in degrees {
            if d >= h.counts.len() {
                h.counts.resize(d + 1, 0);
            }
            h.counts[d] += 1;
            h.total += 1;
            h.sum += d;
        }
        h
    }

    /// Number of items with exactly `degree`.
    pub fn count(&self, degree: usize) -> usize {
        self.counts.get(degree).copied().unwrap_or(0)
    }

    /// Largest degree observed (0 when empty).
    pub fn max_degree(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Number of items recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Mean degree (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Iterator over `(degree, count)` pairs with non-zero count.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(d, &c)| (d, c))
    }
}

/// Summary statistics of a whole design.
///
/// Gathers the global quantities the GTL metrics depend on — most
/// importantly the average pin count `A(G)` that normalizes the
/// `nGTL-Score` — plus degree distributions used by the synthetic workload
/// generators to match published benchmark shapes.
///
/// # Example
///
/// ```
/// use gtl_netlist::{NetlistBuilder, NetlistStats};
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// b.add_net("n", [x, y]);
/// let nl = b.finish();
/// let stats = NetlistStats::compute(&nl);
/// assert_eq!(stats.num_cells, 2);
/// assert!((stats.avg_pins_per_cell - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetlistStats {
    /// Number of cells, `|V|`.
    pub num_cells: usize,
    /// Number of nets, `|E|`.
    pub num_nets: usize,
    /// Total pins.
    pub num_pins: usize,
    /// Average pins per cell, `A(G)`.
    pub avg_pins_per_cell: f64,
    /// Average net cardinality.
    pub avg_net_degree: f64,
    /// Distribution of cell degrees.
    pub cell_degrees: DegreeHistogram,
    /// Distribution of net cardinalities.
    pub net_degrees: DegreeHistogram,
    /// Total cell area.
    pub total_area: f64,
}

impl NetlistStats {
    /// Computes the statistics of `netlist` in `O(cells + nets)`.
    pub fn compute(netlist: &Netlist) -> Self {
        let cell_degrees =
            DegreeHistogram::from_degrees(netlist.cells().map(|c| netlist.cell_degree(c)));
        let net_degrees =
            DegreeHistogram::from_degrees(netlist.nets().map(|n| netlist.net_degree(n)));
        Self {
            num_cells: netlist.num_cells(),
            num_nets: netlist.num_nets(),
            num_pins: netlist.num_pins(),
            avg_pins_per_cell: netlist.avg_pins_per_cell(),
            avg_net_degree: net_degrees.mean(),
            cell_degrees,
            net_degrees,
            total_area: netlist.total_cell_area(),
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} pins={} A(G)={:.3} avg|e|={:.3} area={:.1}",
            self.num_cells,
            self.num_nets,
            self.num_pins,
            self.avg_pins_per_cell,
            self.avg_net_degree,
            self.total_area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn histogram_basics() {
        let h = DegreeHistogram::from_degrees([1, 1, 1, 4]);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_degree(), 4);
        assert!((h.mean() - 1.75).abs() < 1e-12);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, [(1, 3), (4, 1)]);
    }

    #[test]
    fn empty_histogram() {
        let h = DegreeHistogram::from_degrees([]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_degree(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn stats_of_small_design() {
        let mut b = NetlistBuilder::new();
        let c = b.add_anonymous_cells(3);
        b.add_anonymous_net([c, crate::CellId::new(1)]);
        b.add_anonymous_net([c, crate::CellId::new(1), crate::CellId::new(2)]);
        let nl = b.finish();
        let s = NetlistStats::compute(&nl);
        assert_eq!(s.num_cells, 3);
        assert_eq!(s.num_nets, 2);
        assert_eq!(s.num_pins, 5);
        assert!((s.avg_pins_per_cell - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_net_degree - 2.5).abs() < 1e-12);
        assert_eq!(s.net_degrees.count(2), 1);
        assert_eq!(s.net_degrees.count(3), 1);
        assert!((s.total_area - 3.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("|V|=3"));
    }
}
