//! Structural gate-level Verilog subset parser.
//!
//! Synthesized netlists are handed from synthesis to place-and-route as
//! structural Verilog; this module ingests the common subset emitted by
//! synthesis tools:
//!
//! * one `module ... endmodule` per file,
//! * `input` / `output` / `inout` / `wire` declarations, including simple
//!   bus ranges (`wire [7:0] d;` expands to `d[7]` … `d[0]`),
//! * gate instantiations with named (`.A(n1)`) or positional (`(n1, n2)`)
//!   connections,
//! * `//` line comments and `/* */` block comments.
//!
//! Each instance becomes a cell; each declared signal becomes a net. Cell
//! areas come from a [`CellLibrary`] keyed by the instantiated cell type, so
//! the pin-density effects the paper's `GTL-SD` metric captures (NAND4/OAI/
//! AOI complex gates having 4–5 pins versus 3 for AND2/OR2) survive the
//! translation.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::verilog;
//!
//! let src = r#"
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w;
//!   NAND2 u1 (.A(a), .B(b), .Y(w));
//!   INV   u2 (.A(w), .Y(y));
//! endmodule
//! "#;
//! let module = verilog::parse_str(src)?;
//! assert_eq!(module.name, "top");
//! assert_eq!(module.netlist.num_cells(), 2);
//! assert_eq!(module.netlist.num_nets(), 4); // a, b, y, w
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::collections::HashMap;
use std::path::Path;

use crate::{CellId, Netlist, NetlistBuilder, NetlistError, ParseContext};

/// Cell-type → (area, expected pin count) table used when translating
/// instances to cells.
///
/// # Example
///
/// ```
/// use gtl_netlist::verilog::CellLibrary;
///
/// let lib = CellLibrary::generic();
/// assert!(lib.area("NAND4") > lib.area("INV"));
/// assert_eq!(lib.area("UNKNOWN_CELL"), 1.0); // default
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    areas: HashMap<String, f64>,
    default_area: f64,
}

impl CellLibrary {
    /// An empty library where every cell type gets `default_area`.
    pub fn with_default_area(default_area: f64) -> Self {
        Self { areas: HashMap::new(), default_area }
    }

    /// A generic standard-cell library with plausible relative areas for
    /// the gate types the paper mentions (simple AND2/OR2 versus complex
    /// NAND4/OAI/AOI cells).
    pub fn generic() -> Self {
        let mut lib = Self::with_default_area(1.0);
        for (name, area) in [
            ("INV", 0.5),
            ("BUF", 0.75),
            ("NAND2", 1.0),
            ("NOR2", 1.0),
            ("AND2", 1.25),
            ("OR2", 1.25),
            ("XOR2", 1.75),
            ("XNOR2", 1.75),
            ("NAND3", 1.5),
            ("NOR3", 1.5),
            ("NAND4", 2.0),
            ("NOR4", 2.0),
            ("AOI21", 1.5),
            ("OAI21", 1.5),
            ("AOI22", 2.0),
            ("OAI22", 2.0),
            ("MUX2", 2.25),
            ("MUX4", 4.0),
            ("DFF", 4.5),
            ("FA", 4.0),
            ("HA", 2.5),
        ] {
            lib.set_area(name, area);
        }
        lib
    }

    /// Sets the area for a cell type (case-insensitive lookup).
    pub fn set_area(&mut self, cell_type: &str, area: f64) {
        self.areas.insert(cell_type.to_ascii_uppercase(), area);
    }

    /// Area for `cell_type`, falling back to the default.
    pub fn area(&self, cell_type: &str) -> f64 {
        self.areas.get(&cell_type.to_ascii_uppercase()).copied().unwrap_or(self.default_area)
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::generic()
    }
}

/// A parsed structural Verilog module.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The connectivity hypergraph (instances × signals).
    pub netlist: Netlist,
    /// Cell type of each instance, indexed by cell id.
    pub cell_types: Vec<String>,
    /// Ids (into the netlist's nets) of the module's ports.
    pub port_nets: Vec<crate::NetId>,
}

/// Parses a module from source text with the [generic](CellLibrary::generic)
/// library.
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] on malformed source and
/// [`NetlistError::UnknownCell`] when an instance references an undeclared
/// signal (implicit wires are *not* created — synthesized netlists declare
/// everything, and silent implicit nets hide typos).
pub fn parse_str(source: &str) -> Result<Module, NetlistError> {
    parse_with_library(source, &CellLibrary::generic(), "<string>")
}

/// Reads a module from a `.v` file with the generic library.
///
/// # Errors
///
/// Same as [`parse_str`], plus [`NetlistError::Io`].
pub fn read(path: impl AsRef<Path>) -> Result<Module, NetlistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    parse_with_library(&text, &CellLibrary::generic(), &path.display().to_string())
}

/// Parses a module using a caller-provided [`CellLibrary`].
///
/// # Errors
///
/// Same as [`parse_str`].
pub fn parse_with_library(
    source: &str,
    library: &CellLibrary,
    label: &str,
) -> Result<Module, NetlistError> {
    let tokens = tokenize(source, label)?;
    Parser { tokens, pos: 0, label, library }.parse_module()
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    text: String,
    line: usize,
}

fn tokenize(source: &str, label: &str) -> Result<Vec<Token>, NetlistError> {
    let mut tokens = Vec::new();
    let mut chars = source.char_indices().peekable();
    let mut line = 1usize;
    let bytes = source.as_bytes();
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                chars.next();
                let mut prev = ' ';
                let mut closed = false;
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                    }
                    if prev == '*' && c2 == '/' {
                        closed = true;
                        break;
                    }
                    prev = c2;
                }
                if !closed {
                    return Err(NetlistError::syntax(
                        ParseContext::new(label, line),
                        "unterminated block comment",
                    ));
                }
            }
            '(' | ')' | ',' | ';' | '.' | '[' | ']' | ':' | '=' | '+' | '-' | '*' | '&' | '|'
            | '^' | '~' | '!' | '?' | '<' | '>' | '{' | '}' | '\'' | '#' => {
                tokens.push(Token { text: c.to_string(), line });
            }
            c if c.is_alphanumeric() || c == '_' || c == '\\' || c == '$' => {
                let start = i;
                let mut end = i + c.len_utf8();
                // Escaped identifiers (`\foo.bar `) run to the next whitespace.
                if c == '\\' {
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_whitespace() {
                            break;
                        }
                        end = j + c2.len_utf8();
                        chars.next();
                    }
                } else {
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || c2 == '_' || c2 == '$' {
                            end = j + c2.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                tokens.push(Token { text: source[start..end].to_string(), line });
            }
            other => {
                return Err(NetlistError::syntax(
                    ParseContext::new(label, line),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    label: &'a str,
    library: &'a CellLibrary,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, line: usize, msg: impl Into<String>) -> NetlistError {
        NetlistError::syntax(ParseContext::new(self.label, line), msg)
    }

    fn expect(&mut self, text: &str) -> Result<Token, NetlistError> {
        let line = self.peek().map(|t| t.line).unwrap_or(0);
        match self.next() {
            Some(t) if t.text == text => Ok(t),
            Some(t) => Err(self.err(t.line, format!("expected `{text}`, found `{}`", t.text))),
            None => Err(self.err(line, format!("expected `{text}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<Token, NetlistError> {
        let line = self.peek().map(|t| t.line).unwrap_or(0);
        match self.next() {
            Some(t)
                if t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_' || c == '\\') =>
            {
                Ok(t)
            }
            Some(t) => Err(self.err(t.line, format!("expected identifier, found `{}`", t.text))),
            None => Err(self.err(line, "expected identifier, found end of input")),
        }
    }

    fn parse_module(mut self) -> Result<Module, NetlistError> {
        // Skip anything before `module` (attributes, timescale remnants).
        while let Some(t) = self.peek() {
            if t.text == "module" {
                break;
            }
            self.pos += 1;
        }
        self.expect("module")?;
        let name = self.expect_ident()?.text;

        // Skip the port list `( ... )` — signal directions come from the
        // declarations inside the body.
        if self.peek().map(|t| t.text.as_str()) == Some("(") {
            let mut depth = 0usize;
            loop {
                let t = self.next().ok_or_else(|| self.err(0, "unterminated module port list"))?;
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.expect(";")?;

        let mut nets: HashMap<String, crate::NetId> = HashMap::new();
        let mut port_names: Vec<String> = Vec::new();
        let mut builder = NetlistBuilder::new();
        let mut net_pins: Vec<Vec<CellId>> = Vec::new();
        let mut net_order: Vec<String> = Vec::new();
        let mut cell_types: Vec<String> = Vec::new();

        let declare = |name: String,
                       nets: &mut HashMap<String, crate::NetId>,
                       net_pins: &mut Vec<Vec<CellId>>,
                       net_order: &mut Vec<String>| {
            let next = crate::NetId::new(net_pins.len());
            nets.entry(name.clone()).or_insert_with(|| {
                net_pins.push(Vec::new());
                net_order.push(name);
                next
            });
        };

        loop {
            let t = self.next().ok_or_else(|| self.err(0, "missing `endmodule`"))?;
            match t.text.as_str() {
                "endmodule" => break,
                kw @ ("input" | "output" | "inout" | "wire" | "reg") => {
                    let names = self.parse_signal_decl(t.line)?;
                    for n in names {
                        if kw != "wire" && kw != "reg" {
                            port_names.push(n.clone());
                        }
                        declare(n, &mut nets, &mut net_pins, &mut net_order);
                    }
                }
                "assign" => {
                    // Skip continuous assigns up to `;` — they carry no cell.
                    while let Some(t2) = self.next() {
                        if t2.text == ";" {
                            break;
                        }
                    }
                }
                _ => {
                    // Instance: `TYPE name ( connections ) ;`
                    let cell_type = t.text;
                    let inst_line = t.line;
                    let inst_name = self.expect_ident()?.text;
                    let pins = self.parse_connections(inst_line, &nets)?;
                    let cell = builder.add_cell(inst_name, self.library.area(&cell_type));
                    cell_types.push(cell_type);
                    for net in pins {
                        if !net_pins[net.index()].contains(&cell) {
                            net_pins[net.index()].push(cell);
                        }
                    }
                }
            }
        }

        for (i, pins) in net_pins.into_iter().enumerate() {
            builder.add_net(net_order[i].clone(), pins);
        }
        let netlist = builder.finish();
        let port_nets = port_names.iter().filter_map(|n| nets.get(n).copied()).collect();
        Ok(Module { name, netlist, cell_types, port_nets })
    }

    /// Parses the rest of `input [7:0] a, b;` after the keyword.
    fn parse_signal_decl(&mut self, line: usize) -> Result<Vec<String>, NetlistError> {
        let mut range: Option<(i64, i64)> = None;
        if self.peek().map(|t| t.text.as_str()) == Some("[") {
            self.next();
            let hi: i64 = self.parse_int()?;
            self.expect(":")?;
            let lo: i64 = self.parse_int()?;
            self.expect("]")?;
            range = Some((hi, lo));
        }
        let mut names = Vec::new();
        loop {
            let t = self.expect_ident()?;
            match range {
                Some((hi, lo)) => {
                    let (lo, hi) = (lo.min(hi), lo.max(hi));
                    for bit in lo..=hi {
                        names.push(format!("{}[{}]", t.text, bit));
                    }
                }
                None => names.push(t.text),
            }
            match self.next() {
                Some(t2) if t2.text == "," => continue,
                Some(t2) if t2.text == ";" => break,
                Some(t2) => {
                    return Err(
                        self.err(t2.line, format!("expected `,` or `;`, found `{}`", t2.text))
                    )
                }
                None => return Err(self.err(line, "unterminated signal declaration")),
            }
        }
        Ok(names)
    }

    fn parse_int(&mut self) -> Result<i64, NetlistError> {
        let t = self.next().ok_or_else(|| self.err(0, "expected number"))?;
        t.text.parse().map_err(|_| self.err(t.line, format!("expected number, found `{}`", t.text)))
    }

    /// Parses `( .A(n1), .B(n2) )` or `( n1, n2 )` followed by `;`,
    /// returning the connected nets.
    fn parse_connections(
        &mut self,
        line: usize,
        nets: &HashMap<String, crate::NetId>,
    ) -> Result<Vec<crate::NetId>, NetlistError> {
        self.expect("(")?;
        let mut out = Vec::new();
        if self.peek().map(|t| t.text.as_str()) == Some(")") {
            self.next();
            self.expect(";")?;
            return Ok(out);
        }
        loop {
            let t = self.next().ok_or_else(|| self.err(line, "unterminated connection list"))?;
            let signal = if t.text == "." {
                let _pin = self.expect_ident()?;
                self.expect("(")?;
                // Unconnected pin: `.A()`.
                if self.peek().map(|x| x.text.as_str()) == Some(")") {
                    self.next();
                    None
                } else {
                    let sig = self.parse_signal_ref()?;
                    self.expect(")")?;
                    Some(sig)
                }
            } else {
                self.pos -= 1;
                Some(self.parse_signal_ref()?)
            };
            if let Some((name, sig_line)) = signal {
                let id = nets.get(&name).copied().ok_or(NetlistError::UnknownCell {
                    name,
                    context: Some(ParseContext::new(self.label, sig_line)),
                })?;
                out.push(id);
            }
            match self.next() {
                Some(t2) if t2.text == "," => continue,
                Some(t2) if t2.text == ")" => break,
                Some(t2) => {
                    return Err(
                        self.err(t2.line, format!("expected `,` or `)`, found `{}`", t2.text))
                    )
                }
                None => return Err(self.err(line, "unterminated connection list")),
            }
        }
        self.expect(";")?;
        Ok(out)
    }

    /// Parses `name` or `name[3]`, returning the flattened signal name.
    fn parse_signal_ref(&mut self) -> Result<(String, usize), NetlistError> {
        let t = self.expect_ident()?;
        let line = t.line;
        let mut name = t.text;
        if self.peek().map(|x| x.text.as_str()) == Some("[") {
            self.next();
            let bit = self.parse_int()?;
            self.expect("]")?;
            name = format!("{name}[{bit}]");
        }
        Ok((name, line))
    }
}

/// Serializes a netlist as a structural Verilog module.
///
/// Every net becomes a `wire`; every cell becomes an instance whose type
/// is taken from `cell_types` (when given, e.g. from a parsed [`Module`])
/// or synthesized as `GEN<degree>`. Pins are named `P0, P1, …` in the
/// cell's net order, so `parse_str(&to_module_string(...))` round-trips
/// connectivity exactly.
///
/// # Panics
///
/// Panics if `cell_types` is given but shorter than the cell count.
pub fn to_module_string(
    netlist: &Netlist,
    module_name: &str,
    cell_types: Option<&[String]>,
) -> String {
    use std::fmt::Write as _;
    if let Some(t) = cell_types {
        assert!(t.len() >= netlist.num_cells(), "cell_types shorter than netlist");
    }
    let mut out = String::new();
    let _ = writeln!(out, "module {module_name} ();");
    let net_name = |i: usize| -> String {
        let n = netlist.net_name(crate::NetId::new(i));
        if n.is_empty() || !n.chars().next().unwrap().is_alphabetic() || n.contains(['[', ']', '.'])
        {
            format!("n{i}")
        } else {
            n.to_string()
        }
    };
    for i in 0..netlist.num_nets() {
        let _ = writeln!(out, "  wire {};", net_name(i));
    }
    for cell in netlist.cells() {
        let ty = match cell_types {
            Some(t) if !t[cell.index()].is_empty() => t[cell.index()].clone(),
            _ => format!("GEN{}", netlist.cell_degree(cell)),
        };
        let raw = netlist.cell_name(cell);
        let inst = if raw.is_empty() || raw.contains(['[', ']', '.']) {
            format!("u{}", cell.index())
        } else {
            raw.to_string()
        };
        let pins: Vec<String> = netlist
            .cell_nets(cell)
            .iter()
            .enumerate()
            .map(|(k, net)| format!(".P{k}({})", net_name(net.index())))
            .collect();
        let _ = writeln!(out, "  {ty} {inst} ({});", pins.join(", "));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = r#"
// a trivial pair of gates
module top (a, b, y);
  input a, b;
  output y;
  wire w;
  NAND2 u1 (.A(a), .B(b), .Y(w));
  INV   u2 (.A(w), .Y(y));
endmodule
"#;

    #[test]
    fn parses_simple_module() {
        let m = parse_str(SIMPLE).unwrap();
        assert_eq!(m.name, "top");
        assert_eq!(m.netlist.num_cells(), 2);
        assert_eq!(m.netlist.num_nets(), 4);
        assert_eq!(m.cell_types, ["NAND2", "INV"]);
        assert_eq!(m.port_nets.len(), 3);
        m.netlist.validate().unwrap();
        let w = m.netlist.find_cell("u1").unwrap();
        assert_eq!(m.netlist.cell_degree(w), 3);
    }

    #[test]
    fn positional_connections() {
        let src = "module m (x); input x; wire q; BUF b1 (x, q); endmodule";
        let m = parse_str(src).unwrap();
        assert_eq!(m.netlist.num_cells(), 1);
        let b1 = m.netlist.find_cell("b1").unwrap();
        assert_eq!(m.netlist.cell_degree(b1), 2);
    }

    #[test]
    fn bus_declarations_expand() {
        let src = "module m (); wire [3:0] d; AND2 g (.A(d[0]), .B(d[3]), .Y(d[1])); endmodule";
        let m = parse_str(src).unwrap();
        assert_eq!(m.netlist.num_nets(), 4);
        let g = m.netlist.find_cell("g").unwrap();
        assert_eq!(m.netlist.cell_degree(g), 3);
    }

    #[test]
    fn block_comments_and_assign_skipped() {
        let src = "module m (); /* multi\nline */ wire a, b; assign a = b; INV i0 (.A(a), .Y(b)); endmodule";
        let m = parse_str(src).unwrap();
        assert_eq!(m.netlist.num_cells(), 1);
    }

    #[test]
    fn unknown_signal_is_error() {
        let src = "module m (); wire a; INV i0 (.A(a), .Y(zz)); endmodule";
        let err = parse_str(src).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownCell { .. }));
    }

    #[test]
    fn unconnected_pin_allowed() {
        let src = "module m (); wire a; DFF f (.D(a), .Q()); endmodule";
        let m = parse_str(src).unwrap();
        let f = m.netlist.find_cell("f").unwrap();
        assert_eq!(m.netlist.cell_degree(f), 1);
    }

    #[test]
    fn missing_endmodule_is_error() {
        let err = parse_str("module m (); wire a;").unwrap_err();
        assert!(err.to_string().contains("endmodule"));
    }

    #[test]
    fn unterminated_comment_is_error() {
        let err = parse_str("module m (); /* oops").unwrap_err();
        assert!(err.to_string().contains("unterminated block comment"));
    }

    #[test]
    fn library_areas_apply() {
        let m = parse_str(SIMPLE).unwrap();
        let u1 = m.netlist.find_cell("u1").unwrap();
        let u2 = m.netlist.find_cell("u2").unwrap();
        assert_eq!(m.netlist.cell_area(u1), 1.0); // NAND2
        assert_eq!(m.netlist.cell_area(u2), 0.5); // INV
    }

    #[test]
    fn duplicate_pin_same_net_deduped() {
        let src = "module m (); wire a, y; AND2 g (.A(a), .B(a), .Y(y)); endmodule";
        let m = parse_str(src).unwrap();
        let g = m.netlist.find_cell("g").unwrap();
        assert_eq!(m.netlist.cell_degree(g), 2);
    }

    #[test]
    fn writer_roundtrips_connectivity() {
        let m = parse_str(SIMPLE).unwrap();
        let text = to_module_string(&m.netlist, "top", Some(&m.cell_types));
        let again = parse_str(&text).unwrap();
        assert_eq!(again.netlist.num_cells(), m.netlist.num_cells());
        assert_eq!(again.netlist.num_pins(), m.netlist.num_pins());
        // Nets with ≥1 pin survive; per-cell degrees match.
        for cell in m.netlist.cells() {
            assert_eq!(again.netlist.cell_degree(cell), m.netlist.cell_degree(cell));
        }
        assert_eq!(again.cell_types, m.cell_types);
    }

    #[test]
    fn writer_generates_types_when_unknown() {
        let mut b = crate::NetlistBuilder::new();
        let x = b.add_cell("x", 1.0);
        let y = b.add_cell("y", 1.0);
        b.add_anonymous_net([x, y]);
        let nl = b.finish();
        let text = to_module_string(&nl, "m", None);
        assert!(text.contains("GEN1 x"), "{text}");
        let again = parse_str(&text).unwrap();
        assert_eq!(again.netlist.num_pins(), 2);
    }

    #[test]
    fn custom_library() {
        let mut lib = CellLibrary::with_default_area(3.0);
        lib.set_area("WEIRD", 9.0);
        let src = "module m (); wire a; WEIRD w0 (.X(a)); OTHER o0 (.X(a)); endmodule";
        let m = parse_with_library(src, &lib, "<t>").unwrap();
        assert_eq!(m.netlist.cell_area(m.netlist.find_cell("w0").unwrap()), 9.0);
        assert_eq!(m.netlist.cell_area(m.netlist.find_cell("o0").unwrap()), 3.0);
    }
}
