//! Streaming-parser equivalence and hostile-input coverage.
//!
//! The bounded [`gtl_netlist::stream::LineScanner`] must make no
//! observable difference: parsing through a reader that dribbles bytes in
//! tiny chunks must produce byte-identical netlists to parsing the whole
//! buffer, and truncated/oversized/malformed inputs must fail with the
//! same structured errors instead of panicking or ballooning memory.

use std::io::Read;

use gtl_netlist::{bookshelf, hgr, NetlistError};
use proptest::prelude::*;
use proptest::strategy::Just;

/// A reader that returns at most `chunk` bytes per `read` call, forcing
/// the scanner through its refill/compact path on every line.
struct ChunkReader<'a> {
    data: &'a [u8],
    chunk: usize,
}

impl Read for ChunkReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.data.len().min(self.chunk).min(buf.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

fn hgr_text(num_cells: usize, nets: &[Vec<usize>]) -> String {
    let mut text = format!("{} {}\n", nets.len(), num_cells);
    for pins in nets {
        let toks: Vec<String> = pins.iter().map(|p| (p + 1).to_string()).collect();
        text.push_str(&toks.join(" "));
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_hgr_parse_matches_whole_buffer(
        (num_cells, nets) in (2usize..40).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(
                proptest::collection::vec(0..n, 1..6usize), 0..30))
        }),
        chunk in 1usize..8,
    ) {
        let text = hgr_text(num_cells, &nets);
        let whole = hgr::parse_str(&text).unwrap();
        let streamed =
            hgr::parse(ChunkReader { data: text.as_bytes(), chunk }, "<chunked>").unwrap();
        // Byte-level equivalence: re-serializing both gives identical text.
        prop_assert_eq!(hgr::to_string(&streamed), hgr::to_string(&whole));
        prop_assert_eq!(streamed.num_pins(), whole.num_pins());
    }
}

#[test]
fn chunked_bookshelf_matches_in_memory_parse() {
    // A design big enough to cross several scanner refills at chunk=3.
    let n = 120usize;
    let mut nodes = format!("UCLA nodes 1.0\nNumNodes : {n}\nNumTerminals : 1\n");
    for i in 0..n {
        let term = if i == 0 { " terminal" } else { "" };
        nodes.push_str(&format!("  c{i} {} {}{}\n", 1 + i % 3, 1 + i % 2, term));
    }
    let mut nets = String::from("UCLA nets 1.0\n");
    let mut records = String::new();
    let mut num_pins = 0usize;
    let num_nets = n / 2;
    for i in 0..num_nets {
        let a = i;
        let b = (i * 7 + 1) % n;
        let c = (i * 13 + 5) % n;
        records.push_str(&format!("NetDegree : 3 net{i}\n  c{a} I : 0 0\n  c{b} O\n  c{c} B\n"));
        num_pins += 3;
    }
    nets.push_str(&format!("NumNets : {num_nets}\nNumPins : {num_pins}\n"));
    nets.push_str(&records);

    let whole = bookshelf::parse_parts(&nodes, &nets, None, None).unwrap();

    // Round-trip through real files so the `read_aux` streaming path runs.
    let dir = std::env::temp_dir().join("gtl_stream_bookshelf_test");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("d.nodes"), &nodes).unwrap();
    std::fs::write(dir.join("d.nets"), &nets).unwrap();
    std::fs::write(dir.join("d.aux"), "RowBasedPlacement : d.nodes d.nets\n").unwrap();
    let streamed = bookshelf::read_aux(dir.join("d.aux")).unwrap();

    assert_eq!(streamed.netlist.num_cells(), whole.netlist.num_cells());
    assert_eq!(streamed.netlist.num_nets(), whole.netlist.num_nets());
    assert_eq!(streamed.netlist.num_pins(), whole.netlist.num_pins());
    assert_eq!(hgr::to_string(&streamed.netlist), hgr::to_string(&whole.netlist));
    assert_eq!(streamed.fixed, whole.fixed);
}

#[test]
fn truncated_hgr_fails_cleanly() {
    // Header promises more nets than the (cut-off) body delivers.
    let text = "5 10\n1 2\n3 4\n";
    let err = hgr::parse(ChunkReader { data: text.as_bytes(), chunk: 2 }, "<trunc>").unwrap_err();
    assert!(matches!(err, NetlistError::CountMismatch { declared: 5, found: 2, .. }));
}

#[test]
fn mid_record_eof_in_bookshelf_nets_fails_cleanly() {
    // The stream ends inside a NetDegree record: 3 pins declared, 1 seen.
    let nodes = "NumNodes : 2\n a 1 1\n b 1 1\n";
    let nets = "NumNets : 1\nNetDegree : 3 cut\n a I";
    let err = bookshelf::parse_parts(nodes, nets, None, None).unwrap_err();
    assert!(err.to_string().contains("declared degree 3 but has 1"), "{err}");
}

#[test]
fn oversized_hgr_line_is_capped() {
    let mut text = String::from("1 200\n");
    for i in 1..=200 {
        text.push_str(&format!("{i} "));
    }
    text.push('\n');
    let err = hgr::parse_with(ChunkReader { data: text.as_bytes(), chunk: 5 }, "<capped>", 64)
        .unwrap_err();
    assert!(err.to_string().contains("maximum length of 64 bytes"), "{err}");
}
