//! The deterministic response cache: an LRU map from request-line bytes
//! to response bytes under a configurable byte budget.
//!
//! The workspace's service responses are **pure functions of the request
//! line** (the execution layer makes every compute byte-identical for any
//! worker count), which makes them trivially cacheable: serving a stored
//! response is indistinguishable from recomputing it. That is the cache's
//! hard invariant — *transparency* — and it holds by construction: a key
//! is exactly the bytes the handler would receive (plus, since API v4,
//! the session-generation prefix the dispatcher prepends for
//! session-addressed requests), a value is exactly the bytes the handler
//! produced for them, and entries are never mutated. Eviction order may
//! depend on request interleaving across connections, but evictions only
//! ever cost a recompute, never change bytes (property-tested here and
//! end-to-end in `gtl-api`).
//!
//! Only responses the handler declares cacheable are stored — runtime
//! metrics snapshots, for example, are *not* pure functions of the
//! request bytes and bypass the cache.
//!
//! Recency bookkeeping lives in [`crate::lru::RecencyList`], shared with
//! the session registry ([`crate::registry`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::lru::RecencyList;

/// Approximate per-entry bookkeeping cost (hash-map slot, list node,
/// refcounts) charged against the byte budget on top of key + value
/// length, so a budget of N bytes bounds real memory near N.
const ENTRY_OVERHEAD: usize = 96;

/// Counters describing cache behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller computed the response).
    pub misses: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// Entries stored (refreshes of an existing key do not count).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged (keys + values + per-entry overhead).
    pub bytes: u64,
    /// The configured byte budget (`0` = caching disabled).
    pub capacity_bytes: u64,
}

/// A thread-safe LRU response cache with a byte budget.
///
/// A budget of `0` disables caching entirely: every lookup misses without
/// touching a lock, and nothing is ever stored.
///
/// # Example
///
/// ```
/// use gtl_runtime::ResponseCache;
///
/// let cache = ResponseCache::new(4096);
/// assert!(cache.get(b"req-a").is_none());
/// cache.insert(b"req-a", "resp-a");
/// assert_eq!(cache.get(b"req-a").as_deref(), Some("resp-a"));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct ResponseCache {
    /// `None` when the budget is zero (caching disabled).
    inner: Option<Mutex<Lru>>,
}

impl ResponseCache {
    /// Creates a cache bounded by `budget_bytes` (`0` disables caching).
    pub fn new(budget_bytes: usize) -> Self {
        let inner = (budget_bytes > 0).then(|| {
            Mutex::new(Lru {
                budget: budget_bytes,
                map: HashMap::new(),
                entries: Vec::new(),
                list: RecencyList::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
            })
        });
        Self { inner }
    }

    /// Whether caching is enabled (budget > 0).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Looks up the response stored for `key`, promoting it to
    /// most-recently-used on a hit.
    pub fn get(&self, key: &[u8]) -> Option<Arc<str>> {
        let inner = self.inner.as_ref()?;
        let mut lru = inner.lock().unwrap_or_else(|e| e.into_inner());
        match lru.map.get(key).copied() {
            Some(index) => {
                lru.hits += 1;
                lru.list.touch(index);
                // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
                Some(Arc::clone(&lru.entries[index].as_ref().expect("linked entry").value))
            }
            None => {
                lru.misses += 1;
                None
            }
        }
    }

    /// Stores `value` for `key`, evicting least-recently-used entries
    /// until the budget holds. A key already present is only promoted
    /// (the stored bytes are necessarily identical — responses are pure
    /// functions of their request); an entry larger than the whole budget
    /// is not stored.
    pub fn insert(&self, key: &[u8], value: &str) {
        let Some(inner) = self.inner.as_ref() else { return };
        let mut lru = inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(index) = lru.map.get(key).copied() {
            // A concurrent miss on another lane computed the same bytes.
            debug_assert_eq!(
                // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry; debug builds only")
                &*lru.entries[index].as_ref().expect("linked entry").value,
                value,
                "cache transparency violated: same key, different response bytes"
            );
            lru.list.touch(index);
            return;
        }
        let cost = key.len() + value.len() + ENTRY_OVERHEAD;
        if cost > lru.budget {
            return;
        }
        while lru.bytes + cost > lru.budget {
            lru.evict_coldest();
        }
        let key: Arc<[u8]> = Arc::from(key);
        let entry = Entry { key: Arc::clone(&key), value: Arc::from(value), cost };
        let index = lru.list.allocate();
        if index == lru.entries.len() {
            lru.entries.push(Some(entry));
        } else {
            lru.entries[index] = Some(entry);
        }
        lru.map.insert(key, index);
        lru.bytes += cost;
        lru.insertions += 1;
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        match self.inner.as_ref() {
            None => CacheStats::default(),
            Some(inner) => {
                let lru = inner.lock().unwrap_or_else(|e| e.into_inner());
                CacheStats {
                    hits: lru.hits,
                    misses: lru.misses,
                    evictions: lru.evictions,
                    insertions: lru.insertions,
                    entries: lru.map.len() as u64,
                    bytes: lru.bytes as u64,
                    capacity_bytes: lru.budget as u64,
                }
            }
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: Arc<[u8]>,
    value: Arc<str>,
    cost: usize,
}

/// The locked interior: a slab of entries threaded into the shared
/// intrusive recency list (head = most recent), plus the key map.
#[derive(Debug)]
struct Lru {
    budget: usize,
    map: HashMap<Arc<[u8]>, usize>,
    entries: Vec<Option<Entry>>,
    list: RecencyList,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl Lru {
    fn evict_coldest(&mut self) {
        // gtl-lint: allow(no-panic-on-serve-path, reason = "caller holds bytes > 0, so the recency list is nonempty")
        let index = self.list.coldest().expect("evicting from an empty cache");
        self.list.release(index);
        // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
        let entry = self.entries[index].take().expect("linked entry");
        self.map.remove(&entry.key);
        self.bytes -= entry.cost;
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_stores() {
        let cache = ResponseCache::new(0);
        assert!(!cache.is_enabled());
        cache.insert(b"k", "v");
        assert!(cache.get(b"k").is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn hit_returns_exact_bytes() {
        let cache = ResponseCache::new(1 << 16);
        cache.insert(b"key-1", "response bytes \u{3b1}\u{3b2}");
        assert_eq!(cache.get(b"key-1").as_deref(), Some("response bytes \u{3b1}\u{3b2}"));
        assert!(cache.get(b"key-2").is_none());
    }

    #[test]
    fn lru_order_governs_eviction() {
        // Budget for exactly two entries of this size.
        let cost = 1 + 1 + ENTRY_OVERHEAD;
        let cache = ResponseCache::new(2 * cost);
        cache.insert(b"a", "A");
        cache.insert(b"b", "B");
        // Touch `a` so `b` is now least recently used.
        assert!(cache.get(b"a").is_some());
        cache.insert(b"c", "C");
        assert!(cache.get(b"b").is_none(), "LRU entry should have been evicted");
        assert!(cache.get(b"a").is_some());
        assert!(cache.get(b"c").is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let cache = ResponseCache::new(ENTRY_OVERHEAD + 4);
        cache.insert(b"key", "a response far larger than the whole budget");
        assert!(cache.get(b"key").is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn byte_accounting_balances_across_churn() {
        let cache = ResponseCache::new(5 * (8 + 8 + ENTRY_OVERHEAD));
        for round in 0..50u32 {
            for k in 0..8u32 {
                let key = format!("key-{k:04}");
                let value = format!("val-{k:04}");
                cache.insert(key.as_bytes(), &value);
                let _ = cache.get(format!("key-{:04}", (k + round) % 8).as_bytes());
            }
        }
        let stats = cache.stats();
        assert!(stats.entries <= 5, "{stats:?}");
        assert!(stats.bytes <= stats.capacity_bytes, "{stats:?}");
        assert_eq!(stats.insertions, stats.evictions + stats.entries, "{stats:?}");
    }

    #[test]
    fn refresh_of_existing_key_promotes_without_reinserting() {
        let cost = 1 + 1 + ENTRY_OVERHEAD;
        let cache = ResponseCache::new(2 * cost);
        cache.insert(b"a", "A");
        cache.insert(b"b", "B");
        cache.insert(b"a", "A"); // refresh: `b` becomes LRU
        cache.insert(b"c", "C");
        assert!(cache.get(b"b").is_none());
        assert!(cache.get(b"a").is_some());
        assert_eq!(cache.stats().insertions, 3);
    }

    use proptest::prelude::*;

    /// The pure "handler" the property test checks the cache against.
    fn pure_response(key: u32) -> String {
        format!("response({key})={}", u64::from(key).wrapping_mul(0x9e37_79b9))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The transparency property, simulated: for *any* access
        /// sequence and *any* budget (including budgets small enough to
        /// force constant eviction), a cache-mediated lookup always
        /// yields the bytes the pure handler produces, and the byte
        /// accounting never exceeds the budget.
        #[test]
        fn transparency_under_random_access_patterns(
            budget in 0usize..2048,
            accesses in proptest::collection::vec(0u32..24, 0..200),
        ) {
            let cache = ResponseCache::new(budget);
            for key in accesses {
                let key_bytes = format!("req-{key}");
                let expected = pure_response(key);
                let got = match cache.get(key_bytes.as_bytes()) {
                    Some(hit) => hit.to_string(),
                    None => {
                        cache.insert(key_bytes.as_bytes(), &expected);
                        expected.clone()
                    }
                };
                prop_assert_eq!(got, expected);
                let stats = cache.stats();
                prop_assert!(stats.bytes <= stats.capacity_bytes);
            }
        }
    }
}
