//! `gtl-runtime` — the bounded service runtime between the API surface
//! and the execution layer.
//!
//! `gtl-api` defines *what* the wire contracts mean; `gtl_core::exec`
//! defines *how* compute fans out deterministically. This crate is the
//! layer in between: it decides **when** request compute runs and how
//! much of it is admitted at once, without ever changing what any
//! request produces. It provides:
//!
//! * [`serve_lines`]: a pipelined line-protocol TCP server — a fixed
//!   pool of compute lanes fed by a bounded FIFO queue (backpressure
//!   instead of unbounded buffering), per-connection pipelining with a
//!   reorder buffer that preserves request order on the wire,
//!   read/idle timeouts, and a max-concurrent-connections gate;
//! * [`ResponseCache`]: a deterministic LRU response cache under a byte
//!   budget, keyed by the canonical request-line bytes (optionally
//!   extended by the handler via [`LineHandler::cache_key`], e.g. with a
//!   session generation), with the hard invariant that a hit returns
//!   exactly the bytes a fresh compute would (transparency —
//!   property-tested);
//! * [`Registry`]: a byte-budgeted store of named shared values with
//!   deterministic LRU eviction and monotonic generation stamps — the
//!   substrate for multi-netlist session serving in `gtl-api`;
//! * fair-share admission: [`LineHandler::tenant`] classifies request
//!   lines into per-tenant lanes drained in deterministic round-robin
//!   order under a per-tenant quota ([`RuntimeConfig::tenant_quota`]),
//!   so one flooding tenant backpressures itself, never its neighbors;
//! * [`MetricsSnapshot`]: observation-only counters for all of the
//!   above, served through the handler's [`RequestContext`].
//!
//! The runtime is generic over a [`LineHandler`], so it knows nothing of
//! JSON or the GTL domain; `gtl_api::serve` instantiates it with the
//! session dispatcher.
//!
//! # Determinism
//!
//! The runtime schedules; it never computes. For a deterministic handler
//! (every response a pure function of its request line), responses are
//! byte-identical for any lane count, queue depth, pipeline depth,
//! cache size — including 0 = disabled — and client interleaving. Only
//! *latency* and the metrics counters depend on the configuration.
//!
//! # Example
//!
//! ```
//! use gtl_runtime::{serve_lines, Cacheability, RuntimeConfig};
//! use std::io::{BufRead as _, BufReader, Write as _};
//!
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let config = RuntimeConfig {
//!     lanes: 2,
//!     pipeline_depth: 4,
//!     cache_bytes: 1 << 16,
//!     max_connections: Some(1),
//!     ..RuntimeConfig::default()
//! };
//! let handler = |_ctx: &gtl_runtime::RequestContext<'_>, line: &str, out: &mut String| {
//!     out.push_str("you said: ");
//!     out.push_str(line);
//!     Cacheability::Cacheable
//! };
//! std::thread::scope(|scope| {
//!     let server = scope.spawn(|| serve_lines(&listener, &config, &handler).unwrap());
//!     let mut conn = std::net::TcpStream::connect(addr).unwrap();
//!     writeln!(conn, "hello\nhello").unwrap(); // pipelined: write both first
//!     conn.shutdown(std::net::Shutdown::Write).unwrap();
//!     let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
//!     assert_eq!(lines, ["you said: hello", "you said: hello"]);
//!     let report = server.join().unwrap();
//!     // Both pipelined requests went through the bounded scheduler
//!     // (whether the second hit the cache depends on timing — the
//!     // response bytes never do).
//!     assert_eq!(report.metrics.requests, 2);
//!     assert_eq!(report.metrics.cache_hits + report.metrics.cache_misses, 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod lru;
mod metrics;
mod registry;
mod server;

pub use cache::{CacheStats, ResponseCache};
pub use metrics::{LatencySummary, MetricsSnapshot, Stage};
pub use registry::{InsertOutcome, Registry, RegistryEntry, RegistryError, RegistryStats};
pub use server::{
    serve_lines, serve_lines_with_metrics, Cacheability, LineHandler, MetricsExporter,
    RequestContext, RuntimeConfig, ServeReport, TraceId, TransportError,
};
