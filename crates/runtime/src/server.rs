//! The bounded line-serving runtime: acceptor → I/O threads → bounded
//! job queue → compute lanes → per-connection reorder buffer.
//!
//! [`serve_lines`] turns a [`TcpListener`] plus a [`LineHandler`] into a
//! pipelined JSON-lines-style server with *bounded admission* at every
//! level:
//!
//! * **Compute lanes.** A fixed pool of `lanes` worker threads executes
//!   request jobs popped from one global bounded fair-share queue (a
//!   per-tenant round-robin [`FairQueue`] with the blocking semantics of
//!   [`gtl_core::sync::BoundedQueue`]). When every lane is busy and the
//!   queue is full — or one tenant has hit its per-tenant quota —
//!   connection readers block in `push`: backpressure reaches the
//!   client's TCP window instead of growing an unbounded buffer, and a
//!   flooding tenant backpressures *itself* before it can crowd out
//!   anyone else.
//! * **Fair-share admission.** [`LineHandler::tenant`] classifies each
//!   request line into an admission lane; lanes pop tenants in
//!   deterministic round-robin order (ties by submission order), so the
//!   interleaving served to a trickling tenant is independent of how
//!   hard any other tenant floods (the starvation counter
//!   [`MetricsSnapshot::fair_share_violations`] is structurally zero).
//! * **Pipelining with order preservation.** A client may write up to
//!   `pipeline_depth` request lines before reading; jobs from one
//!   connection run concurrently on the lanes, and a per-connection
//!   reorder ring emits responses strictly in request order, so the wire
//!   contract is exactly that of a serial server.
//! * **Connection bounds.** An optional max-concurrent-connections gate
//!   (excess clients wait in the listen backlog), an optional total
//!   accept budget (for scripted runs), and a per-connection read/idle
//!   timeout.
//!
//! Connection threads are **I/O only**: they parse frames and move
//! buffers; all request compute happens on the lanes, and whatever the
//! handler fans out internally (e.g. `gtl_core::exec`) stays inside the
//! job. Responses for a given request line are byte-identical no matter
//! how many lanes, connections, or pipelined requests are in flight —
//! provided the handler is deterministic, which the [`ResponseCache`]
//! additionally exploits (see [`crate::cache`]).

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gtl_core::cancel::{CancelToken, Deadline};
use gtl_core::obs::Span;
use gtl_core::sync::Semaphore;

use crate::cache::ResponseCache;
use crate::metrics::{MetricsHub, MetricsSnapshot, Stage};

/// Give up on the listener after this many `accept()` failures in a row
/// (transient `ECONNABORTED`-style failures are tolerated and reset on
/// every successful accept).
const MAX_CONSECUTIVE_ACCEPT_ERRORS: usize = 100;

/// At most this many per-connection I/O error strings are kept verbatim
/// in the [`ServeReport`]; further ones only bump a drop counter (a
/// long-running server must not grow an unbounded error log).
const MAX_REPORTED_IO_ERRORS: usize = 64;

/// Whether a response may be stored in the response cache.
///
/// Only responses that are **pure functions of the request line bytes**
/// may be cached — everything the workspace computes (find/place/stats)
/// qualifies; a metrics snapshot does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cacheability {
    /// The response depends only on the request bytes: cache it.
    Cacheable,
    /// The response depends on runtime state (e.g. metrics): never cache.
    Uncacheable,
}

/// A framing-level failure detected before the handler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The request line exceeded the configured byte cap.
    Oversized {
        /// The configured cap in bytes.
        limit: u64,
    },
    /// The request line is not valid UTF-8.
    NotUtf8,
}

/// A per-request trace identity, deterministically derived from the
/// connection id (accept order, 1-based) and the request's sequence
/// number on that connection (0-based).
///
/// Rendered as `cccccccc-ssssssss` (two fixed-width hex words), it lets
/// a client correlate a wire response with server-side metrics and
/// logs. Because `(conn, seq)` is a pure function of the request
/// *stream* — never of lane scheduling, timing, or cache state —
/// replaying the same script yields the same trace IDs, so golden
/// replays stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// 1-based accept-order connection id.
    pub conn: u64,
    /// 0-based request sequence number within the connection.
    pub seq: u64,
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:08x}-{:08x}", self.conn, self.seq)
    }
}

/// Per-request context handed to the handler (read-only runtime views
/// plus this request's cancellation token).
#[derive(Debug)]
pub struct RequestContext<'a> {
    pub(crate) hub: &'a MetricsHub,
    pub(crate) cache: &'a ResponseCache,
    pub(crate) token: &'a CancelToken,
    pub(crate) submitted_at: Instant,
    pub(crate) trace: TraceId,
}

impl RequestContext<'_> {
    /// A point-in-time snapshot of the runtime's metrics, for serving a
    /// monitoring endpoint. Metrics are observation-only; reading them
    /// never perturbs request handling.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.hub.snapshot(self.cache)
    }

    /// This request's cancellation token: a child of the connection's
    /// token (tripped on connection loss) carrying the server-side
    /// default deadline, anchored at [`RequestContext::submitted_at`].
    /// Handlers should poll it inside long compute and may derive
    /// tighter children for request-supplied deadlines.
    pub fn cancel_token(&self) -> &CancelToken {
        self.token
    }

    /// When the runtime admitted this request (the read side framed the
    /// line) — the anchor for request-supplied deadlines, so time spent
    /// waiting in the job queue counts against the deadline.
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }

    /// Records that this request was answered with a deadline-exceeded
    /// error (the handler owns the response formats, the runtime owns
    /// the counters).
    pub fn record_deadline_exceeded(&self) {
        self.hub.deadline_exceeded();
    }

    /// Records that this request's compute was abandoned or answered
    /// with a cancellation error after its connection was lost.
    pub fn record_cancelled(&self) {
        self.hub.job_cancelled();
    }

    /// This request's trace identity (see [`TraceId`]). Handlers may log
    /// it or fold it into diagnostics, but the response *bytes* are
    /// stamped by the runtime via [`LineHandler::stamp_trace`] — after
    /// the cache — so cached bytes stay pure functions of the line.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Records how long serializing the response body took, in
    /// microseconds (the handler owns serialization, the runtime owns
    /// the [`Stage::Serialize`] histogram). Durations are measured with
    /// [`gtl_core::obs::Span`] endpoints read on the handler's thread.
    pub fn observe_serialize_us(&self, us: u64) {
        self.hub.observe_stage_us(Stage::Serialize, us);
    }
}

/// The request dispatcher a runtime serves.
///
/// `handle` receives one trimmed request line and must append exactly the
/// response line's bytes (no trailing newline) onto `out`, which arrives
/// cleared but with reused capacity. It must be **total** (every input
/// produces a response, errors included) and **deterministic** for every
/// response it declares [`Cacheability::Cacheable`] — the cache's
/// transparency invariant builds on that.
pub trait LineHandler: Sync {
    /// Computes the response for `line` into `out`.
    fn handle(&self, ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability;

    /// The response line for a framing failure (`None` = close without
    /// answering). The connection is dropped after this response either
    /// way; previously pipelined responses are still flushed first.
    fn transport_error(&self, error: &TransportError) -> Option<String> {
        let _ = error;
        None
    }

    /// The response-cache key for `line`. The default — the line bytes
    /// themselves — is correct for handlers whose responses are pure
    /// functions of the line. A handler that adds request-independent
    /// state (e.g. a session registry, where the same line means
    /// different things before and after a reload) must fold that state
    /// into the key; the transparency invariant then holds per key. The
    /// key must be a pure function of `line` and state that never
    /// changes between this call and the corresponding
    /// [`LineHandler::handle`] in a way that would alias two different
    /// responses onto one key.
    fn cache_key<'a>(&self, line: &'a str) -> Cow<'a, [u8]> {
        Cow::Borrowed(line.as_bytes())
    }

    /// The admission tenant for `line`: requests with the same tenant
    /// share one per-tenant quota and one fair-share lane; distinct
    /// tenants are served round-robin. The default puts every request in
    /// one shared tenant, which degenerates to the plain bounded FIFO.
    /// Must be cheap — it runs on the connection's I/O thread, before
    /// the line is admitted.
    fn tenant(&self, line: &str) -> String {
        let _ = line;
        String::new()
    }

    /// A cheap static classification of `line` for the per-request-kind
    /// latency histograms (e.g. `"find"`, `"place"`, `"stats"`,
    /// `"admin"`). Must be a pure function of the line; the label set
    /// must be small and fixed. The default puts every request in one
    /// `"request"` kind.
    fn kind(&self, line: &str) -> &'static str {
        let _ = line;
        "request"
    }

    /// Stamps this request's [`TraceId`] into the finished response
    /// `out`, returning whether a stamp was applied. The runtime calls
    /// this *after* the cache lookup/fill, so cached bytes stay pure
    /// functions of the request line while hits and misses are stamped
    /// uniformly (cache transparency holds for the stamped bytes too).
    /// The default stamps nothing — protocols without a trace field
    /// keep their bytes unchanged.
    fn stamp_trace(&self, trace: TraceId, out: &mut String) -> bool {
        let _ = (trace, out);
        false
    }
}

impl<F> LineHandler for F
where
    F: Fn(&RequestContext<'_>, &str, &mut String) -> Cacheability + Sync,
{
    fn handle(&self, ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
        self(ctx, line, out)
    }
}

/// Sizing and limits for [`serve_lines`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Compute lanes (scheduler worker threads); `0` = all cores.
    pub lanes: usize,
    /// Bounded job-queue capacity; `0` = auto (`4 × lanes`, at least the
    /// pipeline depth).
    pub queue_depth: usize,
    /// Response-cache byte budget; `0` disables caching.
    pub cache_bytes: usize,
    /// Max jobs in flight per connection (reorder-ring size); clamped to
    /// at least 1. `1` degenerates to strict serial request/response.
    pub pipeline_depth: usize,
    /// Largest accepted request line in bytes. A line is buffered before
    /// parsing; the cap keeps one hostile newline-free stream from
    /// growing the buffer until the allocator aborts the process.
    pub max_request_bytes: u64,
    /// Per-connection idle timeout (`None` = wait forever). Idle means
    /// no request in flight **and** nothing arriving: a client waiting
    /// on a slow compute never trips it. On expiry the connection stops
    /// reading, flushes anything in flight and closes.
    pub read_timeout: Option<Duration>,
    /// Max concurrently open connections (`None`/`Some(0)` = unbounded);
    /// excess clients wait in the listen backlog.
    pub max_concurrent: Option<usize>,
    /// Total accept budget (`None` = run forever; `Some(0)` = return
    /// immediately). Scripted callers use this for a clean exit.
    pub max_connections: Option<usize>,
    /// Server-side default deadline per request (`None` = unbounded).
    /// Anchored at submission, so queue wait counts; the job's
    /// [`RequestContext::cancel_token`] trips once it passes. Handlers
    /// decide the response; cancelled work never blocks a lane beyond
    /// its current checkpoint interval.
    pub default_deadline: Option<Duration>,
    /// Max queued jobs per tenant (see [`LineHandler::tenant`]); `0` =
    /// auto (the full queue depth, i.e. no sub-limit). A tenant at its
    /// quota backpressures only its own connections. Clamped to at
    /// least 1.
    pub tenant_quota: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            lanes: 0,
            queue_depth: 0,
            cache_bytes: 0,
            pipeline_depth: 1,
            max_request_bytes: 1 << 20,
            read_timeout: None,
            max_concurrent: None,
            max_connections: None,
            default_deadline: None,
            tenant_quota: 0,
        }
    }
}

impl RuntimeConfig {
    fn resolved_lanes(&self) -> usize {
        if self.lanes == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.lanes
        }
    }

    fn resolved_pipeline(&self) -> usize {
        self.pipeline_depth.max(1)
    }

    fn resolved_queue_depth(&self) -> usize {
        if self.queue_depth == 0 {
            (self.resolved_lanes() * 4).max(self.resolved_pipeline())
        } else {
            self.queue_depth
        }
    }

    fn resolved_tenant_quota(&self) -> usize {
        if self.tenant_quota == 0 {
            self.resolved_queue_depth()
        } else {
            self.tenant_quota.max(1)
        }
    }
}

/// What a bounded [`serve_lines`] run did.
#[derive(Debug)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: usize,
    /// Per-connection I/O error descriptions, capped at a fixed count
    /// (earlier behavior silently dropped these).
    pub io_errors: Vec<String>,
    /// I/O errors beyond the reporting cap (counted, not stored).
    pub dropped_io_errors: usize,
    /// Final metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// A unit of compute queued for the lanes: one request's dispatch,
/// boxed with everything it needs to deliver its response.
type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

/// The bounded fair-share job queue: per-tenant FIFOs drained in
/// deterministic round-robin order.
///
/// Semantics mirror [`gtl_core::sync::BoundedQueue`] — `push` blocks on
/// the limits and fails only once closed; `pop` drains everything
/// admitted before returning `None` after close — with two additions:
///
/// * **Per-tenant quota.** A tenant with `quota` jobs already queued
///   blocks its own producers, leaving the remaining capacity to other
///   tenants (self-backpressure instead of crowding).
/// * **Round-robin service.** Tenants with queued work form a rotation
///   in first-submission order; each pop serves the front tenant's
///   oldest job and moves that tenant to the back if it still has work.
///   Within a tenant, order is strict FIFO — so the service order seen
///   by any one tenant is independent of how much the others submit.
struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    /// Signaled when a job is admitted or the queue closes (poppers).
    ready: Condvar,
    /// Signaled when a pop frees capacity or the queue closes (pushers;
    /// `notify_all`, because waiters block on different predicates —
    /// global capacity vs. their own tenant's quota).
    vacancy: Condvar,
}

struct FairState<T> {
    capacity: usize,
    quota: usize,
    len: usize,
    closed: bool,
    queues: HashMap<String, VecDeque<T>>,
    /// Tenants with at least one queued job, in service order.
    rotation: VecDeque<String>,
    /// The tenant served by the previous pop, for the structural
    /// starvation check (see [`MetricsHub::fair_share_violation`]).
    last_popped: Option<String>,
    /// Whether another tenant was already waiting when the previous pop
    /// was served. Serving the same tenant twice in a row is only a
    /// starvation violation if someone else has been waiting the whole
    /// time — a tenant that arrived in between legitimately queues
    /// behind the incumbent's rotation slot.
    last_pop_had_others: bool,
}

impl<T> FairQueue<T> {
    fn new(capacity: usize, quota: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(quota > 0, "tenant quota must be positive");
        Self {
            state: Mutex::new(FairState {
                capacity,
                quota,
                len: 0,
                closed: false,
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                last_popped: None,
                last_pop_had_others: false,
            }),
            ready: Condvar::new(),
            vacancy: Condvar::new(),
        }
    }

    /// Blocks until both the global capacity and `tenant`'s quota admit
    /// the item, then enqueues it. `Err(item)` once the queue is closed.
    fn push(&self, tenant: &str, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(item);
            }
            let tenant_len = state.queues.get(tenant).map_or(0, VecDeque::len);
            if state.len < state.capacity && tenant_len < state.quota {
                if tenant_len == 0 {
                    // Empty → non-empty: the tenant (re)joins the
                    // rotation at the back — "ties by submission order".
                    state.rotation.push_back(tenant.to_string());
                }
                state.queues.entry(tenant.to_string()).or_default().push_back(item);
                state.len += 1;
                self.ready.notify_one();
                return Ok(());
            }
            state = self.vacancy.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops the next job in fair-share order, blocking while the queue
    /// is empty but open. `None` once closed *and* drained.
    fn pop(&self, hub: &MetricsHub) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(tenant) = state.rotation.pop_front() {
                // gtl-lint: allow(no-panic-on-serve-path, reason = "push inserts the queue before enqueueing the tenant in the rotation")
                let queue = state.queues.get_mut(&tenant).expect("rotation tenant has a queue");
                // gtl-lint: allow(no-panic-on-serve-path, reason = "a tenant leaves the rotation when its queue drains, so rotation members have work")
                let item = queue.pop_front().expect("rotation tenant has work");
                let more = !queue.is_empty();
                // Structural starvation check: serving the same tenant
                // twice in a row while another tenant has been waiting
                // since the previous pop would mean the rotation is
                // broken. Counted, never expected.
                if state.last_pop_had_others && state.last_popped.as_deref() == Some(&*tenant) {
                    hub.fair_share_violation();
                }
                state.last_pop_had_others = !state.rotation.is_empty();
                if more {
                    state.rotation.push_back(tenant.clone());
                }
                state.last_popped = Some(tenant);
                state.len -= 1;
                self.vacancy.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending `pop`s drain what was admitted, then
    /// every blocked caller returns.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.ready.notify_all();
        self.vacancy.notify_all();
    }

    /// Jobs currently queued across all tenants.
    fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len
    }
}

/// Serves line-delimited requests from `listener` until the accept
/// budget is exhausted (or forever without one).
///
/// # Errors
///
/// An [`std::io::Error`] when accepting fails persistently (100 times
/// in a row — transient failures are tolerated). Per-connection
/// I/O errors never fail the server; they are counted and reported in
/// the [`ServeReport`].
///
/// # Panics
///
/// A panic inside [`LineHandler::handle`] is caught on the lane: it
/// costs the connection whose request panicked (earlier pipelined
/// responses still flush, then the connection closes; counted in
/// [`MetricsSnapshot::handler_panics`] and reported in the
/// [`ServeReport`]), never a lane or the server. Panics from runtime
/// internals still propagate.
pub fn serve_lines<H: LineHandler>(
    listener: &TcpListener,
    config: &RuntimeConfig,
    handler: &H,
) -> std::io::Result<ServeReport> {
    serve_lines_with_metrics(listener, config, handler, None)
}

/// A side-port metrics scrape endpoint for
/// [`serve_lines_with_metrics`]: a second listener answered by a
/// dedicated I/O thread with `render`'s text for minimal HTTP/1.0
/// `GET /metrics` requests (anything else gets a 404). `render`
/// receives a fresh [`MetricsSnapshot`] per scrape; scraping is
/// observation-only and never perturbs request handling.
#[derive(Clone, Copy)]
pub struct MetricsExporter<'a> {
    /// The bound side-port listener to answer scrapes on.
    pub listener: &'a TcpListener,
    /// Renders a snapshot into the scrape response body (e.g.
    /// Prometheus text exposition, owned by the protocol layer).
    pub render: &'a (dyn Fn(&MetricsSnapshot) -> String + Sync),
}

/// [`serve_lines`] plus an optional side-port scrape endpoint (see
/// [`MetricsExporter`]). The scrape thread lives exactly as long as the
/// serve loop: it is woken and joined before this returns.
///
/// # Errors
///
/// As [`serve_lines`]; scrape-side I/O errors never fail the server.
pub fn serve_lines_with_metrics<H: LineHandler>(
    listener: &TcpListener,
    config: &RuntimeConfig,
    handler: &H,
    exporter: Option<MetricsExporter<'_>>,
) -> std::io::Result<ServeReport> {
    let lanes = config.resolved_lanes();
    let pipeline = config.resolved_pipeline();
    let queue_depth = config.resolved_queue_depth();
    let tenant_quota = config.resolved_tenant_quota();

    let cache = ResponseCache::new(config.cache_bytes);
    let hub = MetricsHub::new(lanes, queue_depth, pipeline, tenant_quota);
    let sink = Mutex::new(ErrorSink::default());
    let gate = config.max_concurrent.filter(|&max| max > 0).map(Semaphore::new);
    if config.max_connections == Some(0) {
        return Ok(ServeReport {
            connections: 0,
            io_errors: Vec::new(),
            dropped_io_errors: 0,
            metrics: hub.snapshot(&cache),
        });
    }

    let rt = RuntimeRefs {
        handler,
        cache: &cache,
        hub: &hub,
        sink: &sink,
        pipeline,
        max_request_bytes: config.max_request_bytes,
        read_timeout: config.read_timeout,
        default_deadline: config.default_deadline,
    };
    // Declared after `rt` so queued jobs may borrow it (drop order runs
    // the queue down first).
    let queue: FairQueue<Job<'_>> = FairQueue::new(queue_depth, tenant_quota);

    let scrape_done = AtomicBool::new(false);
    let (served, accept_error) = std::thread::scope(|scope| {
        for _ in 0..lanes {
            let queue = &queue;
            let hub = &hub;
            scope.spawn(move || {
                while let Some(job) = queue.pop(hub) {
                    hub.observe_queue_depth(queue.len());
                    job();
                }
            });
        }
        if let Some(exporter) = exporter {
            let hub = &hub;
            let cache = &cache;
            let done = &scrape_done;
            scope.spawn(move || scrape_loop(exporter, done, hub, cache));
        }

        let mut served = 0usize;
        let mut consecutive_errors = 0usize;
        let mut connections: Vec<std::thread::ScopedJoinHandle<'_, ()>> = Vec::new();
        let accept_error = loop {
            if let Some(gate) = &gate {
                gate.acquire();
            }
            let stream = match listener.accept() {
                Ok((stream, _peer)) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(e) => {
                    // accept() fails transiently in normal operation
                    // (ECONNABORTED on client reset, EMFILE under fd
                    // pressure); one bad handshake must not take the
                    // server down. Persistent failure still surfaces.
                    if let Some(gate) = &gate {
                        gate.release();
                    }
                    consecutive_errors += 1;
                    if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                        break Some(std::io::Error::new(
                            e.kind(),
                            format!("accept failed {consecutive_errors} times in a row: {e}"),
                        ));
                    }
                    continue;
                }
            };
            served += 1;
            hub.connection_opened();
            let conn_id = served;
            let rt = &rt;
            let queue = &queue;
            let gate = &gate;
            connections.push(scope.spawn(move || {
                run_connection(rt, queue, scope, conn_id, stream);
                if let Some(gate) = gate {
                    gate.release();
                }
                rt.hub.connection_closed();
            }));
            // Reap finished connection threads so the handle list stays
            // proportional to *live* connections on a forever-server.
            let mut i = 0;
            while i < connections.len() {
                if connections[i].is_finished() {
                    // A panicked connection thread must cost only that
                    // connection, never the accept loop: record it and
                    // keep serving.
                    if connections.swap_remove(i).join().is_err() {
                        rt.record_error(0, "connection thread panicked".into());
                    }
                } else {
                    i += 1;
                }
            }
            if config.max_connections.is_some_and(|max| served >= max) {
                break None;
            }
        };
        // Graceful shutdown: every accepted connection finishes (readers
        // drain, lanes finish their jobs, writers flush) before the
        // queue closes and the lanes exit.
        for handle in connections {
            if handle.join().is_err() {
                rt.record_error(0, "connection thread panicked".into());
            }
        }
        queue.close();
        // Wake the scrape thread out of its blocking accept with a
        // self-connection so the scope can join it.
        scrape_done.store(true, Ordering::SeqCst);
        if let Some(exporter) = exporter {
            if let Ok(addr) = exporter.listener.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
        (served, accept_error)
    });

    // End the job container's borrows (of `rt`, and through it `sink`)
    // before draining the sink by value.
    drop(queue);
    if let Some(error) = accept_error {
        return Err(error);
    }
    let drained = sink.into_inner().unwrap_or_else(|e| e.into_inner());
    Ok(ServeReport {
        connections: served,
        io_errors: drained.errors,
        dropped_io_errors: drained.dropped,
        metrics: hub.snapshot(&cache),
    })
}

/// The scrape endpoint's accept loop: one short-lived HTTP/1.0
/// exchange per connection, answered inline on this thread (scrapes
/// are rare and tiny; a slow scraper is bounded by the per-exchange
/// timeouts, it cannot block the serve path — only the next scraper).
fn scrape_loop(
    exporter: MetricsExporter<'_>,
    done: &AtomicBool,
    hub: &MetricsHub,
    cache: &ResponseCache,
) {
    let mut consecutive_errors = 0usize;
    loop {
        let stream = match exporter.listener.accept() {
            Ok((stream, _peer)) => {
                consecutive_errors = 0;
                stream
            }
            Err(_) => {
                consecutive_errors += 1;
                if done.load(Ordering::SeqCst)
                    || consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS
                {
                    return;
                }
                continue;
            }
        };
        if done.load(Ordering::SeqCst) {
            return; // the self-connection wake-up
        }
        // Scrape-side I/O failures cost only that scrape.
        let _ = answer_scrape(stream, exporter, hub, cache);
    }
}

/// One scrape exchange: read the request line (and drain the headers),
/// answer `GET /metrics` with the rendered snapshot, anything else
/// with a 404, then close. Hard timeouts bound a stalled client.
fn answer_scrape(
    stream: TcpStream,
    exporter: MetricsExporter<'_>,
    hub: &MetricsHub,
    cache: &ResponseCache,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain the header block (if any) before answering, so closing the
    // socket cannot RST the response out from under a client that is
    // still mid-write.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut writer = BufWriter::new(stream);
    let path = request.strip_prefix("GET ").and_then(|rest| rest.split_whitespace().next());
    if path == Some("/metrics") {
        let body = (exporter.render)(&hub.snapshot(cache));
        write!(
            writer,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        writer.write_all(
            b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )?;
    }
    writer.flush()
}

/// Shared references every connection and job needs, bundled so the
/// spawned closures capture one pointer.
struct RuntimeRefs<'a, H: LineHandler> {
    handler: &'a H,
    cache: &'a ResponseCache,
    hub: &'a MetricsHub,
    sink: &'a Mutex<ErrorSink>,
    pipeline: usize,
    max_request_bytes: u64,
    read_timeout: Option<Duration>,
    default_deadline: Option<Duration>,
}

impl<H: LineHandler> RuntimeRefs<'_, H> {
    fn record_io_error(&self, conn_id: usize, message: String) {
        self.hub.io_error();
        self.record_error(conn_id, message);
    }

    /// Stores a per-connection error description for the report without
    /// bumping the I/O-error counter (used for non-I/O failures such as
    /// handler panics, which have their own counter).
    fn record_error(&self, conn_id: usize, message: String) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if sink.errors.len() < MAX_REPORTED_IO_ERRORS {
            sink.errors.push(format!("connection #{conn_id}: {message}"));
        } else {
            sink.dropped += 1;
        }
    }
}

#[derive(Debug, Default)]
struct ErrorSink {
    errors: Vec<String>,
    dropped: usize,
}

/// One connection: spawn the writer, run the read loop, join the writer.
fn run_connection<'j, 'scope, 'env, H: LineHandler>(
    rt: &'j RuntimeRefs<'j, H>,
    queue: &FairQueue<Job<'j>>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    conn_id: usize,
    stream: TcpStream,
) where
    'j: 'env,
{
    if rt.read_timeout.is_some() {
        if let Err(e) = stream.set_read_timeout(rt.read_timeout) {
            rt.record_io_error(conn_id, format!("set_read_timeout: {e}"));
            return;
        }
    }
    let write_half = match stream.try_clone() {
        Ok(half) => half,
        Err(e) => {
            rt.record_io_error(conn_id, format!("clone: {e}"));
            return;
        }
    };
    let conn = Arc::new(ConnShared::new(rt.pipeline));
    let writer = {
        let conn = Arc::clone(&conn);
        let hub = rt.hub;
        scope.spawn(move || write_side(&conn, BufWriter::new(write_half), hub))
    };
    read_side(rt, queue, &conn, conn_id, stream);
    conn.finish_input();
    match writer.join() {
        Ok(Some(message)) => rt.record_io_error(conn_id, message),
        Ok(None) => {}
        // The writer panicking costs this connection its tail of
        // responses; the server keeps running and the report says why.
        Err(_) => rt.record_error(conn_id, "connection writer panicked".into()),
    }
}

/// The I/O-only producer: frame request lines, classify their admission
/// tenant, acquire a pipeline slot, submit a job per line. Never
/// computes a response itself.
fn read_side<'j, H: LineHandler>(
    rt: &'j RuntimeRefs<'j, H>,
    queue: &FairQueue<Job<'j>>,
    conn: &Arc<ConnShared>,
    conn_id: usize,
    stream: TcpStream,
) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    'lines: loop {
        buf.clear();
        // Read one line, possibly across several timeout wakeups: the
        // timeout measures client *idleness*, so while responses are in
        // flight (the client is waiting on the server, not the other way
        // round) wakeups just retry. With nothing in flight the timeout
        // closes the connection — including one stalled mid-line, whose
        // partial bytes are discarded (slowloris protection).
        loop {
            // Bound the read: at most one byte past the cap, so an
            // oversized line is detected without ever buffering the
            // whole stream.
            let budget = rt.max_request_bytes + 1 - buf.len() as u64;
            match std::io::Read::take(&mut reader, budget).read_until(b'\n', &mut buf) {
                Ok(0) if buf.is_empty() => break 'lines, // clean EOF
                // EOF terminating a final unterminated line, a complete
                // line, or the byte budget exhausted (caught below).
                Ok(0) => break,
                Ok(_) if buf.last() == Some(&b'\n') || buf.len() as u64 > rt.max_request_bytes => {
                    break
                }
                Ok(_) => {} // partial read (short take) — keep reading
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if conn.has_inflight() {
                        continue; // server still computing — not idle
                    }
                    // Genuinely idle: stop reading; anything already in
                    // flight still flushes before the connection closes.
                    rt.hub.read_timeout();
                    break 'lines;
                }
                Err(e) => {
                    // A read *error* (as opposed to a clean EOF, which may
                    // be a pipelining client's half-close) means the
                    // connection is gone: cancel its in-flight jobs so
                    // lane time is not spent on answers nobody can read.
                    rt.record_io_error(conn_id, format!("read: {e}"));
                    conn.kill();
                    break 'lines;
                }
            }
        }
        if buf.len() as u64 > rt.max_request_bytes {
            respond_transport_error(
                rt,
                conn,
                &TransportError::Oversized { limit: rt.max_request_bytes },
            );
            break;
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            respond_transport_error(rt, conn, &TransportError::NotUtf8);
            break;
        };
        // The canonical request line: surrounding whitespace stripped
        // (it cannot change the parsed request), so the cache key and
        // the handler input are exactly the same bytes.
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        let Some((seq, out)) = conn.acquire_slot() else {
            break; // the writer died; stop producing
        };
        rt.hub.request_submitted();
        // Classify the admission tenant on the I/O thread (it is a cheap
        // prefix inspection by contract) so the fair-share queue can
        // bound this tenant *before* the job occupies a queue slot.
        let tenant = rt.handler.tenant(line);
        let line = line.to_string();
        let submitted = Instant::now();
        let job: Job<'j> = Box::new({
            let conn = Arc::clone(conn);
            move || run_job(rt, &conn, conn_id, seq, &line, out, submitted)
        });
        if queue.push(&tenant, job).is_err() {
            // Only possible if shutdown raced this connection; fail the
            // stream rather than leave the writer waiting on `seq`.
            conn.kill();
            break;
        }
        rt.hub.observe_queue_depth(queue.len());
    }
}

/// Answers a framing failure in request order (if the handler supplies a
/// response line) — the connection is closed by the caller afterwards.
fn respond_transport_error<H: LineHandler>(
    rt: &RuntimeRefs<'_, H>,
    conn: &ConnShared,
    error: &TransportError,
) {
    if let Some(text) = rt.handler.transport_error(error) {
        if let Some((seq, mut out)) = conn.acquire_slot() {
            rt.hub.request_submitted();
            out.clear();
            out.push_str(&text);
            conn.deposit(seq, out);
        }
    }
}

/// One request's compute, run on a lane: cancellation probe, cache
/// lookup, handler dispatch, cache fill, in-order delivery.
///
/// A panic inside the handler is contained here: it costs exactly the
/// connection that submitted the request (the same blast radius as the
/// old dispatch-on-the-connection-thread server), never the lane — the
/// connection flushes every earlier in-order response, then closes.
fn run_job<H: LineHandler>(
    rt: &RuntimeRefs<'_, H>,
    conn: &ConnShared,
    conn_id: usize,
    seq: u64,
    line: &str,
    mut out: String,
    submitted: Instant,
) {
    // The connection died (token tripped) or this sequence number was
    // truncated by an abort (an earlier job panicked) while the job sat
    // in the queue: nobody will ever read an answer, so skip the
    // compute entirely — this is what keeps a lost connection from
    // occupying a compute lane. Note the abort case must NOT cancel the
    // connection token: earlier in-flight jobs still flush their real
    // responses, which a token trip would corrupt into errors.
    if conn.token().is_cancelled() || conn.discards(seq) {
        rt.hub.job_cancelled();
        return;
    }
    // Stage clocks are read here on the lane and only ever *subtracted*
    // (never branched on), so recording them cannot change response
    // bytes — the obs byte-invisibility contract.
    let started = Instant::now();
    rt.hub.observe_stage_us(Stage::QueueWait, Span::starting_at(submitted).end_at(started));
    let trace = TraceId { conn: conn_id as u64, seq };
    out.clear();
    // The handler may fold request-independent state (e.g. a session
    // generation) into the key; computed once, used for both the lookup
    // and the fill so they can never diverge.
    let cache_key = rt.handler.cache_key(line);
    if let Some(hit) = rt.cache.get(&cache_key) {
        // Transparency invariant: these are exactly the bytes the
        // handler produced for this key (property-tested end to end).
        out.push_str(&hit);
    } else {
        // The job's token: trips on connection loss, and additionally on
        // the server-side default deadline (anchored at submission, so
        // queue wait counts). An unrepresentably far deadline is no
        // deadline.
        let token = match rt.default_deadline.and_then(|d| Deadline::anchored(submitted, d)) {
            Some(deadline) => conn.token().child_with_deadline(deadline),
            None => conn.token().clone(),
        };
        let ctx = RequestContext {
            hub: rt.hub,
            cache: rt.cache,
            token: &token,
            submitted_at: submitted,
            trace,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.handler.handle(&ctx, line, &mut out)
        }));
        match outcome {
            Ok(Cacheability::Cacheable) => {
                // Guard against handler state moving between the lookup
                // and the compute (e.g. a session reloaded mid-job): the
                // fill goes in only if the key is unchanged, which —
                // with monotonic, never-reused state stamps in the key —
                // proves the compute saw exactly the state the key
                // names. A skipped fill only costs a recompute.
                if rt.handler.cache_key(line) == cache_key {
                    rt.cache.insert(&cache_key, &out);
                }
            }
            Ok(Cacheability::Uncacheable) => {}
            Err(_panic) => {
                rt.hub.handler_panic();
                rt.record_error(conn_id, "handler panicked; connection dropped".to_string());
                conn.abort_after(seq);
                return;
            }
        }
    }
    rt.hub.observe_stage_us(Stage::LaneCompute, Span::starting_at(started).end_at(Instant::now()));
    // Trace stamping happens strictly *after* the cache lookup and
    // fill: the cache keeps holding bytes that are pure functions of
    // the request line, and hits and misses are stamped uniformly, so
    // cache transparency holds for the stamped bytes too.
    if rt.handler.stamp_trace(trace, &mut out) {
        rt.hub.response_traced();
    }
    rt.hub.observe_kind_latency_us(
        rt.handler.kind(line),
        Span::starting_at(submitted).end_at(Instant::now()),
    );
    conn.deposit(seq, out);
}

/// The consumer: write responses strictly in request order, recycling
/// buffers back to the connection's pool.
///
/// Flushing is adaptive: while the next in-order response is already
/// deposited (a pipelined burst, e.g. cache-warm repeats), lines batch
/// in the `BufWriter` and flush together; the flush happens as soon as
/// the writer would otherwise wait, so an interactive client still sees
/// every response immediately.
fn write_side(
    conn: &ConnShared,
    mut writer: BufWriter<TcpStream>,
    hub: &MetricsHub,
) -> Option<String> {
    let result = write_loop(conn, &mut writer, hub);
    // Once the writer stops, nothing will ever be answered on this
    // connection again; shut the read half so a reader blocked in a
    // timeout-less read (e.g. after a handler panic aborted the
    // connection) sees EOF instead of leaking. On a normally completed
    // connection the reader has already exited and this is a no-op.
    let _ = writer.get_ref().shutdown(std::net::Shutdown::Read);
    result
}

/// The write loop proper (see [`write_side`]).
fn write_loop(
    conn: &ConnShared,
    writer: &mut BufWriter<TcpStream>,
    hub: &MetricsHub,
) -> Option<String> {
    loop {
        let text = {
            let mut state = conn.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.dead {
                    return None;
                }
                let slot = state.ring_index(state.written);
                if let Some(text) = state.ring[slot].take() {
                    break text;
                }
                if state.total == Some(state.written) {
                    // Everything written; push out whatever is batched.
                    drop(state);
                    let flush = Span::starting_at(Instant::now());
                    let result = writer.flush();
                    hub.observe_stage_us(Stage::WriterFlush, flush.end_at(Instant::now()));
                    return match result {
                        Ok(()) => None,
                        Err(e) => Some(format!("flush: {e}")),
                    };
                }
                state = conn.response_ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        match writeln!(writer, "{text}") {
            Ok(()) => {
                hub.response_written();
                let next_ready = {
                    let mut state = conn.state.lock().unwrap_or_else(|e| e.into_inner());
                    state.written += 1;
                    let mut recycled = text;
                    recycled.clear();
                    if state.pool.len() < state.ring.len() {
                        state.pool.push(recycled);
                    }
                    conn.slot_freed.notify_one();
                    let slot = state.ring_index(state.written);
                    state.ring[slot].is_some()
                };
                if !next_ready {
                    let flush = Span::starting_at(Instant::now());
                    let result = writer.flush();
                    hub.observe_stage_us(Stage::WriterFlush, flush.end_at(Instant::now()));
                    if let Err(e) = result {
                        conn.kill();
                        return Some(format!("flush: {e}"));
                    }
                }
            }
            Err(e) => {
                conn.kill();
                return Some(format!("write: {e}"));
            }
        }
    }
}

/// Per-connection pipeline state: the reorder ring plus flow control.
///
/// Invariants: `written ≤ submitted ≤ written + ring.len()` (the
/// pipeline-depth window), so every in-flight sequence number maps to a
/// distinct ring slot; `total` is set exactly once, when the read side
/// stops producing.
struct ConnShared {
    state: Mutex<ConnState>,
    /// Signaled when `written` advances or the connection dies
    /// (producers waiting for a pipeline slot).
    slot_freed: Condvar,
    /// Signaled when a response lands in the ring, input ends, or the
    /// connection dies (the writer waits on this).
    response_ready: Condvar,
    /// The connection's cancellation root: tripped by [`ConnShared::kill`]
    /// (connection loss — reader error or writer failure), so queued and
    /// in-flight jobs of this connection stop consuming lane time. Every
    /// job token is this token or a deadline-carrying child of it.
    token: CancelToken,
}

struct ConnState {
    /// `ring[seq % depth]` holds the finished response for `seq`.
    ring: Vec<Option<String>>,
    /// Recycled response buffers (capacity reuse across requests).
    pool: Vec<String>,
    /// Next sequence number to assign.
    submitted: u64,
    /// Responses written back so far (the reorder cursor).
    written: u64,
    /// Sequence number past the last response the writer should emit
    /// (set at end of input, or truncated by [`ConnShared::abort_after`]).
    total: Option<u64>,
    /// The writer failed; discard everything, stop producing.
    dead: bool,
    /// Stop producing new requests (a job failed); unlike `dead`, the
    /// writer still drains every response before the abort point.
    aborted: bool,
}

impl ConnState {
    fn ring_index(&self, seq: u64) -> usize {
        (seq % self.ring.len() as u64) as usize
    }
}

impl ConnShared {
    fn new(pipeline_depth: usize) -> Self {
        Self {
            state: Mutex::new(ConnState {
                ring: (0..pipeline_depth).map(|_| None).collect(),
                pool: Vec::new(),
                submitted: 0,
                written: 0,
                total: None,
                dead: false,
                aborted: false,
            }),
            slot_freed: Condvar::new(),
            response_ready: Condvar::new(),
            token: CancelToken::new(),
        }
    }

    /// The connection's cancellation root (see the field docs).
    fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Whether a response for `seq` would be discarded unread: the
    /// connection is dead, or an abort truncated the response stream
    /// before `seq`. Lanes skip such jobs instead of computing them.
    fn discards(&self, seq: u64) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.dead || state.total.is_some_and(|total| seq >= total)
    }

    /// Blocks until fewer than `pipeline_depth` requests are in flight,
    /// then claims the next sequence number and a recycled buffer.
    /// `None` when the connection is dead.
    fn acquire_slot(&self) -> Option<(u64, String)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.dead || state.aborted {
                return None;
            }
            if state.submitted - state.written < state.ring.len() as u64 {
                let seq = state.submitted;
                state.submitted += 1;
                let out = state.pool.pop().unwrap_or_default();
                return Some((seq, out));
            }
            state = self.slot_freed.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Delivers the finished response for `seq` into its ring slot.
    fn deposit(&self, seq: u64, text: String) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let slot = state.ring_index(seq);
        debug_assert!(state.ring[slot].is_none(), "reorder slot for seq {seq} overwritten");
        state.ring[slot] = Some(text);
        self.response_ready.notify_one();
    }

    /// Whether any accepted request has not been answered on the wire
    /// yet — the read/idle timeout only closes a connection when this is
    /// `false` (a client waiting on a slow response is not idle). A dead
    /// or aborted connection will never answer anything again, so it
    /// reports `false` no matter the counters.
    fn has_inflight(&self) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        !state.dead && !state.aborted && state.submitted > state.written
    }

    /// Marks end of input: the writer exits after draining everything
    /// submitted so far (unless an abort already truncated earlier).
    fn finish_input(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.total.is_none() {
            state.total = Some(state.submitted);
        }
        self.response_ready.notify_all();
    }

    /// Fails the connection at `seq` (its job produced no response):
    /// stop producing, let the writer flush every response before `seq`,
    /// then close. Responses for later in-flight sequence numbers are
    /// discarded.
    fn abort_after(&self, seq: u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.aborted = true;
        state.total = Some(state.total.map_or(seq, |t| t.min(seq)));
        self.slot_freed.notify_all();
        self.response_ready.notify_all();
    }

    /// Marks the connection dead (connection loss: reader error or
    /// writer failure) and cancels its token, so jobs already queued or
    /// running for this connection stop at their next checkpoint instead
    /// of computing answers nobody can read.
    fn kill(&self) {
        self.token.cancel();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.dead = true;
        self.slot_freed.notify_all();
        self.response_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    /// Deterministic test handler: echoes with a prefix, sleeps a few
    /// milliseconds on `slow-` lines (to shuffle lane completion order),
    /// serves a metrics line, and answers framing errors.
    struct TestHandler;

    impl LineHandler for TestHandler {
        fn handle(&self, ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
            if line == "panic" {
                panic!("handler blew up");
            }
            if line == "check-token" {
                // Cooperative cancellation: the handler polls the job
                // token; a tripped deadline becomes an error response.
                return if ctx.cancel_token().is_cancelled() {
                    ctx.record_deadline_exceeded();
                    out.push_str("error:deadline");
                    Cacheability::Uncacheable
                } else {
                    out.push_str("token:live");
                    Cacheability::Cacheable
                };
            }
            if line == "sleep-long" {
                std::thread::sleep(Duration::from_millis(150));
            }
            if line == "metrics" {
                let snap = ctx.metrics();
                out.push_str(&format!("metrics hits={}", snap.cache_hits));
                return Cacheability::Uncacheable;
            }
            if let Some(rest) = line.strip_prefix("slow-") {
                let ms = rest.bytes().next().map_or(0, |b| u64::from(b % 4));
                std::thread::sleep(Duration::from_millis(ms));
            }
            out.push_str("echo:");
            out.push_str(line);
            Cacheability::Cacheable
        }

        fn transport_error(&self, error: &TransportError) -> Option<String> {
            Some(match error {
                TransportError::Oversized { limit } => format!("error:oversized:{limit}"),
                TransportError::NotUtf8 => "error:not-utf8".to_string(),
            })
        }
    }

    fn bind() -> TcpListener {
        TcpListener::bind("127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn zero_connection_budget_returns_immediately() {
        let listener = bind();
        let config = RuntimeConfig { max_connections: Some(0), ..RuntimeConfig::default() };
        let report = serve_lines(&listener, &config, &TestHandler).unwrap();
        assert_eq!(report.connections, 0);
    }

    #[test]
    fn pipelined_responses_arrive_in_request_order() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 4,
            pipeline_depth: 5,
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            // Burst of uneven-latency requests, written before any read.
            let n = 40;
            let mut expected = Vec::new();
            for i in 0..n {
                writeln!(conn, "slow-{i}").unwrap();
                expected.push(format!("echo:slow-{i}"));
            }
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, expected, "responses reordered");
            let report = server.join().unwrap();
            assert_eq!(report.connections, 1);
            assert_eq!(report.metrics.requests, n as u64);
            assert_eq!(report.metrics.responses, n as u64);
        });
    }

    #[test]
    fn cache_serves_repeats_and_metrics_bypass_it() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 2,
            pipeline_depth: 4,
            cache_bytes: 1 << 16,
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let read_line = |reader: &mut BufReader<TcpStream>| {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line.trim_end().to_string()
            };
            // First request fills the cache; reading its response before
            // sending the repeats makes the hit count deterministic.
            writeln!(conn, "repeat-me").unwrap();
            assert_eq!(read_line(&mut reader), "echo:repeat-me");
            writeln!(conn, "repeat-me").unwrap();
            writeln!(conn, "repeat-me").unwrap();
            writeln!(conn, "metrics").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            assert_eq!(read_line(&mut reader), "echo:repeat-me");
            assert_eq!(read_line(&mut reader), "echo:repeat-me");
            assert!(read_line(&mut reader).starts_with("metrics hits="), "metrics line");
            let report = server.join().unwrap();
            // The two repeats hit; the first fill and the (uncacheable,
            // so never resident) metrics probe miss.
            assert_eq!(report.metrics.cache_hits, 2);
            assert_eq!(report.metrics.cache_misses, 2);
            // The metrics line must not have been cached: exactly one
            // resident entry (the echoed request).
            assert_eq!(report.metrics.cache_entries, 1);
        });
    }

    #[test]
    fn oversized_line_answered_in_order_then_closed() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            pipeline_depth: 2,
            max_request_bytes: 64,
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "ok").unwrap();
            writeln!(conn, "{}", "x".repeat(100)).unwrap();
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, vec!["echo:ok".to_string(), "error:oversized:64".to_string()]);
            server.join().unwrap();
        });
    }

    #[test]
    fn idle_timeout_closes_the_connection() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            read_timeout: Some(Duration::from_millis(30)),
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "before-idle").unwrap();
            // Then go idle: the server must answer what it got and close.
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, vec!["echo:before-idle".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.read_timeouts, 1);
        });
    }

    #[test]
    fn slow_compute_does_not_trip_the_idle_timeout() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            // Far shorter than the 150ms the request takes to compute:
            // the timeout must only measure idleness, not compute.
            read_timeout: Some(Duration::from_millis(40)),
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "sleep-long").unwrap();
            // Keep the write half open (a serial client waiting for its
            // answer); the idle timeout should close the connection only
            // after the response arrives.
            let got: Vec<String> = BufReader::new(conn).lines().map_while(Result::ok).collect();
            assert_eq!(got, vec!["echo:sleep-long".to_string()], "slow response lost to timeout");
            let report = server.join().unwrap();
            // The post-response idle close is the one counted timeout.
            assert_eq!(report.metrics.read_timeouts, 1);
            assert_eq!(report.metrics.responses, 1);
        });
    }

    #[test]
    fn handler_panic_costs_the_connection_not_the_server() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1, // serialize jobs so the pre-panic response is deposited first
            pipeline_depth: 4,
            max_connections: Some(2),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            // Connection 1: a good request, then a panicking one. The
            // server must flush the first response, then close without
            // answering the panicked request — even though this client
            // keeps its write half open and the server has no read
            // timeout (the abort unblocks the reader via shutdown, so
            // the connection cannot leak).
            let conn = TcpStream::connect(addr).unwrap();
            let mut writer = conn.try_clone().unwrap();
            writeln!(writer, "before\npanic").unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map_while(Result::ok).collect();
            assert_eq!(got, vec!["echo:before".to_string()], "pre-panic response must flush");
            drop(writer);
            // Connection 2: the lane survived; the server still serves.
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "still-alive").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map_while(Result::ok).collect();
            assert_eq!(got, vec!["echo:still-alive".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.handler_panics, 1);
            assert!(
                report.io_errors.iter().any(|e| e.contains("handler panicked")),
                "{:?}",
                report.io_errors
            );
        });
    }

    #[test]
    fn default_deadline_trips_the_job_token() {
        // An already-expired server-side deadline: the job token is
        // tripped before the handler runs, and the handler answers with
        // its deadline response (counted in the metrics).
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            default_deadline: Some(Duration::from_millis(0)),
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "check-token").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, vec!["error:deadline".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.deadlines_exceeded, 1);
        });
    }

    #[test]
    fn no_deadline_leaves_the_job_token_live() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            default_deadline: Some(Duration::from_secs(3600)),
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "check-token").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, vec!["token:live".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.deadlines_exceeded, 0);
        });
    }

    /// A handler that counts how many requests actually computed, so a
    /// test can prove that a lost connection's queued jobs were skipped.
    struct CountingHandler {
        computed: std::sync::atomic::AtomicUsize,
    }

    impl LineHandler for CountingHandler {
        fn handle(&self, _ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
            self.computed.fetch_add(1, Ordering::Relaxed);
            if line == "panic" {
                panic!("handler blew up");
            }
            std::thread::sleep(Duration::from_millis(25));
            out.push_str("echo:");
            out.push_str(line);
            Cacheability::Uncacheable // force every request to compute
        }
    }

    #[test]
    fn panic_abort_skips_the_connections_queued_jobs() {
        // A handler panic aborts its connection; the jobs still queued
        // behind it can never be answered, so the lanes must skip them
        // instead of computing responses nobody will read — while the
        // pre-panic response still flushes.
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let handler = CountingHandler { computed: std::sync::atomic::AtomicUsize::new(0) };
        let config = RuntimeConfig {
            lanes: 1,
            pipeline_depth: 8,
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &handler).unwrap());
            let conn = TcpStream::connect(addr).unwrap();
            let mut writer = conn.try_clone().unwrap();
            writeln!(writer, "before\npanic\ndoomed-0\ndoomed-1\ndoomed-2\ndoomed-3").unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map_while(Result::ok).collect();
            assert_eq!(got, vec!["echo:before".to_string()], "pre-panic response must flush");
            drop(writer);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.handler_panics, 1);
            // "before" and "panic" computed; the four doomed jobs must
            // have been skipped on the lane, not run.
            assert_eq!(handler.computed.load(Ordering::Relaxed), 2, "{:?}", report.metrics);
            assert_eq!(report.metrics.jobs_cancelled, 4, "{:?}", report.metrics);
        });
    }

    #[test]
    fn mid_burst_disconnect_cancels_queued_jobs_but_not_other_connections() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let burst = 8usize;
        let handler = CountingHandler { computed: std::sync::atomic::AtomicUsize::new(0) };
        let config = RuntimeConfig {
            lanes: 1, // serialize jobs so most of the burst is still queued
            pipeline_depth: burst,
            max_connections: Some(2),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &handler).unwrap());
            // Connection 1: pipeline a slow burst, then drop the socket
            // without reading anything. The unread response triggers an
            // RST, the reader/writer fail, the connection token trips,
            // and the still-queued jobs are skipped on the lane.
            {
                let mut conn = TcpStream::connect(addr).unwrap();
                for i in 0..burst {
                    writeln!(conn, "doomed-{i}").unwrap();
                }
                // Full close with responses unread → RST.
            }
            // Connection 2 (after the disconnect): must be served in
            // full, byte-identical to an undisturbed serial exchange.
            let mut conn = TcpStream::connect(addr).unwrap();
            for i in 0..3 {
                writeln!(conn, "alive-{i}").unwrap();
            }
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(got, vec!["echo:alive-0", "echo:alive-1", "echo:alive-2"]);
            let report = server.join().unwrap();
            // The doomed burst must not have run to completion: at least
            // one queued job was cancelled instead of computed.
            let computed = handler.computed.load(Ordering::Relaxed);
            assert!(computed < burst + 3, "all {burst} doomed jobs still computed");
            assert!(report.metrics.jobs_cancelled > 0, "{:?}", report.metrics);
            assert_eq!(
                computed as u64 + report.metrics.jobs_cancelled,
                (burst + 3) as u64,
                "every admitted request either computed or was cancelled: {:?}",
                report.metrics
            );
        });
    }

    #[test]
    fn concurrent_connections_all_complete_under_gate() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let clients = 6usize;
        let config = RuntimeConfig {
            lanes: 2,
            pipeline_depth: 3,
            cache_bytes: 1 << 14,
            max_concurrent: Some(2),
            max_connections: Some(clients),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TestHandler).unwrap());
            let mut client_handles = Vec::new();
            for c in 0..clients {
                client_handles.push(scope.spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    for i in 0..5 {
                        writeln!(conn, "slow-{}", (c + i) % 3).unwrap();
                    }
                    conn.shutdown(std::net::Shutdown::Write).unwrap();
                    BufReader::new(conn).lines().map(|l| l.unwrap()).collect::<Vec<_>>()
                }));
            }
            for (c, handle) in client_handles.into_iter().enumerate() {
                let got = handle.join().unwrap();
                let expected: Vec<String> =
                    (0..5).map(|i| format!("echo:slow-{}", (c + i) % 3)).collect();
                assert_eq!(got, expected, "client {c}");
            }
            let report = server.join().unwrap();
            assert_eq!(report.connections, clients);
            assert_eq!(report.metrics.responses, (clients * 5) as u64);
            assert!(report.io_errors.is_empty(), "{:?}", report.io_errors);
        });
    }

    fn test_hub() -> MetricsHub {
        MetricsHub::new(1, 8, 1, 8)
    }

    #[test]
    fn fair_queue_serves_tenants_round_robin_in_submission_order() {
        let queue: FairQueue<&'static str> = FairQueue::new(8, 8);
        let hub = test_hub();
        queue.push("a", "a1").unwrap();
        queue.push("a", "a2").unwrap();
        queue.push("b", "b1").unwrap();
        queue.push("c", "c1").unwrap();
        queue.push("a", "a3").unwrap();
        queue.close();
        let mut order = Vec::new();
        while let Some(item) = queue.pop(&hub) {
            order.push(item);
        }
        // Round-robin across tenants (first submission first), FIFO
        // within each tenant.
        assert_eq!(order, vec!["a1", "b1", "c1", "a2", "a3"]);
        assert_eq!(hub.snapshot(&ResponseCache::new(0)).fair_share_violations, 0);
    }

    #[test]
    fn fair_queue_quota_blocks_only_the_offending_tenant() {
        let queue: FairQueue<u32> = FairQueue::new(8, 1);
        let hub = test_hub();
        queue.push("hog", 1).unwrap();
        // The hog is at quota; another tenant still gets in immediately.
        queue.push("other", 10).unwrap();
        std::thread::scope(|scope| {
            let blocked = scope.spawn(|| queue.push("hog", 2));
            // Give the push a moment to block, then drain one hog job:
            // the blocked producer must get through.
            std::thread::sleep(Duration::from_millis(20));
            assert!(!blocked.is_finished(), "push should block at quota");
            assert_eq!(queue.pop(&hub), Some(1));
            blocked.join().unwrap().unwrap();
        });
        assert_eq!(queue.pop(&hub), Some(10));
        assert_eq!(queue.pop(&hub), Some(2));
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn fair_queue_close_drains_then_rejects() {
        let queue: FairQueue<u32> = FairQueue::new(4, 4);
        let hub = test_hub();
        queue.push("t", 1).unwrap();
        queue.push("t", 2).unwrap();
        queue.close();
        assert_eq!(queue.push("t", 3), Err(3), "push after close must fail");
        assert_eq!(queue.pop(&hub), Some(1));
        assert_eq!(queue.pop(&hub), Some(2));
        assert_eq!(queue.pop(&hub), None);
    }

    /// Classifies tenants by the line's `<tenant>:` prefix; flooding
    /// lines sleep so a backlog builds behind them.
    struct TenantHandler;

    impl LineHandler for TenantHandler {
        fn handle(&self, _ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
            if line.contains("slow") {
                std::thread::sleep(Duration::from_millis(5));
            }
            out.push_str("echo:");
            out.push_str(line);
            Cacheability::Uncacheable // force every request to compute
        }

        fn tenant(&self, line: &str) -> String {
            line.split(':').next().unwrap_or("").to_string()
        }
    }

    /// Serially send `lines` on one connection, reading each response
    /// before the next request.
    fn exchange_serially(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut out = Vec::new();
        for line in lines {
            writeln!(conn, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(response.trim_end().to_string());
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        out
    }

    #[test]
    fn flooding_tenant_cannot_starve_or_perturb_a_trickler() {
        let trickle_lines: Vec<String> = (0..6).map(|i| format!("trickle:req-{i}")).collect();

        // Reference: the trickler served alone.
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            queue_depth: 4,
            tenant_quota: 2,
            pipeline_depth: 16,
            max_connections: Some(1),
            ..RuntimeConfig::default()
        };
        let solo = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TenantHandler).unwrap());
            let got = exchange_serially(addr, &trickle_lines);
            server.join().unwrap();
            got
        });

        // Same trickle while another tenant floods well past its quota.
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig { max_connections: Some(2), ..config };
        let (contended, report) = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &TenantHandler).unwrap());
            let flooder = scope.spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                for i in 0..48 {
                    writeln!(conn, "flood:slow-{i}").unwrap();
                }
                conn.shutdown(std::net::Shutdown::Write).unwrap();
                let mut answered = 0usize;
                for line in BufReader::new(conn).lines() {
                    line.unwrap();
                    answered += 1;
                }
                answered
            });
            // Let the flood saturate its quota before trickling.
            std::thread::sleep(Duration::from_millis(20));
            let got = exchange_serially(addr, &trickle_lines);
            assert_eq!(flooder.join().unwrap(), 48, "the flood is throttled, not dropped");
            (got, server.join().unwrap())
        });

        // The flood must be invisible to the trickler's bytes, and the
        // scheduler must never have served the flood twice in a row
        // while the trickler waited.
        assert_eq!(contended, solo);
        assert_eq!(report.metrics.fair_share_violations, 0, "{:?}", report.metrics);
        assert_eq!(report.metrics.tenant_quota, 2);
    }

    #[test]
    fn trace_ids_render_as_fixed_width_hex_words() {
        assert_eq!(TraceId { conn: 1, seq: 0 }.to_string(), "00000001-00000000");
        assert_eq!(TraceId { conn: 0x1f, seq: 0xabc }.to_string(), "0000001f-00000abc");
    }

    /// Echoes with a trace stamp appended, classifying everything as
    /// kind `find` — exercises the post-cache stamping path.
    struct StampHandler;

    impl LineHandler for StampHandler {
        fn handle(&self, _ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
            out.push_str("echo:");
            out.push_str(line);
            Cacheability::Cacheable
        }

        fn kind(&self, _line: &str) -> &'static str {
            "find"
        }

        fn stamp_trace(&self, trace: TraceId, out: &mut String) -> bool {
            out.push_str(&format!(" trace={trace}"));
            true
        }
    }

    #[test]
    fn traces_are_stamped_after_the_cache_and_counted() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let config = RuntimeConfig {
            lanes: 1,
            cache_bytes: 1 << 14,
            max_connections: Some(2),
            ..RuntimeConfig::default()
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_lines(&listener, &config, &StampHandler).unwrap());
            // Connection 1 fills the cache; connection 2 repeats the
            // same line, hits the cache, and must still get its *own*
            // trace — the stamp is applied after the lookup.
            let lines = vec!["repeat-me".to_string(), "only-first".to_string()];
            let got1 = exchange_serially(addr, &lines);
            assert_eq!(
                got1,
                vec![
                    "echo:repeat-me trace=00000001-00000000".to_string(),
                    "echo:only-first trace=00000001-00000001".to_string(),
                ]
            );
            let got2 = exchange_serially(addr, &lines[..1]);
            assert_eq!(got2, vec!["echo:repeat-me trace=00000002-00000000".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.metrics.cache_hits, 1, "{:?}", report.metrics);
            assert_eq!(report.metrics.responses_traced, 3, "{:?}", report.metrics);
            // Every stage histogram observed every request; serialize
            // is handler-owned (empty for this handler) and the writer
            // also flushes once more per connection at end of input.
            for stage in &report.metrics.stage_latency {
                match stage.label.as_str() {
                    "serialize" => assert_eq!(stage.count, 0),
                    "writer_flush" => assert!(stage.count >= 3, "{}", stage.count),
                    _ => assert_eq!(stage.count, 3, "stage {}", stage.label),
                }
            }
            let kinds: Vec<(&str, u64)> =
                report.metrics.kind_latency.iter().map(|s| (s.label.as_str(), s.count)).collect();
            assert_eq!(kinds, vec![("find", 3)]);
        });
    }

    #[test]
    fn metrics_side_port_answers_scrapes_and_404s() {
        let listener = bind();
        let addr = listener.local_addr().unwrap();
        let scrape_listener = bind();
        let scrape_addr = scrape_listener.local_addr().unwrap();
        let render = |snap: &MetricsSnapshot| format!("gtl_requests_total {}\n", snap.requests);
        let exporter = MetricsExporter { listener: &scrape_listener, render: &render };
        let config =
            RuntimeConfig { lanes: 1, max_connections: Some(1), ..RuntimeConfig::default() };
        let scrape = |request: &str| {
            let mut conn = TcpStream::connect(scrape_addr).unwrap();
            write!(conn, "{request}").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut response = String::new();
            std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
            response
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                serve_lines_with_metrics(&listener, &config, &TestHandler, Some(exporter)).unwrap()
            });
            // Scrape while the server is live (before its one allowed
            // connection shuts it down).
            let ok = scrape("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
            assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok:?}");
            assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok:?}");
            assert!(ok.ends_with("gtl_requests_total 0\n"), "{ok:?}");
            let missing = scrape("GET /other HTTP/1.0\r\n\r\n");
            assert!(missing.starts_with("HTTP/1.0 404 Not Found\r\n"), "{missing:?}");
            // Exhaust the accept budget so the serve loop (and with it
            // the scrape thread) shuts down cleanly.
            let got = exchange_serially(addr, &["ping".to_string()]);
            assert_eq!(got, vec!["echo:ping".to_string()]);
            let report = server.join().unwrap();
            assert_eq!(report.connections, 1);
        });
    }
}
