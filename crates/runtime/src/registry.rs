//! The session registry: a byte-budgeted store of named, reference-counted
//! values with deterministic least-recently-used eviction.
//!
//! `gtl-api` instantiates this with loaded netlist sessions (API v4
//! `LoadNetlist`/`UnloadNetlist`/`ListSessions`), but the registry itself
//! is domain-free: it maps names to `Arc<T>` values under two admission
//! limits — a maximum entry count and a byte budget — and evicts the
//! coldest entries (reusing the same intrusive recency list as the
//! response cache, [`crate::lru::RecencyList`]) when an insert would
//! exceed either.
//!
//! # Invariants
//!
//! * **Deterministic eviction** — recency is updated only by `insert`,
//!   `touch` and `remove`; for a serialized operation sequence the set of
//!   evicted names (reported in insertion order, coldest first) is a pure
//!   function of that sequence, independent of worker or lane counts.
//! * **Monotonic generations** — every successful insert stamps the entry
//!   with a fresh generation from a counter that starts at 1 and never
//!   repeats, even when a name is reused after an unload. Response-cache
//!   keys derived from a generation therefore never collide across
//!   load/unload cycles, which is what keeps cache transparency intact
//!   per session (generation 0 is reserved for the un-registered default
//!   session).
//! * **Drain, never abort** — `remove` and eviction drop only the
//!   registry's reference; in-flight work holding the `Arc<T>` completes
//!   against the old value.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::lru::RecencyList;

/// Counters and occupancy describing a [`Registry`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the budget.
    pub bytes: u64,
    /// The configured byte budget (`0` = unlimited).
    pub capacity_bytes: u64,
    /// The configured entry cap (`0` = unlimited).
    pub max_entries: u64,
    /// Entries admitted since construction (replacements count).
    pub loads: u64,
    /// Entries evicted cold to make room since construction.
    pub evictions: u64,
    /// Entries removed by explicit unload since construction.
    pub unloads: u64,
}

/// The outcome of a successful [`Registry::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The generation stamped on the new entry (monotonic, never reused).
    pub generation: u64,
    /// Names evicted to make room, coldest first.
    pub evicted: Vec<Arc<str>>,
    /// Whether the name was already present (the old value was dropped).
    pub replaced: bool,
}

/// Why an insert was refused. The registry is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The entry alone exceeds the whole byte budget (cost, budget).
    OverBudget(u64, u64),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OverBudget(cost, budget) => {
                write!(f, "entry costs {cost} bytes but the registry budget is {budget}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A byte-budgeted, entry-capped map from names to shared values with
/// deterministic LRU eviction and monotonic generation stamps.
///
/// All operations take `&self`; the interior is a single mutex, so a
/// serialized operation sequence yields one deterministic history.
///
/// # Example
///
/// ```
/// use gtl_runtime::Registry;
///
/// let registry: Registry<String> = Registry::new(2, 0);
/// registry.insert("a", "alpha".to_string(), 64).unwrap();
/// registry.insert("b", "beta".to_string(), 64).unwrap();
/// let outcome = registry.insert("c", "gamma".to_string(), 64).unwrap();
/// assert_eq!(outcome.evicted, vec![std::sync::Arc::from("a")]); // coldest
/// assert!(registry.get("a").is_none());
/// assert_eq!(&*registry.get("c").unwrap().0, "gamma");
/// ```
#[derive(Debug)]
pub struct Registry<T> {
    inner: Mutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    /// `0` = unlimited entries.
    max_entries: usize,
    /// `0` = unlimited bytes.
    budget: usize,
    map: HashMap<Arc<str>, usize>,
    entries: Vec<Option<Entry<T>>>,
    list: RecencyList,
    bytes: usize,
    next_generation: u64,
    loads: u64,
    evictions: u64,
    unloads: u64,
}

#[derive(Debug)]
struct Entry<T> {
    name: Arc<str>,
    value: Arc<T>,
    cost: usize,
    generation: u64,
}

/// One row of [`Registry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry<T> {
    /// The entry's name.
    pub name: Arc<str>,
    /// The shared value.
    pub value: Arc<T>,
    /// Bytes charged for this entry.
    pub cost: u64,
    /// The generation stamped at insert.
    pub generation: u64,
}

impl<T> Registry<T> {
    /// Creates a registry capped at `max_entries` entries (`0` =
    /// unlimited) and `budget_bytes` bytes (`0` = unlimited).
    pub fn new(max_entries: usize, budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                max_entries,
                budget: budget_bytes,
                map: HashMap::new(),
                entries: Vec::new(),
                list: RecencyList::new(),
                bytes: 0,
                next_generation: 1,
                loads: 0,
                evictions: 0,
                unloads: 0,
            }),
        }
    }

    /// Admits `value` under `name`, charging `cost` bytes. An existing
    /// entry with the same name is replaced (its generation is retired).
    /// Cold entries are evicted until both limits hold; if `cost` alone
    /// exceeds a non-zero byte budget the insert is refused and the
    /// registry is unchanged.
    pub fn insert(
        &self,
        name: &str,
        value: T,
        cost: usize,
    ) -> Result<InsertOutcome, RegistryError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.budget > 0 && cost > inner.budget {
            return Err(RegistryError::OverBudget(cost as u64, inner.budget as u64));
        }
        let replaced = if let Some(index) = inner.map.remove(name) {
            // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
            let old = inner.entries[index].take().expect("linked entry");
            inner.list.release(index);
            inner.bytes -= old.cost;
            true
        } else {
            false
        };
        let mut evicted = Vec::new();
        // Make room: the new entry counts toward both limits.
        while (inner.budget > 0 && inner.bytes + cost > inner.budget)
            || (inner.max_entries > 0 && inner.map.len() + 1 > inner.max_entries)
        {
            // gtl-lint: allow(no-panic-on-serve-path, reason = "over-budget single entries were rejected above, so the loop only runs while something is resident")
            let index = inner.list.coldest().expect("limits admit at least one entry");
            inner.list.release(index);
            // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
            let old = inner.entries[index].take().expect("linked entry");
            inner.map.remove(&old.name);
            inner.bytes -= old.cost;
            inner.evictions += 1;
            evicted.push(old.name);
        }
        let generation = inner.next_generation;
        inner.next_generation += 1;
        let name: Arc<str> = Arc::from(name);
        let entry = Entry { name: Arc::clone(&name), value: Arc::new(value), cost, generation };
        let index = inner.list.allocate();
        if index == inner.entries.len() {
            inner.entries.push(Some(entry));
        } else {
            inner.entries[index] = Some(entry);
        }
        inner.map.insert(name, index);
        inner.bytes += cost;
        inner.loads += 1;
        Ok(InsertOutcome { generation, evicted, replaced })
    }

    /// Looks up `name`, promoting the entry to most-recently-used.
    /// Returns the shared value and its generation.
    pub fn get(&self, name: &str) -> Option<(Arc<T>, u64)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let index = inner.map.get(name).copied()?;
        inner.list.touch(index);
        // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
        let entry = inner.entries[index].as_ref().expect("linked entry");
        Some((Arc::clone(&entry.value), entry.generation))
    }

    /// Removes `name`, returning its value. In-flight holders of the
    /// `Arc` keep working against it (drain, never abort).
    pub fn remove(&self, name: &str) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let index = inner.map.remove(name)?;
        inner.list.release(index);
        // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
        let entry = inner.entries[index].take().expect("linked entry");
        inner.bytes -= entry.cost;
        inner.unloads += 1;
        Some(entry.value)
    }

    /// All resident entries, sorted by name (a stable order for wire
    /// responses — recency is deliberately not exposed here).
    pub fn list(&self) -> Vec<RegistryEntry<T>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<RegistryEntry<T>> = inner
            .map
            .values()
            .map(|&index| {
                // gtl-lint: allow(no-panic-on-serve-path, reason = "map index always points at a live slab entry")
                let entry = inner.entries[index].as_ref().expect("linked entry");
                RegistryEntry {
                    name: Arc::clone(&entry.name),
                    value: Arc::clone(&entry.value),
                    cost: entry.cost as u64,
                    generation: entry.generation,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// A consistent snapshot of occupancy and counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        RegistryStats {
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            capacity_bytes: inner.budget as u64,
            max_entries: inner.max_entries as u64,
            loads: inner.loads,
            evictions: inner.evictions,
            unloads: inner.unloads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_cap_evicts_coldest_first() {
        let registry: Registry<u32> = Registry::new(2, 0);
        registry.insert("a", 1, 10).unwrap();
        registry.insert("b", 2, 10).unwrap();
        // Touch `a`: `b` becomes coldest.
        assert_eq!(registry.get("a").map(|(v, _)| *v), Some(1));
        let outcome = registry.insert("c", 3, 10).unwrap();
        assert_eq!(outcome.evicted, vec![Arc::from("b")]);
        assert!(!outcome.replaced);
        assert!(registry.get("b").is_none());
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_until_it_fits() {
        let registry: Registry<u32> = Registry::new(0, 100);
        registry.insert("a", 1, 40).unwrap();
        registry.insert("b", 2, 40).unwrap();
        let outcome = registry.insert("c", 3, 90).unwrap();
        // Both residents must go to admit the 90-byte entry.
        assert_eq!(outcome.evicted, vec![Arc::from("a"), Arc::from("b")]);
        let stats = registry.stats();
        assert_eq!((stats.entries, stats.bytes), (1, 90));
    }

    #[test]
    fn over_budget_insert_is_refused_and_leaves_state_unchanged() {
        let registry: Registry<u32> = Registry::new(0, 100);
        registry.insert("a", 1, 40).unwrap();
        let err = registry.insert("big", 9, 101).unwrap_err();
        assert_eq!(err, RegistryError::OverBudget(101, 100));
        assert!(registry.get("a").is_some());
        assert_eq!(registry.stats().entries, 1);
        assert_eq!(registry.stats().evictions, 0);
    }

    #[test]
    fn generations_are_monotonic_and_never_reused() {
        let registry: Registry<u32> = Registry::new(0, 0);
        let g1 = registry.insert("a", 1, 1).unwrap().generation;
        registry.remove("a");
        let g2 = registry.insert("a", 2, 1).unwrap().generation;
        let g3 = registry.insert("a", 3, 1).unwrap().generation; // replacement
        assert!(g1 < g2 && g2 < g3, "{g1} {g2} {g3}");
        assert_eq!(registry.get("a").unwrap().1, g3);
    }

    #[test]
    fn replacement_keeps_entry_count_and_reports_replaced() {
        let registry: Registry<u32> = Registry::new(2, 0);
        registry.insert("a", 1, 10).unwrap();
        registry.insert("b", 2, 10).unwrap();
        let outcome = registry.insert("a", 9, 10).unwrap();
        assert!(outcome.replaced);
        assert!(outcome.evicted.is_empty(), "replacement needs no eviction");
        assert_eq!(registry.get("a").map(|(v, _)| *v), Some(9));
        assert_eq!(registry.stats().entries, 2);
    }

    #[test]
    fn remove_drains_shared_value() {
        let registry: Registry<String> = Registry::new(0, 0);
        registry.insert("s", "payload".to_string(), 7).unwrap();
        let (held, _) = registry.get("s").unwrap();
        let removed = registry.remove("s").expect("present");
        assert!(registry.get("s").is_none());
        // Both references still see the value: removal only drops the
        // registry's reference.
        assert_eq!(&*held, "payload");
        assert_eq!(&*removed, "payload");
    }

    #[test]
    fn list_is_sorted_by_name() {
        let registry: Registry<u32> = Registry::new(0, 0);
        registry.insert("zeta", 1, 5).unwrap();
        registry.insert("alpha", 2, 6).unwrap();
        registry.insert("mid", 3, 7).unwrap();
        let names: Vec<String> = registry.list().iter().map(|r| r.name.to_string()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    use proptest::prelude::*;

    /// A reference model: same semantics, naive Vec implementation.
    #[derive(Default)]
    struct Model {
        max_entries: usize,
        budget: usize,
        /// Recency order, most recent first: (name, value, cost, gen).
        rows: Vec<(String, u32, usize, u64)>,
        next_gen: u64,
        bytes: usize,
    }

    impl Model {
        fn new(max_entries: usize, budget: usize) -> Self {
            Self { max_entries, budget, next_gen: 1, ..Self::default() }
        }

        fn insert(&mut self, name: &str, value: u32, cost: usize) -> Option<Vec<String>> {
            if self.budget > 0 && cost > self.budget {
                return None;
            }
            if let Some(pos) = self.rows.iter().position(|r| r.0 == name) {
                let old = self.rows.remove(pos);
                self.bytes -= old.2;
            }
            let mut evicted = Vec::new();
            while (self.budget > 0 && self.bytes + cost > self.budget)
                || (self.max_entries > 0 && self.rows.len() + 1 > self.max_entries)
            {
                let old = self.rows.pop().expect("non-empty");
                self.bytes -= old.2;
                evicted.push(old.0);
            }
            let generation = self.next_gen;
            self.next_gen += 1;
            self.rows.insert(0, (name.to_string(), value, cost, generation));
            self.bytes += cost;
            Some(evicted)
        }

        fn get(&mut self, name: &str) -> Option<(u32, u64)> {
            let pos = self.rows.iter().position(|r| r.0 == name)?;
            let row = self.rows.remove(pos);
            let out = (row.1, row.3);
            self.rows.insert(0, row);
            Some(out)
        }

        fn remove(&mut self, name: &str) -> Option<u32> {
            let pos = self.rows.iter().position(|r| r.0 == name)?;
            let row = self.rows.remove(pos);
            self.bytes -= row.2;
            Some(row.1)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, u32, usize),
        Get(u8),
        Remove(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest shim has no `prop_oneof`; a selector
        // field picks the operation kind instead.
        (0u8..3, 0u8..6, 0u32..1000, 1usize..120).prop_map(|(kind, n, v, c)| match kind {
            0 => Op::Insert(n, v, c),
            1 => Op::Get(n),
            _ => Op::Remove(n),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any operation sequence and any limits, the registry
        /// agrees with a naive reference model on every return value —
        /// eviction victims, their order, hit values, generations — and
        /// never exceeds its limits.
        #[test]
        fn matches_reference_model(
            max_entries in 0usize..4,
            budget in 0usize..256,
            ops in proptest::collection::vec(op_strategy(), 0..80),
        ) {
            let registry: Registry<u32> = Registry::new(max_entries, budget);
            let mut model = Model::new(max_entries, budget);
            for op in ops {
                match op {
                    Op::Insert(n, v, c) => {
                        let name = format!("n{n}");
                        let got = registry.insert(&name, v, c);
                        match model.insert(&name, v, c) {
                            None => prop_assert!(got.is_err()),
                            Some(evicted) => {
                                let outcome = got.unwrap();
                                let names: Vec<String> =
                                    outcome.evicted.iter().map(|s| s.to_string()).collect();
                                prop_assert_eq!(names, evicted);
                            }
                        }
                    }
                    Op::Get(n) => {
                        let name = format!("n{n}");
                        let got = registry.get(&name).map(|(v, g)| (*v, g));
                        prop_assert_eq!(got, model.get(&name));
                    }
                    Op::Remove(n) => {
                        let name = format!("n{n}");
                        let got = registry.remove(&name).map(|v| *v);
                        prop_assert_eq!(got, model.remove(&name));
                    }
                }
                let stats = registry.stats();
                if budget > 0 {
                    prop_assert!(stats.bytes <= budget as u64);
                }
                if max_entries > 0 {
                    prop_assert!(stats.entries <= max_entries as u64);
                }
            }
        }
    }
}
