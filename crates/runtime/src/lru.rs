//! The intrusive recency list shared by the response cache and the
//! session registry.
//!
//! Both byte-budgeted stores ([`crate::cache::ResponseCache`] and
//! [`crate::registry::Registry`]) need the same machinery: a slab of
//! entries threaded into a doubly-linked most-recently-used list, so
//! promotion and cold-end eviction are O(1) without allocating per
//! touch. This module owns only the *links*; the stores keep their
//! payloads in a parallel `Vec` indexed by the same slot numbers, which
//! keeps the list reusable without making the payload generic over an
//! intrusive-node trait.

/// Sentinel index for "no slot".
pub(crate) const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Links {
    /// Toward the MRU end (`NIL` at the head).
    prev: usize,
    /// Toward the LRU end (`NIL` at the tail).
    next: usize,
}

/// A doubly-linked recency list over externally stored slots.
///
/// Slot numbers are allocated by [`RecencyList::allocate`] (freed slots
/// are reused first, so the owner's parallel storage stays dense) and
/// stay valid until [`RecencyList::release`].
#[derive(Debug, Default)]
pub(crate) struct RecencyList {
    links: Vec<Links>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl RecencyList {
    pub(crate) fn new() -> Self {
        Self { links: Vec::new(), free: Vec::new(), head: NIL, tail: NIL }
    }

    /// Claims a slot and links it at the MRU end. The caller stores the
    /// payload for the returned index in its parallel storage.
    pub(crate) fn allocate(&mut self) -> usize {
        let index = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.links.push(Links { prev: NIL, next: NIL });
                self.links.len() - 1
            }
        };
        self.push_front(index);
        index
    }

    /// Moves an allocated slot to the MRU end.
    pub(crate) fn touch(&mut self, index: usize) {
        self.unlink(index);
        self.push_front(index);
    }

    /// Unlinks a slot and returns it to the free pool.
    pub(crate) fn release(&mut self, index: usize) {
        self.unlink(index);
        self.free.push(index);
    }

    /// The LRU-end slot, if any slot is linked.
    pub(crate) fn coldest(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    fn unlink(&mut self, index: usize) {
        let Links { prev, next } = self.links[index];
        match prev {
            NIL => self.head = next,
            p => self.links[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.links[n].prev = prev,
        }
    }

    fn push_front(&mut self, index: usize) {
        let old_head = self.head;
        self.links[index] = Links { prev: NIL, next: old_head };
        match old_head {
            NIL => self.tail = index,
            h => self.links[h].prev = index,
        }
        self.head = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reads the list from MRU to LRU by following the links.
    fn order(list: &RecencyList) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cursor = list.head;
        while cursor != NIL {
            out.push(cursor);
            cursor = list.links[cursor].next;
        }
        out
    }

    #[test]
    fn allocate_touch_release_maintain_recency_order() {
        let mut list = RecencyList::new();
        let a = list.allocate();
        let b = list.allocate();
        let c = list.allocate();
        assert_eq!(order(&list), vec![c, b, a]);
        assert_eq!(list.coldest(), Some(a));

        list.touch(a);
        assert_eq!(order(&list), vec![a, c, b]);
        assert_eq!(list.coldest(), Some(b));

        list.release(b);
        assert_eq!(order(&list), vec![a, c]);
        // Freed slots are reused before the slab grows.
        let d = list.allocate();
        assert_eq!(d, b);
        assert_eq!(order(&list), vec![d, a, c]);
    }

    #[test]
    fn empty_list_has_no_coldest() {
        let mut list = RecencyList::new();
        assert_eq!(list.coldest(), None);
        let a = list.allocate();
        list.release(a);
        assert_eq!(list.coldest(), None);
    }
}
