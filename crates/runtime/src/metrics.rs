//! Runtime observability: cheap atomic counters and latency histograms
//! aggregated into a [`MetricsSnapshot`].
//!
//! Every counter is updated with relaxed atomics on hot paths (the
//! scheduler and the per-connection I/O threads), so metrics never
//! serialize the runtime. The latency histograms
//! ([`gtl_core::obs::LatencyHistogram`]) sit behind short-lived mutexes
//! touched once per request — never inside compute. A snapshot is *not*
//! a point-in-time transaction across all counters — each field is
//! individually consistent, which is what a monitoring endpoint needs.
//! Crucially, metrics are **observation only**: no counter or recorded
//! duration ever feeds back into request handling, so exposing them
//! cannot perturb response bytes (the byte-invisibility contract of
//! `gtl_core::obs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gtl_core::obs::{LatencyHistogram, SCRAPE_BOUNDS_US};

use crate::cache::ResponseCache;

/// The serve-path stages the runtime times individually (see
/// [`MetricsSnapshot::stage_latency`]). Label order here is export
/// order, so renderings stay byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admission to lane pop: how long the job sat in the fair queue.
    QueueWait,
    /// Lane pop to response bytes ready (handler compute + serialize).
    LaneCompute,
    /// Handler-reported serialization time inside the lane (a sub-span
    /// of [`Stage::LaneCompute`], recorded via
    /// [`RequestContext::observe_serialize_us`](crate::RequestContext::observe_serialize_us)).
    Serialize,
    /// One writer `flush()` on the connection's response stream.
    WriterFlush,
}

impl Stage {
    /// Every stage, in export order.
    pub const ALL: [Stage; 4] =
        [Stage::QueueWait, Stage::LaneCompute, Stage::Serialize, Stage::WriterFlush];

    /// The stable label used in summaries and metric renderings.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::LaneCompute => "lane_compute",
            Stage::Serialize => "serialize",
            Stage::WriterFlush => "writer_flush",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::LaneCompute => 1,
            Stage::Serialize => 2,
            Stage::WriterFlush => 3,
        }
    }
}

/// Locks a histogram mutex, recovering from poisoning (a panicking
/// recorder cannot corrupt bucket counts — they are plain integers).
fn lock_histogram(m: &Mutex<LatencyHistogram>) -> std::sync::MutexGuard<'_, LatencyHistogram> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Live counters owned by the runtime (see [`MetricsSnapshot`] for the
/// exported view).
#[derive(Debug)]
pub(crate) struct MetricsHub {
    /// Static config echoes, so a snapshot is self-describing.
    lanes: u64,
    queue_capacity: u64,
    pipeline_depth: u64,
    tenant_quota: u64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    read_timeouts: AtomicU64,
    io_errors: AtomicU64,
    handler_panics: AtomicU64,
    jobs_cancelled: AtomicU64,
    deadlines_exceeded: AtomicU64,
    fair_share_violations: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    responses_traced: AtomicU64,
    /// One histogram per [`Stage`], indexed by [`Stage::index`].
    stage_latency: [Mutex<LatencyHistogram>; 4],
    /// End-to-end latency per request kind (admission to response bytes
    /// deposited). Keys come from [`LineHandler::kind`] and are a small
    /// closed set, so the map stays tiny and iteration order (BTreeMap)
    /// is deterministic.
    ///
    /// [`LineHandler::kind`]: crate::LineHandler::kind
    kind_latency: Mutex<BTreeMap<&'static str, LatencyHistogram>>,
}

impl MetricsHub {
    pub(crate) fn new(
        lanes: usize,
        queue_capacity: usize,
        pipeline_depth: usize,
        tenant_quota: usize,
    ) -> Self {
        Self {
            lanes: lanes as u64,
            queue_capacity: queue_capacity as u64,
            pipeline_depth: pipeline_depth as u64,
            tenant_quota: tenant_quota as u64,
            connections_accepted: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            fair_share_violations: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            responses_traced: AtomicU64::new(0),
            stage_latency: std::array::from_fn(|_| Mutex::new(LatencyHistogram::new())),
            kind_latency: Mutex::new(BTreeMap::new()),
        }
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn request_submitted(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn response_written(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fair-share invariant breach: the scheduler served the
    /// same tenant twice in a row while another tenant had been waiting
    /// since the previous pop. The round-robin rotation makes this
    /// structurally impossible, so the counter staying at zero *is* the
    /// starvation-freedom check (asserted by tests and observable over
    /// the Metrics endpoint).
    pub(crate) fn fair_share_violation(&self) {
        self.fair_share_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the scheduler queue length observed after a push/pop.
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts one response whose envelope carried a trace-id stamp.
    pub(crate) fn response_traced(&self) {
        self.responses_traced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one per-stage duration (µs).
    pub(crate) fn observe_stage_us(&self, stage: Stage, us: u64) {
        lock_histogram(&self.stage_latency[stage.index()]).record_us(us);
    }

    /// Records one end-to-end request latency (µs) under its kind.
    pub(crate) fn observe_kind_latency_us(&self, kind: &'static str, us: u64) {
        self.kind_latency
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entry(kind)
            .or_default()
            .record_us(us);
    }

    pub(crate) fn snapshot(&self, cache: &ResponseCache) -> MetricsSnapshot {
        let cache = cache.stats();
        MetricsSnapshot {
            lanes: self.lanes,
            queue_capacity: self.queue_capacity,
            pipeline_depth: self.pipeline_depth,
            tenant_quota: self.tenant_quota,
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            fair_share_violations: self.fair_share_violations.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            cache_capacity_bytes: cache.capacity_bytes,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_insertions: cache.insertions,
            responses_traced: self.responses_traced.load(Ordering::Relaxed),
            stage_latency: Stage::ALL
                .iter()
                .map(|&stage| {
                    LatencySummary::of(
                        stage.label(),
                        &lock_histogram(&self.stage_latency[stage.index()]),
                    )
                })
                .collect(),
            kind_latency: self
                .kind_latency
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .map(|(kind, histogram)| LatencySummary::of(kind, histogram))
                .collect(),
        }
    }
}

/// The exported digest of one [`LatencyHistogram`]: totals, the p50/p95/
/// p99 bucket-quantized percentiles, and cumulative counts at the fixed
/// [`SCRAPE_BOUNDS_US`] boundaries (the Prometheus `le` set, `+Inf`
/// being `count`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Stable label: a [`Stage`] label or a request kind.
    pub label: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations (µs).
    pub sum_us: u64,
    /// Largest recorded duration (µs, exact).
    pub max_us: u64,
    /// Median (µs, bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile (µs, bucket upper bound).
    pub p95_us: u64,
    /// 99th percentile (µs, bucket upper bound).
    pub p99_us: u64,
    /// Cumulative counts at each [`SCRAPE_BOUNDS_US`] boundary, in
    /// order; values past the last boundary appear only in `count`.
    pub buckets: Vec<u64>,
}

impl LatencySummary {
    /// Digests a histogram under a label.
    pub fn of(label: &str, histogram: &LatencyHistogram) -> Self {
        Self {
            label: label.to_string(),
            count: histogram.count(),
            sum_us: histogram.sum_us(),
            max_us: histogram.max_us(),
            p50_us: histogram.percentile_us(0.50),
            p95_us: histogram.percentile_us(0.95),
            p99_us: histogram.percentile_us(0.99),
            buckets: histogram.cumulative(SCRAPE_BOUNDS_US),
        }
    }
}

/// A point-in-time view of the runtime's counters, as exposed by the
/// versioned Metrics API (`gtl-api` mirrors this into its wire contract).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of compute lanes (scheduler worker threads).
    pub lanes: u64,
    /// Capacity of the bounded job queue feeding the lanes.
    pub queue_capacity: u64,
    /// Max jobs in flight per connection (reorder-buffer size).
    pub pipeline_depth: u64,
    /// Max queued jobs per admission tenant (fair-share quota).
    pub tenant_quota: u64,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request lines admitted to the scheduler.
    pub requests: u64,
    /// Response lines successfully written back.
    pub responses: u64,
    /// Connections closed by the read/idle timeout.
    pub read_timeouts: u64,
    /// Per-connection I/O failures (reads and writes).
    pub io_errors: u64,
    /// Handler panics caught on a lane (each costs its connection, never
    /// the lane).
    pub handler_panics: u64,
    /// Jobs abandoned because their connection was lost (the lane skips
    /// or discards the compute; nobody is left to answer).
    pub jobs_cancelled: u64,
    /// Requests answered with a `deadline_exceeded` error (per-request
    /// `deadline_ms` or the server-side default deadline fired).
    pub deadlines_exceeded: u64,
    /// Fair-share invariant breaches: pops that served a tenant twice
    /// consecutively while another tenant had been waiting since the
    /// previous pop. Structurally zero — a nonzero value means the
    /// scheduler starved someone.
    pub fair_share_violations: u64,
    /// Jobs waiting in the scheduler queue (last observed).
    pub queue_depth: u64,
    /// Highest queue depth observed so far.
    pub queue_high_water: u64,
    /// Response-cache byte budget (`0` = caching disabled).
    pub cache_capacity_bytes: u64,
    /// Response-cache resident entries.
    pub cache_entries: u64,
    /// Response-cache resident bytes (keys + values + overhead).
    pub cache_bytes: u64,
    /// Response-cache lookup hits.
    pub cache_hits: u64,
    /// Response-cache lookup misses.
    pub cache_misses: u64,
    /// Response-cache evictions under the byte budget.
    pub cache_evictions: u64,
    /// Response-cache insertions (distinct stored entries).
    pub cache_insertions: u64,
    /// Responses whose envelope carried a trace-id stamp (v5+ requests).
    pub responses_traced: u64,
    /// Per-stage serve-path latency digests, one per [`Stage`] in
    /// [`Stage::ALL`] order.
    pub stage_latency: Vec<LatencySummary>,
    /// End-to-end latency digests per request kind (sorted by kind).
    pub kind_latency: Vec<LatencySummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let hub = MetricsHub::new(3, 12, 4, 6);
        let cache = ResponseCache::new(1 << 12);
        hub.connection_opened();
        hub.connection_opened();
        hub.connection_closed();
        hub.request_submitted();
        hub.response_written();
        hub.read_timeout();
        hub.io_error();
        hub.observe_queue_depth(5);
        hub.observe_queue_depth(2);
        cache.insert(b"k", "v");
        let _ = cache.get(b"k");

        let snap = hub.snapshot(&cache);
        assert_eq!(snap.lanes, 3);
        assert_eq!(snap.queue_capacity, 12);
        assert_eq!(snap.pipeline_depth, 4);
        assert_eq!(snap.tenant_quota, 6);
        assert_eq!(snap.fair_share_violations, 0);
        assert_eq!(snap.connections_accepted, 2);
        assert_eq!(snap.connections_active, 1);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses, 1);
        assert_eq!(snap.read_timeouts, 1);
        assert_eq!(snap.io_errors, 1);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_high_water, 5);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_insertions, 1);
        assert_eq!(snap.responses_traced, 0);
        assert_eq!(snap.stage_latency.len(), Stage::ALL.len());
        assert!(snap.kind_latency.is_empty());
    }

    #[test]
    fn stage_and_kind_latency_reach_the_snapshot() {
        let hub = MetricsHub::new(1, 4, 1, 0);
        let cache = ResponseCache::new(0);
        hub.observe_stage_us(Stage::QueueWait, 100);
        hub.observe_stage_us(Stage::QueueWait, 300);
        hub.observe_stage_us(Stage::WriterFlush, 7);
        hub.observe_kind_latency_us("find", 1_000);
        hub.observe_kind_latency_us("find", 2_000);
        hub.observe_kind_latency_us("admin", 50);
        hub.response_traced();

        let snap = hub.snapshot(&cache);
        assert_eq!(snap.responses_traced, 1);
        let labels: Vec<&str> = snap.stage_latency.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["queue_wait", "lane_compute", "serialize", "writer_flush"]);
        let queue = &snap.stage_latency[0];
        assert_eq!((queue.count, queue.sum_us, queue.max_us), (2, 400, 300));
        assert!(queue.p50_us >= 100 && queue.p99_us >= queue.p50_us);
        assert_eq!(snap.stage_latency[1].count, 0);
        assert_eq!(snap.stage_latency[3].count, 1);
        // Kinds are sorted, each with its own distribution.
        let kinds: Vec<&str> = snap.kind_latency.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(kinds, ["admin", "find"]);
        assert_eq!(snap.kind_latency[1].count, 2);
        assert_eq!(snap.kind_latency[1].buckets.len(), SCRAPE_BOUNDS_US.len());
    }
}
