//! Runtime observability: cheap atomic counters aggregated into a
//! [`MetricsSnapshot`].
//!
//! Every counter is updated with relaxed atomics on hot paths (the
//! scheduler and the per-connection I/O threads), so metrics never
//! serialize the runtime. A snapshot is *not* a point-in-time transaction
//! across all counters — each field is individually consistent, which is
//! what a monitoring endpoint needs. Crucially, metrics are
//! **observation only**: no counter value ever feeds back into request
//! handling, so exposing them cannot perturb response bytes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::ResponseCache;

/// Live counters owned by the runtime (see [`MetricsSnapshot`] for the
/// exported view).
#[derive(Debug)]
pub(crate) struct MetricsHub {
    /// Static config echoes, so a snapshot is self-describing.
    lanes: u64,
    queue_capacity: u64,
    pipeline_depth: u64,
    tenant_quota: u64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    read_timeouts: AtomicU64,
    io_errors: AtomicU64,
    handler_panics: AtomicU64,
    jobs_cancelled: AtomicU64,
    deadlines_exceeded: AtomicU64,
    fair_share_violations: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
}

impl MetricsHub {
    pub(crate) fn new(
        lanes: usize,
        queue_capacity: usize,
        pipeline_depth: usize,
        tenant_quota: usize,
    ) -> Self {
        Self {
            lanes: lanes as u64,
            queue_capacity: queue_capacity as u64,
            pipeline_depth: pipeline_depth as u64,
            tenant_quota: tenant_quota as u64,
            connections_accepted: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            fair_share_violations: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
        }
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn request_submitted(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn response_written(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fair-share invariant breach: the scheduler served the
    /// same tenant twice in a row while another tenant had been waiting
    /// since the previous pop. The round-robin rotation makes this
    /// structurally impossible, so the counter staying at zero *is* the
    /// starvation-freedom check (asserted by tests and observable over
    /// the Metrics endpoint).
    pub(crate) fn fair_share_violation(&self) {
        self.fair_share_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the scheduler queue length observed after a push/pop.
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, cache: &ResponseCache) -> MetricsSnapshot {
        let cache = cache.stats();
        MetricsSnapshot {
            lanes: self.lanes,
            queue_capacity: self.queue_capacity,
            pipeline_depth: self.pipeline_depth,
            tenant_quota: self.tenant_quota,
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            fair_share_violations: self.fair_share_violations.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            cache_capacity_bytes: cache.capacity_bytes,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_insertions: cache.insertions,
        }
    }
}

/// A point-in-time view of the runtime's counters, as exposed by the
/// versioned Metrics API (`gtl-api` mirrors this into its wire contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of compute lanes (scheduler worker threads).
    pub lanes: u64,
    /// Capacity of the bounded job queue feeding the lanes.
    pub queue_capacity: u64,
    /// Max jobs in flight per connection (reorder-buffer size).
    pub pipeline_depth: u64,
    /// Max queued jobs per admission tenant (fair-share quota).
    pub tenant_quota: u64,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request lines admitted to the scheduler.
    pub requests: u64,
    /// Response lines successfully written back.
    pub responses: u64,
    /// Connections closed by the read/idle timeout.
    pub read_timeouts: u64,
    /// Per-connection I/O failures (reads and writes).
    pub io_errors: u64,
    /// Handler panics caught on a lane (each costs its connection, never
    /// the lane).
    pub handler_panics: u64,
    /// Jobs abandoned because their connection was lost (the lane skips
    /// or discards the compute; nobody is left to answer).
    pub jobs_cancelled: u64,
    /// Requests answered with a `deadline_exceeded` error (per-request
    /// `deadline_ms` or the server-side default deadline fired).
    pub deadlines_exceeded: u64,
    /// Fair-share invariant breaches: pops that served a tenant twice
    /// consecutively while another tenant had been waiting since the
    /// previous pop. Structurally zero — a nonzero value means the
    /// scheduler starved someone.
    pub fair_share_violations: u64,
    /// Jobs waiting in the scheduler queue (last observed).
    pub queue_depth: u64,
    /// Highest queue depth observed so far.
    pub queue_high_water: u64,
    /// Response-cache byte budget (`0` = caching disabled).
    pub cache_capacity_bytes: u64,
    /// Response-cache resident entries.
    pub cache_entries: u64,
    /// Response-cache resident bytes (keys + values + overhead).
    pub cache_bytes: u64,
    /// Response-cache lookup hits.
    pub cache_hits: u64,
    /// Response-cache lookup misses.
    pub cache_misses: u64,
    /// Response-cache evictions under the byte budget.
    pub cache_evictions: u64,
    /// Response-cache insertions (distinct stored entries).
    pub cache_insertions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let hub = MetricsHub::new(3, 12, 4, 6);
        let cache = ResponseCache::new(1 << 12);
        hub.connection_opened();
        hub.connection_opened();
        hub.connection_closed();
        hub.request_submitted();
        hub.response_written();
        hub.read_timeout();
        hub.io_error();
        hub.observe_queue_depth(5);
        hub.observe_queue_depth(2);
        cache.insert(b"k", "v");
        let _ = cache.get(b"k");

        let snap = hub.snapshot(&cache);
        assert_eq!(snap.lanes, 3);
        assert_eq!(snap.queue_capacity, 12);
        assert_eq!(snap.pipeline_depth, 4);
        assert_eq!(snap.tenant_quota, 6);
        assert_eq!(snap.fair_share_violations, 0);
        assert_eq!(snap.connections_accepted, 2);
        assert_eq!(snap.connections_active, 1);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses, 1);
        assert_eq!(snap.read_timeouts, 1);
        assert_eq!(snap.io_errors, 1);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_high_water, 5);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_insertions, 1);
    }
}
