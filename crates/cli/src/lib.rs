//! Implementation of the `gtl` command-line tool.
//!
//! Subcommands (see `gtl --help`):
//!
//! * `gtl stats <file>` — netlist statistics (`|V|`, `|E|`, pins, `A(G)`,
//!   degree profile);
//! * `gtl find <file> [options]` — run the three-phase finder and print a
//!   GTL table;
//! * `gtl score <file> --cells <ids>` — score one cell group under every
//!   metric;
//! * `gtl curve <file> --seed <id>` — CSV score curve of one linear
//!   ordering (the paper's Figures 2/3/5 raw data).
//!
//! Input formats are detected by extension: `.hgr` (hMETIS), `.aux`
//! (Bookshelf), `.v` (structural Verilog). The logic lives in this library
//! so it can be unit-tested; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use gtl_netlist::{bookshelf, hgr, verilog, CellId, CellSet, Netlist, NetlistStats, SubsetStats};
use gtl_tangled::candidate::{score_curve, CandidateConfig};
use gtl_tangled::metrics::{self, baseline, DesignContext};
use gtl_tangled::{FinderConfig, GrowthConfig, MetricKind, OrderingGrower, TangledLogicFinder};

/// Usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
gtl — tangled-logic finder (DAC 2010 reproduction)

USAGE:
  gtl stats <file>
  gtl find  <file> [--seeds N] [--min-size N] [--max-order N]
                   [--threshold F] [--metric ngtl|sd] [--rng N] [--threads N]
  gtl score <file> --cells id,id,... [--rent F]
  gtl curve <file> --seed id [--max-order N]
  gtl blocks <file> [find options] [--whitespace F]
  gtl resynth <file> [find options] [--max-fanout N] [--out <file.v>]

FILES: .hgr (hMETIS), .aux (Bookshelf/ISPD), .v (structural Verilog)
";

/// Errors surfaced to the user (message + suggested exit code).
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), code: 2 }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<gtl_netlist::NetlistError> for CliError {
    fn from(e: gtl_netlist::NetlistError) -> Self {
        Self { message: e.to_string(), code: 1 }
    }
}

/// Loads a netlist, selecting the parser from the file extension.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown extensions or parse failures.
pub fn load_netlist(path: &str) -> Result<Netlist, CliError> {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("hgr") => Ok(hgr::read(path)?),
        Some("aux") => Ok(bookshelf::read_aux(path)?.netlist),
        Some("v") => Ok(verilog::read(path)?.netlist),
        other => Err(CliError::new(format!(
            "unsupported input extension {other:?} (expected .hgr, .aux or .v)"
        ))),
    }
}

/// Runs the tool on pre-split arguments, returning the stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or parse failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::new(USAGE));
    };
    match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "find" => cmd_find(&args[1..]),
        "score" => cmd_score(&args[1..]),
        "curve" => cmd_curve(&args[1..]),
        "blocks" => cmd_blocks(&args[1..]),
        "resynth" => cmd_resynth(&args[1..]),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::new(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn want_file(args: &[String]) -> Result<&str, CliError> {
    args.first()
        .map(String::as_str)
        .ok_or_else(|| CliError::new(format!("missing input file\n\n{USAGE}")))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| CliError::new(format!("{flag} expects a valid value, got `{v}`")))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let stats = NetlistStats::compute(&netlist);
    let mut out = String::new();
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "net degree histogram (top 10):");
    for (degree, count) in stats.net_degrees.iter().take(10) {
        let _ = writeln!(out, "  {degree:>3} pins: {count}");
    }
    Ok(out)
}

fn cmd_find(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let metric = match flag_value(args, "--metric") {
        None | Some("sd") => MetricKind::GtlSd,
        Some("ngtl") => MetricKind::NGtlScore,
        Some(other) => {
            return Err(CliError::new(format!("--metric expects ngtl|sd, got `{other}`")))
        }
    };
    let config = FinderConfig {
        num_seeds: parse_flag(args, "--seeds", 100usize)?,
        min_size: parse_flag(args, "--min-size", 30usize)?,
        max_order_len: parse_flag(
            args,
            "--max-order",
            (netlist.num_cells() / 4).clamp(64, 100_000),
        )?,
        accept_threshold: parse_flag(args, "--threshold", 0.9f64)?,
        rng_seed: parse_flag(args, "--rng", 0xDACu64)?,
        threads: parse_flag(args, "--threads", 0usize)?,
        metric,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(&netlist, config).run();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "|V|={} |E|={} A(G)={:.2}  p≈{:.2}  {} candidates from {} seeds",
        netlist.num_cells(),
        netlist.num_nets(),
        result.avg_pins_per_cell,
        result.avg_rent_exponent,
        result.num_candidates,
        config.num_seeds,
    );
    let _ =
        writeln!(out, "{:<5} {:>8} {:>8} {:>9} {:>9}", "gtl", "cells", "cut", "nGTL-S", "GTL-SD");
    for (i, gtl) in result.gtls.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>8} {:>9.4} {:>9.4}",
            i, gtl.stats.size, gtl.stats.cut, gtl.ngtl_score, gtl.gtl_sd
        );
    }
    if result.gtls.is_empty() {
        let _ = writeln!(out, "(no tangled structures below the threshold)");
    }
    Ok(out)
}

fn cmd_score(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let cells_arg = flag_value(args, "--cells")
        .ok_or_else(|| CliError::new("score requires --cells id,id,..."))?;
    let mut cells = Vec::new();
    for token in cells_arg.split(',') {
        let id: usize = token
            .trim()
            .parse()
            .map_err(|_| CliError::new(format!("invalid cell id `{token}`")))?;
        if id >= netlist.num_cells() {
            return Err(CliError::new(format!(
                "cell {id} out of range (netlist has {} cells)",
                netlist.num_cells()
            )));
        }
        cells.push(CellId::new(id));
    }
    let rent: f64 = parse_flag(args, "--rent", 0.6f64)?;
    let set = CellSet::from_cells(netlist.num_cells(), cells.iter().copied());
    let stats = SubsetStats::compute(&netlist, &set);
    let ctx = DesignContext::new(&netlist, rent);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "|C|={} T(C)={} pins={} A_C={:.2} (A_G={:.2}, p={rent})",
        stats.size,
        stats.cut,
        stats.pins,
        stats.avg_pins_per_cell(),
        ctx.avg_pins_per_cell
    );
    let _ = writeln!(out, "GTL-S     = {:.4}", metrics::gtl_score(stats.cut, stats.size, rent));
    let _ = writeln!(out, "nGTL-S    = {:.4}", metrics::ngtl_score(stats.cut, stats.size, &ctx));
    let _ = writeln!(
        out,
        "GTL-SD    = {:.4}",
        metrics::gtl_sd_score(stats.cut, stats.size, stats.avg_pins_per_cell(), &ctx)
    );
    let _ = writeln!(out, "ratio cut = {:.4}", baseline::ratio_cut(&stats));
    Ok(out)
}

fn cmd_curve(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let seed: usize = parse_flag(args, "--seed", 0usize)?;
    if seed >= netlist.num_cells() {
        return Err(CliError::new(format!("--seed {seed} out of range")));
    }
    let max_order = parse_flag(args, "--max-order", (netlist.num_cells() / 4).clamp(64, 100_000))?;
    let growth = GrowthConfig { max_len: max_order, ..GrowthConfig::default() };
    let ordering = OrderingGrower::new(&netlist, growth).grow(CellId::new(seed));
    let config = CandidateConfig::default();
    let ngtl = score_curve(
        &ordering,
        netlist.avg_pins_per_cell(),
        &CandidateConfig { metric: MetricKind::NGtlScore, ..config },
    );
    let sd = score_curve(
        &ordering,
        netlist.avg_pins_per_cell(),
        &CandidateConfig { metric: MetricKind::GtlSd, ..config },
    );
    let mut out = String::from("size,cut,ngtl_s,gtl_sd\n");
    for k in 0..ordering.len() {
        let _ =
            writeln!(out, "{},{},{},{}", k + 1, ordering.cut_at(k), ngtl.scores[k], sd.scores[k]);
    }
    Ok(out)
}

/// Shared finder setup for `find`, `blocks` and `resynth`.
fn finder_from_args(netlist: &Netlist, args: &[String]) -> Result<FinderConfig, CliError> {
    let metric = match flag_value(args, "--metric") {
        None | Some("sd") => MetricKind::GtlSd,
        Some("ngtl") => MetricKind::NGtlScore,
        Some(other) => {
            return Err(CliError::new(format!("--metric expects ngtl|sd, got `{other}`")))
        }
    };
    Ok(FinderConfig {
        num_seeds: parse_flag(args, "--seeds", 100usize)?,
        min_size: parse_flag(args, "--min-size", 30usize)?,
        max_order_len: parse_flag(
            args,
            "--max-order",
            (netlist.num_cells() / 4).clamp(64, 100_000),
        )?,
        accept_threshold: parse_flag(args, "--threshold", 0.9f64)?,
        rng_seed: parse_flag(args, "--rng", 0xDACu64)?,
        threads: parse_flag(args, "--threads", 0usize)?,
        metric,
        ..FinderConfig::default()
    })
}

fn cmd_blocks(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let config = finder_from_args(&netlist, args)?;
    let whitespace: f64 = parse_flag(args, "--whitespace", 0.3f64)?;
    let result = TangledLogicFinder::new(&netlist, config).run();
    if result.gtls.is_empty() {
        return Ok("(no tangled structures found — nothing to floorplan)\n".into());
    }
    let die = gtl_place::Die::for_netlist(&netlist, 0.7);
    let placement = gtl_place::place(&netlist, &die, &gtl_place::PlacerConfig::default());
    let gtls: Vec<Vec<CellId>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
    let blocks = gtl_place::softblock::plan_soft_blocks(
        &netlist,
        &placement,
        &gtls,
        &die,
        &gtl_place::softblock::SoftBlockConfig {
            whitespace,
            ..gtl_place::softblock::SoftBlockConfig::default()
        },
    );
    let mut out = String::new();
    let _ = writeln!(out, "die {:.1} × {:.1}; {} soft blocks:", die.width, die.height, gtls.len());
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>9} {:>24}",
        "block", "cells", "score", "region (x0,y0)-(x1,y1)"
    );
    for (i, (gtl, block)) in result.gtls.iter().zip(&blocks).enumerate() {
        match block {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "B{:<5} {:>7} {:>9.4} ({:>6.1},{:>6.1})-({:>6.1},{:>6.1})",
                    i, gtl.stats.size, gtl.score, b.x0, b.y0, b.x1, b.y1
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "B{:<5} {:>7} {:>9.4} (does not fit)",
                    i, gtl.stats.size, gtl.score
                );
            }
        }
    }
    Ok(out)
}

fn cmd_resynth(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let config = finder_from_args(&netlist, args)?;
    let max_fanout: usize = parse_flag(args, "--max-fanout", 3usize)?;
    let result = TangledLogicFinder::new(&netlist, config).run();
    if result.gtls.is_empty() {
        return Ok("(no tangled structures found — nothing to resynthesize)\n".into());
    }
    let all_cells: Vec<CellId> = result.gtls.iter().flat_map(|g| g.cells.iter().copied()).collect();
    let (resynth, report) = gtl_synth::resynth::resynthesize(
        &netlist,
        &all_cells,
        &gtl_synth::resynth::ResynthConfig { max_fanout },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} GTLs ({} cells); decomposed {} nets, added {} buffers; pins {} → {}",
        result.gtls.len(),
        all_cells.len(),
        report.nets_decomposed,
        report.buffers_added,
        report.pins_before,
        report.pins_after
    );
    if let Some(path) = flag_value(args, "--out") {
        let text = verilog::to_module_string(&resynth, "resynthesized", None);
        std::fs::write(path, text).map_err(|e| CliError::new(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_path() -> String {
        // Two 5-cliques joined by one edge, as an .hgr in a temp file.
        let mut text = String::from("21 10\n");
        for base in [0, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    text.push_str(&format!("{} {}\n", base + i + 1, base + j + 1));
                }
            }
        }
        text.push_str("1 6\n");
        let dir = std::env::temp_dir().join("gtl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two_cliques.hgr");
        std::fs::write(&path, text).unwrap();
        path.display().to_string()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_command() {
        let out = run(&argv(&["stats", &fixture_path()])).unwrap();
        assert!(out.contains("|V|=10"), "{out}");
        assert!(out.contains("net degree histogram"));
    }

    #[test]
    fn find_command_locates_cliques() {
        let out = run(&argv(&[
            "find",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("gtl"), "{out}");
        // At least one 5-cell group reported.
        assert!(out.lines().any(|l| l.split_whitespace().nth(1) == Some("5")), "{out}");
    }

    #[test]
    fn score_command() {
        let out = run(&argv(&["score", &fixture_path(), "--cells", "0,1,2,3,4"])).unwrap();
        assert!(out.contains("T(C)=1"), "{out}");
        assert!(out.contains("nGTL-S"));
    }

    #[test]
    fn curve_command_is_csv() {
        let out = run(&argv(&["curve", &fixture_path(), "--seed", "0"])).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("size,cut,ngtl_s,gtl_sd"));
        assert!(lines.next().unwrap().starts_with("1,"));
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&argv(&["bogus"])).is_err());
        assert!(run(&argv(&[])).is_err());
        let err = run(&argv(&["score", &fixture_path()])).unwrap_err();
        assert!(err.message.contains("--cells"));
        let err = run(&argv(&["score", &fixture_path(), "--cells", "99"])).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn blocks_command_plans_regions() {
        let out = run(&argv(&[
            "blocks",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("soft blocks"), "{out}");
        assert!(out.contains("B0"), "{out}");
    }

    #[test]
    fn resynth_command_reports_and_writes() {
        let dir = std::env::temp_dir().join("gtl_cli_test");
        let out_v = dir.join("resynth.v");
        let out = run(&argv(&[
            "resynth",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
            "--max-fanout",
            "2",
            "--out",
            &out_v.display().to_string(),
        ]))
        .unwrap();
        assert!(out.contains("GTLs"), "{out}");
        let text = std::fs::read_to_string(&out_v).unwrap();
        assert!(text.starts_with("module resynthesized"));
    }

    #[test]
    fn unknown_extension_rejected() {
        let err = load_netlist("/tmp/whatever.xyz").unwrap_err();
        assert!(err.message.contains("unsupported"));
    }
}
