//! Implementation of the `gtl` command-line tool.
//!
//! Subcommands (see `gtl --help`):
//!
//! * `gtl stats <file>` — netlist statistics (`|V|`, `|E|`, pins, `A(G)`,
//!   degree profile);
//! * `gtl find <file> [options]` — run the three-phase finder and print a
//!   GTL table, or the [`gtl_api::FindResponse`] JSON with `--json`;
//! * `gtl score <file> --cells <ids>` — score one cell group under every
//!   metric;
//! * `gtl curve <file> --seed <id>` — CSV score curve of one linear
//!   ordering (the paper's Figures 2/3/5 raw data);
//! * `gtl synth --cells N --out <file.hgr>` — stream a synthetic
//!   ISPD-like design to disk in bounded memory (see
//!   [`gtl_synth::stream`]);
//! * `gtl serve <file>` — the JSON-lines request server (see
//!   [`gtl_api::serve`](mod@gtl_api::serve));
//! * `gtl loadgen record|replay` — capture live serve traffic into a
//!   deterministic trace and drive it back open- or closed-loop (see
//!   [`gtl_loadgen`]).
//!
//! Input formats are detected by extension: `.hgr` (hMETIS), `.aux`
//! (Bookshelf), `.v` (structural Verilog). Errors carry structured
//! [`ApiError`] codes; exit codes are documented in the `--help` text.
//! The logic lives in this library so it can be unit-tested; `main.rs`
//! is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use gtl_api::{ApiError, FindRequest, Session};
use gtl_netlist::{verilog, CellId, CellSet, Netlist, NetlistStats, SubsetStats};
use gtl_tangled::candidate::{score_curve, CandidateConfig};
use gtl_tangled::metrics::{self, baseline, DesignContext};
use gtl_tangled::{FinderConfig, GrowthConfig, MetricKind, OrderingGrower, TangledLogicFinder};

/// Usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
gtl — tangled-logic finder (DAC 2010 reproduction)

USAGE:
  gtl stats <file>
  gtl find  <file> [--seeds N] [--min-size N] [--max-order N]
                   [--threshold F] [--metric ngtl|sd] [--rng N] [--threads N]
                   [--json]
  gtl score <file> --cells id,id,... [--rent F]
  gtl curve <file> --seed id [--max-order N]
  gtl blocks <file> [find options] [--whitespace F]
  gtl resynth <file> [find options] [--max-fanout N] [--out <file.v>]
  gtl synth --cells N --out <file.hgr> [--seed N] [--rent F]
                   [--structures N]
  gtl serve <file> [--addr A] [--port N] [--max-conns N]
                   [--lanes N] [--queue-depth N] [--cache-bytes N]
                   [--pipeline K] [--timeout-ms N] [--max-concurrent N]
                   [--deadline-ms N] [--netlist-dir D] [--max-netlists N]
                   [--registry-bytes N] [--tenant-quota N]
                   [--metrics-port N]
  gtl loadgen record --listen A:P --upstream A:P --out <trace.jsonl>
                   [--max-conns N] [--connect-timeout-ms N]
  gtl loadgen replay (--trace <trace.jsonl> | --requests <lines.json>)
                   --addr A:P [--mode closed|open] [--inflight N]
                   [--rate F] [--repeat N] [--out F] [--summary F]
                   [--expect F] [--scrape-addr A:P] [--scrape-out F]
                   [--connect-timeout-ms N]

FILES: .hgr (hMETIS), .aux (Bookshelf/ISPD), .v (structural Verilog)

SERVE RUNTIME (gtl-runtime; see ARCHITECTURE.md):
  --lanes N           compute lanes executing requests (0 = all cores)
  --queue-depth N     bounded job queue feeding the lanes (0 = auto);
                      full queue = backpressure, never unbounded buffering
  --cache-bytes N     deterministic LRU response-cache budget
                      (default 67108864 = 64 MiB; 0 disables caching)
  --pipeline K        max in-flight requests per connection (default 8);
                      responses always return in request order
  --timeout-ms N      per-connection idle timeout (default 30000;
                      0 = wait forever); waiting on a slow response
                      does not count as idle
  --max-concurrent N  concurrently open connections (0 = unbounded);
                      excess clients wait in the listen backlog
  --max-conns N       total connections before a clean exit (0 = forever)
  --deadline-ms N     server-side default deadline per request
                      (0 = unbounded); measured from request admission,
                      so queue wait counts. An expired request answers
                      an error with code deadline_exceeded without
                      consuming compute. Requests may narrow it further
                      with their own deadline_ms field (protocol v3+);
                      a job whose client disconnects is cancelled at its
                      next checkpoint either way.
  --netlist-dir D     root directory for LoadNetlist paths (protocol
                      v4+); without it the session registry refuses
                      loads. Paths must be relative and stay inside D.
  --max-netlists N    named sessions held at once (0 = unlimited);
                      loading past the cap evicts the coldest session
                      deterministically
  --registry-bytes N  byte budget over all loaded netlists
                      (0 = unlimited); same deterministic LRU eviction
  --tenant-quota N    per-session cap on queued jobs (0 = auto =
                      queue depth); admission round-robins across
                      sessions so one flooding tenant cannot starve
                      another
  --metrics-port N    also answer plain-HTTP `GET /metrics` scrapes on
                      this side port (Prometheus text format 0.0.4,
                      same address as --addr; protocol v5 serves the
                      same rendering as a {\"MetricsText\":..} request).
                      On exit, the summary prints p50/p95/p99 latency
                      per request kind.

LOADGEN (gtl-loadgen; see ARCHITECTURE.md):
  record            transparent TCP tee: clients connect to --listen,
                    bytes forward to --upstream and back, and every
                    request line lands in --out as a versioned
                    JSON-lines trace (connection id, per-connection
                    sequence number, arrival offset in microseconds)
  replay            drive a trace (or a raw request-line file via
                    --requests) against the server at --addr.
                    Connections are established serially in
                    connection-id order and retried while the server
                    boots (--connect-timeout-ms, default 10000), so
                    scripted callers need no external wait loop.
                    --mode closed (default) keeps --inflight requests
                    outstanding per connection (default 1 = serial);
                    --mode open sends at the recorded arrival offsets,
                    or at --rate requests/second across the trace.
                    --repeat N loops the trace back to back. --out
                    writes the deterministic response log (connections
                    in id order, responses in sequence order),
                    --summary the machine-readable req/s + per-kind
                    p50/p95/p99 JSON (the results/loadgen.json shape
                    the bench-trend gate tracks), and --expect
                    byte-compares the log against a golden file —
                    drift exits 1 after the log is written.
                    --scrape-addr/--scrape-out fetch GET /metrics from
                    the v5 side port while the replay connections are
                    still open.

EXIT CODES (from the structured ApiError codes; see gtl_api):
  0  success
  1  netlist load/parse error, or response drift
     under `gtl loadgen replay --expect`           [netlist]
  2  bad arguments or malformed request        [bad_request, invalid_argument,
                                                unsupported_version,
                                                unknown_session]
  3  I/O failure (socket, file)                [io]
  4  deadline expired or request cancelled     [deadline_exceeded, cancelled]

`gtl find --json` prints one FindResponse JSON document: byte-identical
to the payload a `gtl serve` round-trip returns for the same request,
for any --threads value, --lanes count, --cache-bytes budget (hits are
byte-identical to fresh computes) and --pipeline depth. `gtl serve`
speaks JSON lines on plain TCP: one {\"Find\":..} | {\"Place\":..} |
{\"Stats\":..} | {\"Metrics\":..} | {\"MetricsText\":..} |
{\"LoadNetlist\":..} | {\"UnloadNetlist\":..} | {\"ListSessions\":..}
envelope per line in, one response envelope per line out, in request
order (see ARCHITECTURE.md). Protocol v4 adds named sessions:
Find/Place/Stats take an optional session field addressing a netlist
loaded via LoadNetlist. Protocol v5 adds observability: every v5
response is stamped with a per-request trace ID (its last body field),
and MetricsText returns the Prometheus text rendering of the runtime
counters and latency histograms.
";

/// A structured API error plus the CLI context it surfaced in.
///
/// Thin wrapper over [`ApiError`] so the binary can exit with the
/// error's conventional code (`err.exit_code()`) and print its stable
/// code tag (`[bad_request]`, `[netlist]`, …).
#[derive(Debug)]
pub struct CliError {
    /// The structured error.
    pub error: ApiError,
}

impl CliError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self { error: ApiError::bad_request(message) }
    }

    /// Process exit code (see `EXIT CODES` in [`USAGE`]).
    pub fn exit_code(&self) -> i32 {
        self.error.exit_code()
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for CliError {}

impl From<ApiError> for CliError {
    fn from(error: ApiError) -> Self {
        Self { error }
    }
}

impl From<gtl_netlist::NetlistError> for CliError {
    fn from(e: gtl_netlist::NetlistError) -> Self {
        Self { error: e.into() }
    }
}

/// Loads a netlist, selecting the parser from the file extension
/// (delegates to [`gtl_api::load_netlist`]).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown extensions or parse failures.
pub fn load_netlist(path: &str) -> Result<Netlist, CliError> {
    Ok(gtl_api::load_netlist(path)?)
}

/// Runs the tool on pre-split arguments, returning the stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] on bad arguments or parse failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::bad_request(USAGE));
    };
    match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "find" => cmd_find(&args[1..]),
        "score" => cmd_score(&args[1..]),
        "curve" => cmd_curve(&args[1..]),
        "blocks" => cmd_blocks(&args[1..]),
        "resynth" => cmd_resynth(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "loadgen" => cmd_loadgen(&args[1..]),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::bad_request(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn want_file(args: &[String]) -> Result<&str, CliError> {
    args.first()
        .map(String::as_str)
        .ok_or_else(|| CliError::bad_request(format!("missing input file\n\n{USAGE}")))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::bad_request(format!("{flag} expects a valid value, got `{v}`"))),
    }
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let stats = NetlistStats::compute(&netlist);
    let mut out = String::new();
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "net degree histogram (top 10):");
    for (degree, count) in stats.net_degrees.iter().take(10) {
        let _ = writeln!(out, "  {degree:>3} pins: {count}");
    }
    Ok(out)
}

fn cmd_find(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let config = finder_from_args(&netlist, args)?;
    if args.iter().any(|a| a == "--json") {
        // Same contract as one `gtl serve` round-trip: build the session,
        // dispatch a FindRequest, print the FindResponse JSON — the exact
        // payload bytes the server would answer with.
        let session = Session::builder().netlist(netlist).build()?;
        let response = session.find(&FindRequest::new(config))?;
        return Ok(serde::json::to_string(&response) + "\n");
    }
    let result = TangledLogicFinder::new(&netlist, config).run();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "|V|={} |E|={} A(G)={:.2}  p≈{:.2}  {} candidates from {} seeds",
        netlist.num_cells(),
        netlist.num_nets(),
        result.avg_pins_per_cell,
        result.avg_rent_exponent,
        result.num_candidates,
        config.num_seeds,
    );
    let _ =
        writeln!(out, "{:<5} {:>8} {:>8} {:>9} {:>9}", "gtl", "cells", "cut", "nGTL-S", "GTL-SD");
    for (i, gtl) in result.gtls.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<5} {:>8} {:>8} {:>9.4} {:>9.4}",
            i, gtl.stats.size, gtl.stats.cut, gtl.ngtl_score, gtl.gtl_sd
        );
    }
    if result.gtls.is_empty() {
        let _ = writeln!(out, "(no tangled structures below the threshold)");
    }
    Ok(out)
}

fn cmd_score(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let cells_arg = flag_value(args, "--cells")
        .ok_or_else(|| CliError::bad_request("score requires --cells id,id,..."))?;
    let mut cells = Vec::new();
    for token in cells_arg.split(',') {
        let id: usize = token
            .trim()
            .parse()
            .map_err(|_| CliError::bad_request(format!("invalid cell id `{token}`")))?;
        if id >= netlist.num_cells() {
            return Err(CliError::bad_request(format!(
                "cell {id} out of range (netlist has {} cells)",
                netlist.num_cells()
            )));
        }
        cells.push(CellId::new(id));
    }
    let rent: f64 = parse_flag(args, "--rent", 0.6f64)?;
    let set = CellSet::from_cells(netlist.num_cells(), cells.iter().copied());
    let stats = SubsetStats::compute(&netlist, &set);
    let ctx = DesignContext::new(&netlist, rent);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "|C|={} T(C)={} pins={} A_C={:.2} (A_G={:.2}, p={rent})",
        stats.size,
        stats.cut,
        stats.pins,
        stats.avg_pins_per_cell(),
        ctx.avg_pins_per_cell
    );
    let _ = writeln!(out, "GTL-S     = {:.4}", metrics::gtl_score(stats.cut, stats.size, rent));
    let _ = writeln!(out, "nGTL-S    = {:.4}", metrics::ngtl_score(stats.cut, stats.size, &ctx));
    let _ = writeln!(
        out,
        "GTL-SD    = {:.4}",
        metrics::gtl_sd_score(stats.cut, stats.size, stats.avg_pins_per_cell(), &ctx)
    );
    let _ = writeln!(out, "ratio cut = {:.4}", baseline::ratio_cut(&stats));
    Ok(out)
}

fn cmd_curve(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let seed: usize = parse_flag(args, "--seed", 0usize)?;
    if seed >= netlist.num_cells() {
        return Err(CliError::bad_request(format!("--seed {seed} out of range")));
    }
    let max_order = parse_flag(args, "--max-order", (netlist.num_cells() / 4).clamp(64, 100_000))?;
    let growth = GrowthConfig { max_len: max_order, ..GrowthConfig::default() };
    let ordering = OrderingGrower::new(&netlist, growth).grow(CellId::new(seed));
    let config = CandidateConfig::default();
    let ngtl = score_curve(
        &ordering,
        netlist.avg_pins_per_cell(),
        &CandidateConfig { metric: MetricKind::NGtlScore, ..config },
    );
    let sd = score_curve(
        &ordering,
        netlist.avg_pins_per_cell(),
        &CandidateConfig { metric: MetricKind::GtlSd, ..config },
    );
    let mut out = String::from("size,cut,ngtl_s,gtl_sd\n");
    for k in 0..ordering.len() {
        let _ =
            writeln!(out, "{},{},{},{}", k + 1, ordering.cut_at(k), ngtl.scores[k], sd.scores[k]);
    }
    Ok(out)
}

/// Shared finder setup for `find`, `blocks` and `resynth`.
fn finder_from_args(netlist: &Netlist, args: &[String]) -> Result<FinderConfig, CliError> {
    let metric = match flag_value(args, "--metric") {
        None | Some("sd") => MetricKind::GtlSd,
        Some("ngtl") => MetricKind::NGtlScore,
        Some(other) => {
            return Err(CliError::bad_request(format!("--metric expects ngtl|sd, got `{other}`")))
        }
    };
    Ok(FinderConfig {
        num_seeds: parse_flag(args, "--seeds", 100usize)?,
        min_size: parse_flag(args, "--min-size", 30usize)?,
        max_order_len: parse_flag(
            args,
            "--max-order",
            (netlist.num_cells() / 4).clamp(64, 100_000),
        )?,
        accept_threshold: parse_flag(args, "--threshold", 0.9f64)?,
        rng_seed: parse_flag(args, "--rng", 0xDACu64)?,
        threads: parse_flag(args, "--threads", 0usize)?,
        metric,
        ..FinderConfig::default()
    })
}

fn cmd_blocks(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let config = finder_from_args(&netlist, args)?;
    let whitespace: f64 = parse_flag(args, "--whitespace", 0.3f64)?;
    let result = TangledLogicFinder::new(&netlist, config).run();
    if result.gtls.is_empty() {
        return Ok("(no tangled structures found — nothing to floorplan)\n".into());
    }
    let die = gtl_place::Die::for_netlist(&netlist, 0.7);
    let placement = gtl_place::place(&netlist, &die, &gtl_place::PlacerConfig::default());
    let gtls: Vec<Vec<CellId>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
    let blocks = gtl_place::softblock::plan_soft_blocks(
        &netlist,
        &placement,
        &gtls,
        &die,
        &gtl_place::softblock::SoftBlockConfig {
            whitespace,
            ..gtl_place::softblock::SoftBlockConfig::default()
        },
    );
    let mut out = String::new();
    let _ = writeln!(out, "die {:.1} × {:.1}; {} soft blocks:", die.width, die.height, gtls.len());
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>9} {:>24}",
        "block", "cells", "score", "region (x0,y0)-(x1,y1)"
    );
    for (i, (gtl, block)) in result.gtls.iter().zip(&blocks).enumerate() {
        match block {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "B{:<5} {:>7} {:>9.4} ({:>6.1},{:>6.1})-({:>6.1},{:>6.1})",
                    i, gtl.stats.size, gtl.score, b.x0, b.y0, b.x1, b.y1
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "B{:<5} {:>7} {:>9.4} (does not fit)",
                    i, gtl.stats.size, gtl.score
                );
            }
        }
    }
    Ok(out)
}

fn cmd_resynth(args: &[String]) -> Result<String, CliError> {
    let netlist = load_netlist(want_file(args)?)?;
    let config = finder_from_args(&netlist, args)?;
    let max_fanout: usize = parse_flag(args, "--max-fanout", 3usize)?;
    let result = TangledLogicFinder::new(&netlist, config).run();
    if result.gtls.is_empty() {
        return Ok("(no tangled structures found — nothing to resynthesize)\n".into());
    }
    let all_cells: Vec<CellId> = result.gtls.iter().flat_map(|g| g.cells.iter().copied()).collect();
    let (resynth, report) = gtl_synth::resynth::resynthesize(
        &netlist,
        &all_cells,
        &gtl_synth::resynth::ResynthConfig { max_fanout },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} GTLs ({} cells); decomposed {} nets, added {} buffers; pins {} → {}",
        result.gtls.len(),
        all_cells.len(),
        report.nets_decomposed,
        report.buffers_added,
        report.pins_before,
        report.pins_after
    );
    if let Some(path) = flag_value(args, "--out") {
        let text = verilog::to_module_string(&resynth, "resynthesized", None);
        std::fs::write(path, text)
            .map_err(|e| CliError::from(ApiError::io(format!("write {path}: {e}"))))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// `gtl synth`: stream a multi-million-cell ISPD-like design to disk in
/// bounded memory (see [`gtl_synth::stream`]). Output is `.hgr`, the
/// format the streaming parser and `--netlist-dir` session loads consume.
fn cmd_synth(args: &[String]) -> Result<String, CliError> {
    let cells: usize = parse_flag(args, "--cells", 0usize)?;
    if cells < 64 {
        return Err(CliError::bad_request("synth requires --cells N (at least 64)"));
    }
    let out = flag_value(args, "--out")
        .ok_or_else(|| CliError::bad_request("synth requires --out <file.hgr>"))?;
    let mut config = gtl_synth::stream::StreamDesignConfig::new(cells);
    config.seed = parse_flag(args, "--seed", config.seed)?;
    config.rent_exponent = parse_flag(args, "--rent", config.rent_exponent)?;
    config.structures = parse_flag(args, "--structures", config.structures)?;
    let stats = gtl_synth::stream::write_hgr_file(&config, out)?;
    Ok(format!(
        "wrote {out}: {} cells, {} nets, {} pins (seed {:#x}, rent {}, {} structures)\n",
        stats.cells, stats.nets, stats.pins, config.seed, config.rent_exponent, config.structures,
    ))
}

/// `gtl serve`: bind a TCP listener and answer JSON-lines requests over
/// the loaded netlist on the bounded `gtl-runtime` (compute lanes,
/// response cache, pipelining, timeouts) until the connection budget
/// (`--max-conns`, `0` = unlimited) is exhausted.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let path = want_file(args)?;
    let netlist = load_netlist(path)?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1");
    let port: u16 = parse_flag(args, "--port", 7878u16)?;
    let max_conns: usize = parse_flag(args, "--max-conns", 0usize)?;
    let lanes: usize = parse_flag(args, "--lanes", 0usize)?;
    let queue_depth: usize = parse_flag(args, "--queue-depth", 0usize)?;
    let cache_bytes: usize = parse_flag(args, "--cache-bytes", 64usize << 20)?;
    let pipeline: usize = parse_flag(args, "--pipeline", 8usize)?;
    let timeout_ms: u64 = parse_flag(args, "--timeout-ms", 30_000u64)?;
    let max_concurrent: usize = parse_flag(args, "--max-concurrent", 0usize)?;
    let deadline_ms: u64 = parse_flag(args, "--deadline-ms", 0u64)?;
    let max_netlists: usize = parse_flag(args, "--max-netlists", 0usize)?;
    let registry_bytes: usize = parse_flag(args, "--registry-bytes", 0usize)?;
    let tenant_quota: usize = parse_flag(args, "--tenant-quota", 0usize)?;
    let metrics_port: u16 = parse_flag(args, "--metrics-port", 0u16)?;
    let netlist_dir = flag_value(args, "--netlist-dir").map(std::path::PathBuf::from);
    let session = Session::builder().netlist(netlist).build()?;
    let listener = gtl_api::bind(&format!("{addr}:{port}"))?;
    let local = listener.local_addr().map_err(ApiError::from)?;
    let metrics_listener = if metrics_port > 0 {
        let l = gtl_api::bind(&format!("{addr}:{metrics_port}"))?;
        let at = l.local_addr().map_err(ApiError::from)?;
        eprintln!("gtl: Prometheus scrape endpoint at http://{at}/metrics");
        Some(l)
    } else {
        None
    };
    let options = gtl_api::ServeOptions::new()
        .lanes(lanes)
        .queue_depth(queue_depth)
        .cache_bytes(cache_bytes)
        .pipeline_depth(pipeline)
        .timeout((timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)))
        .max_concurrent((max_concurrent > 0).then_some(max_concurrent))
        .max_connections((max_conns > 0).then_some(max_conns))
        .deadline((deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)))
        .max_netlists(max_netlists)
        .registry_bytes(registry_bytes)
        .netlist_dir(netlist_dir)
        .tenant_quota(tenant_quota);
    // Readiness goes to stderr immediately (stdout is returned only when
    // the server finishes, which without --max-conns is never).
    eprintln!("gtl: serving {path} on {local} (JSON lines; Ctrl-C to stop)");
    let summary =
        gtl_api::serve_with_metrics(&session, &listener, &options, metrics_listener.as_ref())?;
    Ok(render_serve_summary(&summary))
}

/// Renders the `gtl serve` exit summary: the counter one-liner,
/// per-request-kind latency percentiles, and any connection I/O errors.
fn render_serve_summary(summary: &gtl_api::ServeSummary) -> String {
    let m = &summary.metrics;
    let mut out = format!(
        "served {} connection(s): {} requests, {} responses, cache {} hit(s) / {} miss(es) / {} \
         eviction(s), queue high-water {}, {} timeout(s), {} cancelled, {} deadline-exceeded, \
         sessions {} loaded / {} evicted / {} unloaded\n",
        summary.connections,
        m.requests,
        m.responses,
        m.cache_hits,
        m.cache_misses,
        m.cache_evictions,
        m.queue_high_water,
        m.read_timeouts,
        m.jobs_cancelled,
        m.deadlines_exceeded,
        m.sessions_loaded,
        m.sessions_evicted,
        m.sessions_unloaded,
    );
    // Per-request-kind latency percentiles (µs, bucket upper bounds) —
    // only kinds that actually served requests appear.
    for kind in &m.kind_latency {
        if kind.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "latency[{}]: {} request(s), p50 {}us, p95 {}us, p99 {}us, max {}us",
            kind.label, kind.count, kind.p50_us, kind.p95_us, kind.p99_us, kind.max_us,
        );
    }
    let dropped = summary.dropped_io_errors;
    if !summary.io_errors.is_empty() || dropped > 0 {
        let _ = writeln!(
            out,
            "{} connection I/O error(s){}:",
            summary.io_errors.len() + dropped,
            if dropped > 0 { format!(" ({dropped} not shown)") } else { String::new() }
        );
        for error in &summary.io_errors {
            let _ = writeln!(out, "  {error}");
        }
    }
    out
}

/// `gtl loadgen`: recorded-trace load generation for the serve path
/// (see [`gtl_loadgen`]). `record` captures live traffic through a
/// transparent proxy/tee; `replay` drives a trace back open- or
/// closed-loop with per-kind latency percentiles and optional golden
/// comparison.
fn cmd_loadgen(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("record") => cmd_loadgen_record(&args[1..]),
        Some("replay") => cmd_loadgen_replay(&args[1..]),
        _ => Err(CliError::bad_request(format!(
            "loadgen requires a `record` or `replay` subcommand\n\n{USAGE}"
        ))),
    }
}

fn cmd_loadgen_record(args: &[String]) -> Result<String, CliError> {
    let listen = flag_value(args, "--listen")
        .ok_or_else(|| CliError::bad_request("loadgen record requires --listen <addr:port>"))?;
    let upstream = flag_value(args, "--upstream")
        .ok_or_else(|| CliError::bad_request("loadgen record requires --upstream <addr:port>"))?;
    let out = flag_value(args, "--out")
        .ok_or_else(|| CliError::bad_request("loadgen record requires --out <trace.jsonl>"))?;
    let mut options = gtl_loadgen::record::RecordOptions::new(listen, upstream, out);
    options.max_conns = parse_flag(args, "--max-conns", 0usize)?;
    options.connect_timeout =
        std::time::Duration::from_millis(parse_flag(args, "--connect-timeout-ms", 10_000u64)?);
    // Readiness goes to stderr immediately (stdout is returned only when
    // the connection budget is exhausted, which without --max-conns is
    // never).
    eprintln!("gtl: recording {listen} -> {upstream} into {out} (Ctrl-C to stop)");
    let summary = gtl_loadgen::record::record(&options)?;
    Ok(format!(
        "recorded {} connection(s), {} request line(s) to {out}\n",
        summary.connections, summary.requests
    ))
}

fn cmd_loadgen_replay(args: &[String]) -> Result<String, CliError> {
    use gtl_loadgen::replay::{ReplayMode, ReplayOptions};
    let addr = flag_value(args, "--addr")
        .ok_or_else(|| CliError::bad_request("loadgen replay requires --addr <addr:port>"))?;
    let records = match (flag_value(args, "--trace"), flag_value(args, "--requests")) {
        (Some(path), None) => gtl_loadgen::trace::read_trace(path)?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::from(ApiError::io(format!("read {path}: {e}"))))?;
            gtl_loadgen::trace::from_request_lines(&text)
        }
        _ => {
            return Err(CliError::bad_request(
                "loadgen replay requires exactly one of --trace or --requests",
            ))
        }
    };
    // --rate alone implies open loop; --mode settles any ambiguity.
    let default_mode = if flag_value(args, "--rate").is_some() { "open" } else { "closed" };
    let mode = match flag_value(args, "--mode").unwrap_or(default_mode) {
        "closed" => ReplayMode::Closed { inflight: parse_flag(args, "--inflight", 1usize)? },
        "open" => ReplayMode::Open { rate: parse_flag(args, "--rate", 0.0f64)? },
        other => {
            return Err(CliError::bad_request(format!(
                "--mode expects `closed` or `open`, got `{other}`"
            )))
        }
    };
    let mut options = ReplayOptions::new(addr);
    options.mode = mode;
    options.repeat = parse_flag(args, "--repeat", 1usize)?;
    options.connect_timeout =
        std::time::Duration::from_millis(parse_flag(args, "--connect-timeout-ms", 10_000u64)?);
    options.out = flag_value(args, "--out").map(std::path::PathBuf::from);
    options.summary_out = flag_value(args, "--summary").map(std::path::PathBuf::from);
    options.expect = flag_value(args, "--expect").map(std::path::PathBuf::from);
    options.scrape_addr = flag_value(args, "--scrape-addr").map(str::to_string);
    options.scrape_out = flag_value(args, "--scrape-out").map(std::path::PathBuf::from);
    let connections = {
        let mut ids: Vec<u32> = records.iter().map(|r| r.conn).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    let report = gtl_loadgen::replay::run(&records, &options)?;
    let mode_text = match report.mode {
        ReplayMode::Closed { inflight } => format!("closed, inflight {inflight}"),
        ReplayMode::Open { rate } if rate > 0.0 => format!("open, {rate} req/s target"),
        ReplayMode::Open { .. } => "open, recorded offsets".to_string(),
    };
    let mut out = format!(
        "replayed {} request(s) over {connections} connection(s): {} response(s), {:.0} req/s \
         ({mode_text}, wall {:.3}s)\n",
        report.requests, report.responses, report.req_per_s, report.wall_seconds,
    );
    for kind in &report.kinds {
        let _ = writeln!(
            out,
            "latency[{}]: {} request(s), p50 {}us, p95 {}us, p99 {}us, max {}us",
            kind.kind, kind.count, kind.p50_us, kind.p95_us, kind.p99_us, kind.max_us,
        );
    }
    if let Some(expect) = &options.expect {
        let _ = writeln!(out, "responses match {}", expect.display());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_path() -> String {
        // Two 5-cliques joined by one edge, as an .hgr in a temp file.
        let mut text = String::from("21 10\n");
        for base in [0, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    text.push_str(&format!("{} {}\n", base + i + 1, base + j + 1));
                }
            }
        }
        text.push_str("1 6\n");
        let dir = std::env::temp_dir().join("gtl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two_cliques.hgr");
        std::fs::write(&path, text).unwrap();
        path.display().to_string()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_command() {
        let out = run(&argv(&["stats", &fixture_path()])).unwrap();
        assert!(out.contains("|V|=10"), "{out}");
        assert!(out.contains("net degree histogram"));
    }

    #[test]
    fn find_command_locates_cliques() {
        let out = run(&argv(&[
            "find",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("gtl"), "{out}");
        // At least one 5-cell group reported.
        assert!(out.lines().any(|l| l.split_whitespace().nth(1) == Some("5")), "{out}");
    }

    #[test]
    fn score_command() {
        let out = run(&argv(&["score", &fixture_path(), "--cells", "0,1,2,3,4"])).unwrap();
        assert!(out.contains("T(C)=1"), "{out}");
        assert!(out.contains("nGTL-S"));
    }

    #[test]
    fn curve_command_is_csv() {
        let out = run(&argv(&["curve", &fixture_path(), "--seed", "0"])).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("size,cut,ngtl_s,gtl_sd"));
        assert!(lines.next().unwrap().starts_with("1,"));
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&argv(&["bogus"])).is_err());
        assert!(run(&argv(&[])).is_err());
        let err = run(&argv(&["score", &fixture_path()])).unwrap_err();
        assert!(err.to_string().contains("--cells"));
        assert_eq!(err.exit_code(), 2);
        let err = run(&argv(&["score", &fixture_path(), "--cells", "99"])).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn blocks_command_plans_regions() {
        let out = run(&argv(&[
            "blocks",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("soft blocks"), "{out}");
        assert!(out.contains("B0"), "{out}");
    }

    #[test]
    fn resynth_command_reports_and_writes() {
        let dir = std::env::temp_dir().join("gtl_cli_test");
        let out_v = dir.join("resynth.v");
        let out = run(&argv(&[
            "resynth",
            &fixture_path(),
            "--seeds",
            "10",
            "--min-size",
            "3",
            "--max-order",
            "10",
            "--max-fanout",
            "2",
            "--out",
            &out_v.display().to_string(),
        ]))
        .unwrap();
        assert!(out.contains("GTLs"), "{out}");
        let text = std::fs::read_to_string(&out_v).unwrap();
        assert!(text.starts_with("module resynthesized"));
    }

    #[test]
    fn synth_command_streams_design_to_disk() {
        let dir = std::env::temp_dir().join("gtl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synth.hgr");
        let path = path.display().to_string();
        let out = run(&argv(&["synth", "--cells", "500", "--out", &path])).unwrap();
        assert!(out.contains("500 cells"), "{out}");
        let nl = load_netlist(&path).unwrap();
        assert_eq!(nl.num_cells(), 500);
        // Same config twice = byte-identical file.
        let first = std::fs::read(&path).unwrap();
        run(&argv(&["synth", "--cells", "500", "--out", &path])).unwrap();
        assert_eq!(first, std::fs::read(&path).unwrap());
        // Bad arguments map to exit code 2, not a panic.
        let err = run(&argv(&["synth", "--cells", "10", "--out", &path])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&argv(&["synth", "--cells", "100"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
    }

    #[test]
    fn find_json_matches_session_dispatch() {
        let path = fixture_path();
        let args =
            ["find", &path, "--seeds", "10", "--min-size", "3", "--max-order", "10", "--json"];
        let out = run(&argv(&args)).unwrap();
        assert!(out.starts_with("{\"v\":5,"), "{out}");
        assert!(out.ends_with("\n"));
        // Byte-identical to dispatching the equivalent request in-process.
        let netlist = load_netlist(&path).unwrap();
        let config = finder_from_args(&netlist, &argv(&args[1..])).unwrap();
        let session = Session::builder().netlist(netlist).build().unwrap();
        let expected = serde::json::to_string(&session.find(&FindRequest::new(config)).unwrap());
        assert_eq!(out.trim_end(), expected);
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let err = run(&argv(&["serve", &fixture_path(), "--port", "notaport"])).unwrap_err();
        assert_eq!(err.error.code(), "bad_request");
        for flag in [
            "--lanes",
            "--queue-depth",
            "--cache-bytes",
            "--pipeline",
            "--timeout-ms",
            "--max-concurrent",
            "--max-conns",
            "--deadline-ms",
            "--max-netlists",
            "--registry-bytes",
            "--tenant-quota",
        ] {
            let err = run(&argv(&["serve", &fixture_path(), flag, "bogus"])).unwrap_err();
            assert_eq!(err.error.code(), "bad_request", "{flag}");
        }
        let err = run(&argv(&["serve"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn serve_with_zero_budget_reports_summary() {
        // --max-conns handling goes through the full runtime path; a
        // 0-connection budget is represented as `None` (run forever), so
        // use port 0 + max-conns 1 … which would block. Instead check the
        // summary formatting via the api layer directly.
        let netlist = load_netlist(&fixture_path()).unwrap();
        let session = Session::builder().netlist(netlist).build().unwrap();
        let listener = gtl_api::bind("127.0.0.1:0").unwrap();
        let options = gtl_api::ServeOptions::new().max_connections(Some(0));
        let summary = gtl_api::serve(&session, &listener, &options).unwrap();
        assert_eq!(summary.connections, 0);
        assert!(summary.io_errors.is_empty());
        let rendered = render_serve_summary(&summary);
        assert!(rendered.starts_with("served 0 connection(s):"), "{rendered}");
        // No requests were served, so no latency lines appear.
        assert!(!rendered.contains("latency["), "{rendered}");
    }

    #[test]
    fn serve_summary_prints_percentiles_per_request_kind() {
        // Drive one find request through a real server so the kind
        // histogram is populated, then check the rendered exit summary.
        use std::io::{BufRead as _, BufReader, Write as _};
        let netlist = load_netlist(&fixture_path()).unwrap();
        let session = Session::builder().netlist(netlist).build().unwrap();
        let listener = gtl_api::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = gtl_api::ServeOptions::new().lanes(1).max_connections(Some(1));
        let summary = std::thread::scope(|scope| {
            let server = scope.spawn(|| gtl_api::serve(&session, &listener, &options).unwrap());
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            let line =
                serde::json::to_string(&gtl_api::Request::Find(FindRequest::new(FinderConfig {
                    num_seeds: 4,
                    min_size: 3,
                    max_order_len: 8,
                    ..Default::default()
                })));
            writeln!(conn, "{line}").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut response = String::new();
            BufReader::new(conn).read_line(&mut response).unwrap();
            assert!(response.starts_with("{\"Find\":"), "{response}");
            server.join().unwrap()
        });
        let rendered = render_serve_summary(&summary);
        assert!(rendered.contains("latency[find]: 1 request(s), p50 "), "{rendered}");
        assert!(rendered.contains("p95 "), "{rendered}");
        assert!(rendered.contains("p99 "), "{rendered}");
    }

    #[test]
    fn loadgen_replay_round_trip_with_expect() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join("gtl_cli_test").join("loadgen");
        std::fs::create_dir_all(&dir).unwrap();
        let requests_path = dir.join("requests.json");
        let log_path = dir.join("replay.log");
        let summary_path = dir.join("loadgen.json");
        let request =
            serde::json::to_string(&gtl_api::Request::Find(FindRequest::new(FinderConfig {
                num_seeds: 4,
                min_size: 3,
                max_order_len: 8,
                ..Default::default()
            })));
        let mut file = std::fs::File::create(&requests_path).unwrap();
        writeln!(file, "{request}").unwrap();
        drop(file);

        // A fresh 1-connection server per replay: v5 trace stamps depend
        // on accept order, which restarts with the server.
        let netlist = load_netlist(&fixture_path()).unwrap();
        let serve_options = gtl_api::ServeOptions::new().lanes(1).max_connections(Some(1));
        let replay = |extra: &[&str]| -> Result<String, CliError> {
            let session = Session::builder().netlist(netlist.clone()).build().unwrap();
            let listener = gtl_api::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            std::thread::scope(|scope| {
                let server =
                    scope.spawn(|| gtl_api::serve(&session, &listener, &serve_options).unwrap());
                let mut args = argv(&[
                    "loadgen",
                    "replay",
                    "--requests",
                    &requests_path.display().to_string(),
                    "--addr",
                    &addr,
                ]);
                args.extend(argv(extra));
                let result = run(&args);
                server.join().unwrap();
                result
            })
        };

        let out = replay(&[
            "--out",
            &log_path.display().to_string(),
            "--summary",
            &summary_path.display().to_string(),
        ])
        .unwrap();
        assert!(out.contains("replayed 1 request(s) over 1 connection(s)"), "{out}");
        assert!(out.contains("latency[find]: 1 request(s), p50 "), "{out}");
        let log = std::fs::read_to_string(&log_path).unwrap();
        assert_eq!(log.lines().count(), 1);
        assert!(log.starts_with("{\"Find\":"), "{log}");
        let summary = std::fs::read_to_string(&summary_path).unwrap();
        assert!(summary.contains("\"bench\":\"loadgen\""), "{summary}");

        // The written log doubles as the golden: a second replay against
        // a fresh server must match it byte for byte.
        let out = replay(&["--expect", &log_path.display().to_string()]).unwrap();
        assert!(out.contains("responses match"), "{out}");

        // A tampered golden must fail with the netlist-class exit code 1.
        std::fs::write(&log_path, log.replacen('{', "[", 1)).unwrap();
        let err = replay(&["--expect", &log_path.display().to_string()]).unwrap_err();
        assert!(err.to_string().contains("response drift"), "{err}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn loadgen_rejects_bad_arguments() {
        // All argument errors must surface before any socket I/O.
        let err = run(&argv(&["loadgen"])).unwrap_err();
        assert!(err.to_string().contains("record"), "{err}");
        assert_eq!(err.exit_code(), 2);
        let err = run(&argv(&["loadgen", "bogus"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err =
            run(&argv(&["loadgen", "replay", "--addr", "a", "--trace", "t", "--requests", "r"]))
                .unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
        let err = run(&argv(&["loadgen", "replay", "--requests", "r"])).unwrap_err();
        assert!(err.to_string().contains("--addr"), "{err}");
        let err = run(&argv(&["loadgen", "record", "--listen", "a"])).unwrap_err();
        assert!(err.to_string().contains("--upstream"), "{err}");
        let err =
            run(&argv(&["loadgen", "record", "--listen", "a", "--upstream", "b"])).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        // Mode validation happens before the trace file is opened… after
        // parsing, so use a real (empty-ish) trace file.
        let dir = std::env::temp_dir().join("gtl_cli_test").join("loadgen");
        std::fs::create_dir_all(&dir).unwrap();
        let requests = dir.join("one_request.json");
        std::fs::write(&requests, "{\"Stats\":{\"v\":1}}\n").unwrap();
        let err = run(&argv(&[
            "loadgen",
            "replay",
            "--requests",
            &requests.display().to_string(),
            "--addr",
            "127.0.0.1:1",
            "--mode",
            "sideways",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--mode"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_documents_exit_codes_and_serve() {
        let help = run(&argv(&["--help"])).unwrap();
        assert!(help.contains("EXIT CODES"), "{help}");
        assert!(help.contains("gtl serve"), "{help}");
        assert!(help.contains("--json"), "{help}");
        for flag in [
            "--lanes",
            "--cache-bytes",
            "--pipeline",
            "--timeout-ms",
            "--max-concurrent",
            "--deadline-ms",
            "--netlist-dir",
            "--max-netlists",
            "--registry-bytes",
            "--tenant-quota",
        ] {
            assert!(help.contains(flag), "missing {flag} in help:\n{help}");
        }
        assert!(help.contains("deadline_exceeded"), "{help}");
        assert!(help.contains("unknown_session"), "{help}");
        assert!(help.contains("LoadNetlist"), "{help}");
        assert!(help.contains("gtl loadgen record"), "{help}");
        assert!(help.contains("gtl loadgen replay"), "{help}");
        for flag in ["--inflight", "--rate", "--repeat", "--expect", "--scrape-addr", "--summary"] {
            assert!(help.contains(flag), "missing {flag} in help:\n{help}");
        }
        assert!(help.contains("response drift"), "{help}");
    }

    #[test]
    fn unknown_extension_rejected() {
        let err = load_netlist("/tmp/whatever.xyz").unwrap_err();
        assert!(err.to_string().contains("unsupported"));
        assert_eq!(err.error.code(), "bad_request");
    }
}
