//! `gtl` — command-line tangled-logic finder. See [`gtl_cli`] for the
//! implementation and `gtl --help` for usage.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gtl_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("gtl: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
