//! The multi-session serving contract (API v4), end to end over TCP:
//!
//! * **Eviction determinism** — arbitrary load/unload/query
//!   interleavings produce identical eviction reports and identical
//!   response bytes for any lane count and cache budget (property
//!   test, two very different runtime shapes diffed line by line).
//! * **Cross-session cache isolation** — reloading a name with a
//!   different netlist must never be answered from the previous load's
//!   cache entries; warm hits per load equal that load's cold bytes
//!   (property-tested in-crate against a simulated cache and end to
//!   end over the wire).
//! * **Fair-share admission** — a tenant flooding its quota cannot
//!   perturb a trickling tenant: the trickler's response bytes and
//!   ordering equal a solo run, and the starvation counter stays 0.
//! * **Negative paths** — unknown sessions, loads over budget and
//!   pre-v4 `session` fields answer structured errors over the wire.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use gtl_api::{
    netlist_cost, FindRequest, ListSessionsRequest, LoadNetlistRequest, Request, ServeOptions,
    Session, SessionDispatcher, StatsRequest, UnloadNetlistRequest,
};
use gtl_netlist::{Netlist, NetlistBuilder};
use gtl_tangled::FinderConfig;
use proptest::prelude::*;

fn ring(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
    for i in 0..n {
        b.add_anonymous_net([cells[i], cells[(i + 1) % n]]);
    }
    b.finish()
}

/// Writes each `(name, n)` ring as `<name>.hgr` under a fresh per-test
/// directory and returns the directory.
fn netlist_dir(test: &str, rings: &[(&str, usize)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gtl_registry_serve_{test}"));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, n) in rings {
        let mut text = format!("{n} {n}\n");
        for i in 0..*n {
            text.push_str(&format!("{} {}\n", i + 1, (i + 1) % n + 1));
        }
        std::fs::write(dir.join(format!("{name}.hgr")), text).unwrap();
    }
    dir
}

fn default_session() -> Session {
    Session::builder().netlist(ring(8)).build().unwrap()
}

/// Removes the per-request `,"trace":"…"` stamp (v5+) from a wire line
/// so bytes can be compared against in-process dispatch and across
/// runs whose connection/sequence numbers differ.
fn strip_trace(line: &str) -> String {
    let Some(start) = line.find(",\"trace\":\"") else { return line.to_string() };
    let rest = &line[start + 10..];
    let end = rest.find('\"').unwrap();
    format!("{}{}", &line[..start], &rest[end + 1..])
}

fn find_line(session: Option<&str>, rng_seed: u64) -> String {
    let mut request = FindRequest::new(FinderConfig {
        num_seeds: 4,
        min_size: 3,
        max_order_len: 8,
        rng_seed,
        ..FinderConfig::default()
    });
    request.session = session.map(str::to_string);
    serde::json::to_string(&Request::Find(request))
}

fn stats_line(session: Option<&str>) -> String {
    let mut request = StatsRequest::new();
    request.session = session.map(str::to_string);
    serde::json::to_string(&Request::Stats(request))
}

fn load_line(name: &str, path: &str) -> String {
    serde::json::to_string(&Request::LoadNetlist(LoadNetlistRequest::new(name, path)))
}

fn unload_line(name: &str) -> String {
    serde::json::to_string(&Request::UnloadNetlist(UnloadNetlistRequest::new(name)))
}

/// Boots a single-connection server with `options`, plays `lines` over
/// one pipelined connection and returns every response line in order.
fn play_script(session: &Session, options: ServeOptions, lines: &[String]) -> Vec<String> {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = options.max_connections(Some(1));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(session, &listener, &options).unwrap());
        let mut conn = TcpStream::connect(addr).unwrap();
        for line in lines {
            writeln!(conn, "{line}").unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
        server.join().unwrap();
        got
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Registry eviction is a pure function of the operation order:
    /// replaying an arbitrary admin/query interleaving serially through
    /// a 1-lane uncached server and through an 8-lane cached server
    /// yields byte-identical response lines — including every
    /// `evicted` report and every `unknown_session` outcome.
    #[test]
    fn registry_interleavings_byte_deterministic_across_lanes(
        ops in proptest::collection::vec((0u8..3, 0usize..3), 1..20),
    ) {
        let dir = netlist_dir("determinism", &[("a", 5), ("b", 6), ("c", 7)]);
        let names = ["a", "b", "c"];
        let lines: Vec<String> = ops
            .iter()
            .map(|&(op, pick)| {
                let name = names[pick];
                match op {
                    0 => load_line(name, &format!("{name}.hgr")),
                    1 => unload_line(name),
                    _ => stats_line(Some(name)),
                }
            })
            .collect();
        let session = default_session();
        // Entry cap 2 with three names: loads routinely evict.
        let shape = |lanes: usize, cache: usize| {
            ServeOptions::new()
                .lanes(lanes)
                .pipeline_depth(1)
                .cache_bytes(cache)
                .max_netlists(2)
                .netlist_dir(Some(dir.clone()))
        };
        let serial = play_script(&session, shape(1, 0), &lines);
        let parallel = play_script(&session, shape(8, 1 << 20), &lines);
        prop_assert_eq!(serial.len(), lines.len());
        prop_assert_eq!(&serial, &parallel, "lane count changed registry behavior");
    }

    /// In-crate cache isolation: replaying load/query interleavings
    /// against a simulated cache keyed by the dispatcher's session-aware
    /// keys, every hit returns exactly the bytes a fresh dispatch
    /// produces — across reloads that swap the netlist under the name.
    #[test]
    fn dispatcher_cache_keys_stay_transparent_across_reloads(
        ops in proptest::collection::vec(0u8..3, 1..24),
    ) {
        let dir = netlist_dir("in_crate", &[("x_small", 5), ("x_large", 9)]);
        let session = default_session();
        let d = SessionDispatcher::new(&session, 0, 0, Some(dir));
        let mut current = "x_small";
        let load = |file: &str| {
            serde::json::from_str::<Request>(&load_line("x", &format!("{file}.hgr"))).unwrap()
        };
        let rendered_load =
            |d: &SessionDispatcher<'_>, file: &str| serde::json::to_string(&d.handle(&load(file)));
        rendered_load(&d, current);
        let query = stats_line(Some("x"));
        // The simulated response cache: exactly the runtime's contract —
        // successful responses stored under the dispatcher's key.
        let mut cache: HashMap<Vec<u8>, String> = HashMap::new();
        for &op in &ops {
            if op == 0 {
                // Reload "x" with the *other* netlist: new generation.
                current = if current == "x_small" { "x_large" } else { "x_small" };
                rendered_load(&d, current);
            } else {
                let request: Request = serde::json::from_str(&query).unwrap();
                let fresh = serde::json::to_string(&d.handle(&request));
                let expect_cells = if current == "x_small" { 5 } else { 9 };
                prop_assert!(
                    fresh.contains(&format!("\"num_cells\":{expect_cells}")),
                    "dispatch answered the wrong netlist: {fresh}"
                );
                let key = d.cache_key(&query).into_owned();
                match cache.get(&key) {
                    Some(warm) => prop_assert_eq!(
                        warm, &fresh,
                        "a warm hit diverged from the cold bytes"
                    ),
                    None => {
                        cache.insert(key, fresh);
                    }
                }
            }
        }
    }

    /// End-to-end cache isolation over TCP: a warm cache, one request
    /// line, and reloads that swap the netlist under the addressed name
    /// — every response matches a fresh in-process dispatch against the
    /// netlist resident *at that moment*, never a stale cache entry.
    #[test]
    fn cross_session_cache_isolation_over_the_wire(
        ops in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let dir = netlist_dir("isolation", &[("x_small", 5), ("x_large", 9)]);
        let session = default_session();

        // Oracles: the same session-addressed line dispatched in-process
        // against each netlist (the session layer treats a v4 session
        // field as dispatcher-resolved, so the payload is the file's).
        let line = find_line(Some("x"), 11);
        let oracle: HashMap<&str, String> = [("x_small", 5usize), ("x_large", 9)]
            .into_iter()
            .map(|(file, _)| {
                let s = Session::builder()
                    .load(dir.join(format!("{file}.hgr")).to_str().unwrap())
                    .unwrap()
                    .build()
                    .unwrap();
                (file, s.handle_line(&line))
            })
            .collect();

        // Script: start on x_small; op 0 swaps the loaded file, other
        // ops query twice (cold + warm for fresh generations).
        let mut script = vec![load_line("x", "x_small.hgr")];
        let mut expected = vec![None];
        let mut current = "x_small";
        for &op in &ops {
            if op == 0 {
                current = if current == "x_small" { "x_large" } else { "x_small" };
                script.push(load_line("x", &format!("{current}.hgr")));
                expected.push(None);
            } else {
                script.push(line.clone());
                expected.push(Some(oracle[current].clone()));
                script.push(line.clone());
                expected.push(Some(oracle[current].clone()));
            }
        }
        let options = ServeOptions::new()
            .lanes(2)
            .pipeline_depth(1)
            .cache_bytes(1 << 20)
            .netlist_dir(Some(dir.clone()));
        let got = play_script(&session, options, &script);
        prop_assert_eq!(got.len(), script.len());
        for (i, (line, expect)) in got.iter().zip(&expected).enumerate() {
            if let Some(expect) = expect {
                prop_assert_eq!(
                    &strip_trace(line), expect,
                    "response {} served stale bytes across a reload", i
                );
            }
        }
    }
}

/// One tenant flooding its quota while another trickles: the trickler's
/// responses — bytes and order — are identical to serving it alone, and
/// the runtime's fair-share starvation counter stays 0.
#[test]
fn flooding_tenant_cannot_perturb_a_trickler() {
    let dir = netlist_dir("fairness", &[("heavy", 24), ("light", 10)]);
    let session = default_session();
    let trickle: Vec<String> = (0..4).map(|i| find_line(Some("light"), 100 + i)).collect();
    let flood: Vec<String> = (0..16).map(|i| find_line(Some("heavy"), 200 + i % 3)).collect();

    let options = || {
        ServeOptions::new()
            .lanes(2)
            .queue_depth(4)
            .tenant_quota(2)
            .pipeline_depth(16)
            .cache_bytes(0)
            .netlist_dir(Some(dir.clone()))
    };

    // Solo run: the trickler alone, after loading its session.
    let mut solo_script = vec![load_line("light", "light.hgr")];
    solo_script.extend(trickle.iter().cloned());
    let solo = play_script(&session, options(), &solo_script)[1..].to_vec();
    assert_eq!(solo.len(), trickle.len());
    assert!(solo.iter().all(|l| l.starts_with("{\"Find\":")), "{solo:?}");

    // Combined run: an admin connection loads both sessions, then the
    // flooder pipelines its burst while the trickler sends one request
    // at a time, waiting for each response.
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serve_options = options().max_connections(Some(3));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(&session, &listener, &serve_options).unwrap());
        {
            let mut admin = TcpStream::connect(addr).unwrap();
            writeln!(admin, "{}", load_line("heavy", "heavy.hgr")).unwrap();
            writeln!(admin, "{}", load_line("light", "light.hgr")).unwrap();
            admin.shutdown(std::net::Shutdown::Write).unwrap();
            let loads: Vec<String> = BufReader::new(admin).lines().map(|l| l.unwrap()).collect();
            assert_eq!(loads.len(), 2, "{loads:?}");
            assert!(loads.iter().all(|l| l.starts_with("{\"LoadNetlist\":")), "{loads:?}");
        }
        let flooder = scope.spawn(|| {
            let mut conn = TcpStream::connect(addr).unwrap();
            for line in &flood {
                writeln!(conn, "{line}").unwrap();
            }
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            BufReader::new(conn).lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });
        let trickler = scope.spawn(|| {
            let conn = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut conn = conn;
            let mut got = Vec::new();
            for line in &trickle {
                writeln!(conn, "{line}").unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                got.push(response.trim_end().to_string());
            }
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            got
        });
        let flood_got = flooder.join().unwrap();
        let trickle_got = trickler.join().unwrap();
        assert_eq!(flood_got.len(), flood.len(), "flooder lost responses");
        let strip = |lines: &[String]| lines.iter().map(|l| strip_trace(l)).collect::<Vec<_>>();
        assert_eq!(
            strip(&trickle_got),
            strip(&solo),
            "the flooding tenant changed the trickler's response bytes or order"
        );
        let summary = server.join().unwrap();
        assert_eq!(
            summary.metrics.fair_share_violations, 0,
            "a waiting tenant was starved: {:?}",
            summary.metrics
        );
    });
}

/// The v4 negative paths, over the wire and in order: unknown session
/// names, a load over the registry byte budget (registry unchanged), a
/// pre-v4 `session` field, and unload of an absent name — all answer
/// structured errors echoing the requested version.
#[test]
fn negative_paths_over_the_wire() {
    let dir = netlist_dir("negative", &[("small", 5), ("big", 300)]);
    let session = default_session();
    let pre_v4 = stats_line(Some("small")).replacen("\"v\":5", "\"v\":3", 1);
    assert!(pre_v4.contains("\"v\":3"), "{pre_v4}");
    let script = vec![
        stats_line(Some("ghost")),       // 0: never loaded
        load_line("small", "small.hgr"), // 1: fits the budget
        load_line("big", "big.hgr"),     // 2: alone exceeds the budget
        pre_v4,                          // 3: session field needs v4
        unload_line("ghost"),            // 4: unload of an absent name
        stats_line(Some("small")),       // 5: "small" survived it all
        unload_line("small"),            // 6: clean removal
        stats_line(Some("small")),       // 7: now unknown
        serde::json::to_string(&Request::ListSessions(ListSessionsRequest::new())), // 8
    ];
    // Budget: the small ring plus slack, far below the big ring's cost.
    let budget = netlist_cost(&ring(5)) + 256;
    assert!(budget < netlist_cost(&ring(300)), "fixture costs inverted");
    let options = ServeOptions::new()
        .lanes(1)
        .pipeline_depth(1)
        .registry_bytes(budget)
        .netlist_dir(Some(dir));
    let got = play_script(&session, options, &script);
    assert_eq!(got.len(), script.len(), "{got:?}");
    assert!(got[0].contains("\"code\":\"unknown_session\""), "{}", got[0]);
    assert!(got[0].contains("\"v\":5"), "{}", got[0]);
    assert!(got[1].starts_with("{\"LoadNetlist\":"), "{}", got[1]);
    assert!(got[2].contains("\"code\":\"invalid_argument\""), "{}", got[2]);
    assert!(got[2].contains("budget"), "{}", got[2]);
    assert!(got[3].contains("\"code\":\"invalid_argument\""), "{}", got[3]);
    assert!(got[3].contains("protocol version 4"), "{}", got[3]);
    assert!(got[3].contains("\"v\":3"), "must echo the requested version: {}", got[3]);
    assert!(got[4].contains("\"code\":\"unknown_session\""), "{}", got[4]);
    assert!(got[5].contains("\"num_cells\":5"), "{}", got[5]);
    assert!(got[6].starts_with("{\"UnloadNetlist\":"), "{}", got[6]);
    assert!(got[7].contains("\"code\":\"unknown_session\""), "{}", got[7]);
    // Only the default session remains.
    assert!(got[8].contains("\"name\":\"default\""), "{}", got[8]);
    assert!(!got[8].contains("\"name\":\"small\""), "{}", got[8]);
}
