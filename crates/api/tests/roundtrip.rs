//! Property tests: every API type survives JSON serialize → deserialize
//! **bit-exactly**, floats included.
//!
//! Floats are drawn from arbitrary bit patterns (nudged to finite —
//! non-finite values have no JSON literal), so subnormals, negative zero
//! and extreme exponents are all exercised. Because the renderer emits
//! the shortest representation that parses back to the same bits, byte
//! equality of `render(parse(render(x)))` with `render(x)` implies bit
//! equality of every float in `x`.

use gtl_api::{
    ErrorBody, FindRequest, FindResponse, ListSessionsRequest, ListSessionsResponse,
    LoadNetlistRequest, LoadNetlistResponse, NetlistSummary, PlaceRequest, PlaceResponse, Request,
    Response, SessionInfo, StatsRequest, UnloadNetlistRequest, UnloadNetlistResponse, API_VERSION,
};
use gtl_netlist::{CellId, SubsetStats};
use gtl_place::congestion::{CongestionReport, DemandModel, RoutingConfig};
use gtl_place::{Die, PlacerConfig};
use gtl_tangled::ordering::GrowthCriterion;
use gtl_tangled::{FinderConfig, FinderResult, Gtl, MetricKind};
use proptest::prelude::*;

/// Arbitrary finite `f64` from raw bits (clearing the top exponent bit
/// maps Inf/NaN patterns onto finite values, keeping sign and mantissa).
fn arb_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_finite() {
            f
        } else {
            f64::from_bits(bits & !(1u64 << 62))
        }
    })
}

fn arb_finder_config() -> impl Strategy<Value = FinderConfig> {
    (
        (0usize..10_000, 1usize..200_000, 0usize..64, 0u8..2, 0u8..2, 1usize..5_000),
        (arb_f64(), arb_f64(), arb_f64(), 0usize..9, 0u8..2, 0usize..32),
        (0u64..=u64::MAX, (0u8..2, arb_f64())),
    )
        .prop_map(
            |(
                (num_seeds, max_order_len, lambda_threshold, criterion, metric, min_size),
                (accept_threshold, prominence, max_fraction, refine_seeds, refine, threads),
                (rng_seed, (has_rent, rent)),
            )| FinderConfig {
                num_seeds,
                max_order_len,
                lambda_threshold,
                criterion: if criterion == 0 {
                    GrowthCriterion::WeightFirst
                } else {
                    GrowthCriterion::CutFirst
                },
                metric: if metric == 0 { MetricKind::NGtlScore } else { MetricKind::GtlSd },
                min_size,
                accept_threshold,
                prominence,
                max_fraction,
                refine_seeds,
                refine: refine == 1,
                threads,
                rng_seed,
                rent_exponent: (has_rent == 1).then_some(rent),
            },
        )
}

fn arb_gtl() -> impl Strategy<Value = Gtl> {
    (
        proptest::collection::vec(0usize..1_000_000, 0..40),
        (0usize..5_000, 0usize..5_000, 0usize..50_000, 0usize..5_000),
        (arb_f64(), arb_f64(), arb_f64(), arb_f64()),
    )
        .prop_map(|(cells, (size, cut, pins, internal_nets), (score, ngtl, sd, rent))| Gtl {
            cells: cells.into_iter().map(CellId::new).collect(),
            stats: SubsetStats { size, cut, pins, internal_nets },
            score,
            ngtl_score: ngtl,
            gtl_sd: sd,
            rent_exponent: rent,
        })
}

fn arb_finder_result() -> impl Strategy<Value = FinderResult> {
    (
        proptest::collection::vec(arb_gtl(), 0..6),
        0usize..10_000,
        0usize..10_000,
        arb_f64(),
        arb_f64(),
    )
        .prop_map(|(gtls, num_candidates, num_empty_searches, avg_pins, avg_rent)| {
            FinderResult {
                gtls,
                num_candidates,
                num_empty_searches,
                avg_pins_per_cell: avg_pins,
                avg_rent_exponent: avg_rent,
            }
        })
}

fn arb_summary() -> impl Strategy<Value = NetlistSummary> {
    (0usize..1_000_000, 0usize..1_000_000, 0usize..10_000_000, arb_f64()).prop_map(
        |(num_cells, num_nets, num_pins, avg)| NetlistSummary {
            num_cells,
            num_nets,
            num_pins,
            avg_pins_per_cell: avg,
        },
    )
}

fn arb_place_request() -> impl Strategy<Value = PlaceRequest> {
    (
        0u32..4,
        arb_f64(),
        ((0usize..50, arb_f64(), arb_f64()), (arb_f64(), 0usize..2_000, arb_f64())),
        ((1usize..256, (0u8..2, arb_f64()), (0u8..2, arb_f64())), (arb_f64(), 0u8..2, 0usize..32)),
        (0u64..=u64::MAX, 0usize..32, 0usize..20, (0u8..2, 0u64..=u64::MAX)),
    )
        .prop_map(
            |(
                v,
                utilization,
                ((iterations, anchor_start, anchor_growth), (tolerance, max_cg, boost)),
                ((tiles, (has_h, h), (has_v, vcap)), (target_mean, model, rthreads)),
                (seed, pthreads, shard_grid, (has_deadline, deadline)),
            )| {
                PlaceRequest {
                    v,
                    utilization,
                    placer: PlacerConfig {
                        iterations,
                        anchor_start,
                        anchor_growth,
                        tolerance,
                        max_cg_iterations: max_cg,
                        anchor_final_boost: boost,
                        seed,
                        threads: pthreads,
                        shard_grid,
                        ..PlacerConfig::default()
                    },
                    routing: RoutingConfig {
                        tiles,
                        h_capacity: (has_h == 1).then_some(h),
                        v_capacity: (has_v == 1).then_some(vcap),
                        target_mean,
                        model: if model == 0 { DemandModel::Rudy } else { DemandModel::LShape },
                        threads: rthreads,
                    },
                    deadline_ms: (has_deadline == 1).then_some(deadline),
                    // Exercised separately in v4_session_contracts_roundtrip.
                    session: None,
                }
            },
        )
}

/// Round-trips a value through JSON and asserts byte + Debug equality
/// (both imply bit equality of every float — see module docs).
fn assert_roundtrip<T>(value: &T)
where
    T: serde::Serialize + for<'a> serde::Deserialize<'a> + std::fmt::Debug,
{
    let text = serde::json::to_string(value);
    let back: T = match serde::json::from_str(&text) {
        Ok(v) => v,
        Err(e) => panic!("failed to parse {text}: {e}"),
    };
    assert_eq!(serde::json::to_string(&back), text, "re-render differs");
    assert_eq!(format!("{back:?}"), format!("{value:?}"), "Debug view differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn finder_config_roundtrips(config in arb_finder_config()) {
        assert_roundtrip(&config);
    }

    #[test]
    fn find_request_roundtrips(
        v in 0u32..5,
        config in arb_finder_config(),
        has_deadline in 0u8..2,
        deadline in 0u64..=u64::MAX,
    ) {
        let mut request = FindRequest::new(config);
        request.v = v;
        request.deadline_ms = (has_deadline == 1).then_some(deadline);
        assert_roundtrip(&request);
        assert_roundtrip(&Request::Find(request));
    }

    /// A pre-v3 document without the `deadline_ms` key (exactly what a
    /// v1/v2 client sends) still parses, with the field defaulting to
    /// `None` — the compatibility the versioned contract promises. The
    /// same holds for the pre-v4 `session` key.
    #[test]
    fn find_request_without_deadline_field_parses(v in 1u32..3, config in arb_finder_config()) {
        let mut request = FindRequest::new(config);
        request.v = v;
        let text = serde::json::to_string(&request);
        let legacy =
            text.replace(",\"deadline_ms\":null", "").replace(",\"session\":null", "");
        assert!(!legacy.contains("deadline_ms"), "{legacy}");
        assert!(!legacy.contains("session"), "{legacy}");
        let back: FindRequest = serde::json::from_str(&legacy).unwrap();
        prop_assert_eq!(back, request);
    }

    /// The v4 contracts: `session` fields and the registry
    /// administration envelopes all round-trip bit-exactly.
    #[test]
    fn v4_session_contracts_roundtrip(
        config in arb_finder_config(),
        name in (0usize..1_000_000).prop_map(|i| format!("design-{i}/block_{}", i % 7)),
        generation in 0u64..=u64::MAX,
        summary in arb_summary(),
        replaced in (0u8..2).prop_map(|b| b == 1),
        evicted in proptest::collection::vec(
            (0usize..1_000).prop_map(|i| format!("victim-{i}")),
            0..4,
        ),
    ) {
        let mut request = FindRequest::new(config);
        request.session = Some(name.clone());
        assert_roundtrip(&Request::Find(request));
        let stats = StatsRequest { v: API_VERSION, session: Some(name.clone()) };
        assert_roundtrip(&Request::Stats(stats));

        assert_roundtrip(&Request::LoadNetlist(LoadNetlistRequest::new(&*name, "designs/a.hgr")));
        assert_roundtrip(&Request::UnloadNetlist(UnloadNetlistRequest::new(&*name)));
        assert_roundtrip(&Request::ListSessions(ListSessionsRequest::new()));

        let info = SessionInfo { name: name.clone(), generation, netlist: summary };
        assert_roundtrip(&Response::LoadNetlist(LoadNetlistResponse {
            v: API_VERSION,
            session: info.clone(),
            replaced,
            evicted,
            trace: None,
        }));
        assert_roundtrip(&Response::UnloadNetlist(UnloadNetlistResponse {
            v: API_VERSION,
            name,
            trace: None,
        }));
        assert_roundtrip(&Response::ListSessions(ListSessionsResponse {
            v: API_VERSION,
            sessions: vec![info],
            trace: None,
        }));
    }

    #[test]
    fn finder_result_roundtrips(result in arb_finder_result()) {
        assert_roundtrip(&result);
    }

    /// A stamped v5 trace round-trips; an unstamped response serializes
    /// without the `trace` key at all (`skip_if_null`), exactly like the
    /// frozen v1-v4 bytes, and a document missing the key parses back
    /// to `None`.
    #[test]
    fn find_response_roundtrips(
        netlist in arb_summary(),
        result in arb_finder_result(),
        stamped in 0u8..2,
        conn in 0u64..=u64::MAX,
        seq in 0u64..=u64::MAX,
    ) {
        let trace = (stamped == 1).then(|| format!("{conn:08x}-{seq:08x}"));
        let response = FindResponse { v: API_VERSION, netlist, result, trace };
        assert_roundtrip(&response);
        let text = serde::json::to_string(&response);
        prop_assert_eq!(text.contains("\"trace\""), stamped == 1, "{}", text);
        assert_roundtrip(&Response::Find(response));
    }

    #[test]
    fn place_contracts_roundtrip(
        request in arb_place_request(),
        netlist in arb_summary(),
        floats in proptest::collection::vec(arb_f64(), 8),
    ) {
        assert_roundtrip(&request);
        assert_roundtrip(&Request::Place(request));
        let response = PlaceResponse {
            v: API_VERSION,
            netlist,
            die: Die { width: floats[0], height: floats[1], rows: 64 },
            hpwl: floats[2],
            trace: None,
            congestion: CongestionReport {
                nets_through_100pct: 5,
                nets_through_90pct: 9,
                average_congestion_pct: floats[3],
                max_utilization: floats[4],
                mean_utilization: floats[5],
            },
        };
        assert_roundtrip(&response);
        assert_roundtrip(&Response::Place(response));
    }
}

#[test]
fn stats_and_error_envelopes_roundtrip() {
    assert_roundtrip(&Request::Stats(StatsRequest::new()));
    let body = ErrorBody {
        v: API_VERSION,
        code: "bad_request".into(),
        message: "tab\there \"and\" newline\n".into(),
        trace: None,
    };
    assert_roundtrip(&Response::Error(body));
}
