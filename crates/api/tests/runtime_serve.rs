//! The runtime-serving acceptance contract: pipelined, cached, multi-
//! client serving is **wire-indistinguishable** from a serial server.
//!
//! * The stress test runs 8 concurrent pipelined connections with mixed
//!   Find/Place/Stats requests against a small-cache (eviction-heavy)
//!   runtime and asserts every response line byte-identical to a
//!   single-threaded serial replay through [`Session::handle_line`].
//! * The property test drives random request sequences through random
//!   cache budgets — warm hits, cold misses and arbitrary eviction
//!   orders — and asserts the same.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gtl_api::{FindRequest, PlaceRequest, Request, ServeOptions, Session, StatsRequest};
use gtl_netlist::NetlistBuilder;
use gtl_tangled::FinderConfig;
use proptest::prelude::*;

/// Two planted cliques in a sparse ring — enough structure for non-
/// trivial Find/Place responses, small enough for fast placement.
fn session() -> Session {
    let mut b = NetlistBuilder::new();
    let n = 60;
    let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
    for (base, size) in [(0, 8), (30, 10)] {
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_anonymous_net([cells[base + i], cells[base + j]]);
            }
        }
    }
    for i in 0..n {
        b.add_anonymous_net([cells[i], cells[(i + 1) % n]]);
    }
    Session::builder().netlist(b.finish()).build().unwrap()
}

/// A pool of distinct request lines: finds with different seeds/threads,
/// a placement, stats, a version error and a malformed line — every
/// response deterministic, so serial replay is the oracle.
/// Removes the per-request `,"trace":"…"` stamp (v5+) from a wire line
/// so bytes can be compared against the unstamped in-process oracle.
fn strip_trace(line: &str) -> String {
    let Some(start) = line.find(",\"trace\":\"") else { return line.to_string() };
    let rest = &line[start + 10..];
    let end = rest.find('\"').unwrap();
    format!("{}{}", &line[..start], &rest[end + 1..])
}

fn request_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for (rng, threads) in [(1u64, 1usize), (7, 2), (42, 8)] {
        pool.push(serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
            num_seeds: 8,
            min_size: 4,
            max_order_len: 20,
            rng_seed: rng,
            threads,
            ..FinderConfig::default()
        }))));
    }
    let mut place = PlaceRequest::new();
    place.routing.tiles = 8;
    pool.push(serde::json::to_string(&Request::Place(place)));
    pool.push(serde::json::to_string(&Request::Stats(StatsRequest::new())));
    pool.push("{\"Find\":{\"v\":99,\"config\":{}}}".to_string());
    pool.push("definitely not json".to_string());
    pool
}

#[test]
fn eight_pipelined_clients_match_serial_replay() {
    let session = session();
    let pool = request_pool();
    // Serial oracle: dispatch every pool entry once, in-process.
    let oracle: Vec<String> = pool.iter().map(|line| session.handle_line(line)).collect();

    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let clients = 8usize;
    let per_client = 12usize;
    // Small cache: plenty of evictions while the stress is running.
    let options = ServeOptions::new()
        .lanes(4)
        .pipeline_depth(4)
        .cache_bytes(2048)
        .max_concurrent(Some(5))
        .max_connections(Some(clients));

    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(&session, &listener, &options).unwrap());
        let mut handles = Vec::new();
        for c in 0..clients {
            let pool = &pool;
            handles.push(scope.spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                // Pipelined: write the whole mixed burst before reading.
                let picks: Vec<usize> = (0..per_client).map(|i| (c + 3 * i) % pool.len()).collect();
                for &p in &picks {
                    writeln!(conn, "{}", pool[p]).unwrap();
                }
                conn.shutdown(std::net::Shutdown::Write).unwrap();
                let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
                (picks, got)
            }));
        }
        for (c, handle) in handles.into_iter().enumerate() {
            let (picks, got) = handle.join().unwrap();
            assert_eq!(got.len(), per_client, "client {c} lost responses");
            for (i, (&p, line)) in picks.iter().zip(&got).enumerate() {
                assert_eq!(
                    strip_trace(line),
                    oracle[p],
                    "client {c} response {i} (pool #{p}) diverged from serial replay"
                );
            }
        }
        let summary = server.join().unwrap();
        assert_eq!(summary.connections, clients);
        assert_eq!(summary.metrics.responses, (clients * per_client) as u64);
        assert!(summary.io_errors.is_empty(), "{:?}", summary.io_errors);
        // The tiny budget must actually have exercised eviction.
        assert!(summary.metrics.cache_evictions > 0, "{:?}", summary.metrics);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache transparency end to end: for a random request sequence and
    /// a random (often tiny) cache budget, every response over the wire
    /// — warm hit, cold miss, or recompute after an arbitrary eviction
    /// order — is byte-identical to a fresh in-process dispatch.
    #[test]
    fn cache_transparency_over_the_wire(
        budget in 0usize..4096,
        picks in proptest::collection::vec(0usize..7, 1..40),
    ) {
        let session = session();
        let pool = request_pool();
        let oracle: Vec<String> = pool.iter().map(|line| session.handle_line(line)).collect();

        let listener = gtl_api::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new()
            .lanes(2)
            .pipeline_depth(3)
            .cache_bytes(budget)
            .max_connections(Some(1));
        std::thread::scope(|scope| {
            let server = scope.spawn(|| gtl_api::serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            for &p in &picks {
                writeln!(conn, "{}", pool[p % pool.len()]).unwrap();
            }
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            prop_assert_eq!(got.len(), picks.len());
            for (i, (&p, line)) in picks.iter().zip(&got).enumerate() {
                prop_assert_eq!(
                    strip_trace(line),
                    oracle[p % pool.len()].clone(),
                    "response {} (pool #{}) diverged (budget {})",
                    i,
                    p,
                    budget
                );
            }
            server.join().unwrap();
            Ok(())
        })?;
    }
}
