//! The execution-layer determinism contract at the service boundary:
//! a serve response must be **byte-identical** for 1, 2 and 8 workers —
//! the worker count is a performance knob, never a semantic one.

use gtl_api::{FindRequest, PlaceRequest, Request, Session};
use gtl_netlist::NetlistBuilder;
use gtl_tangled::FinderConfig;

/// Two planted cliques in a sparse ring — enough structure for the finder
/// to produce a non-trivial response.
fn session() -> Session {
    let mut b = NetlistBuilder::new();
    let n = 160;
    let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
    for (base, size) in [(0, 10), (80, 14)] {
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_anonymous_net([cells[base + i], cells[base + j]]);
            }
        }
    }
    for i in 0..n {
        b.add_anonymous_net([cells[i], cells[(i + 1) % n]]);
    }
    Session::builder().netlist(b.finish()).build().unwrap()
}

#[test]
fn find_response_bytes_identical_for_1_2_8_workers() {
    let session = session();
    let mut lines = Vec::new();
    for threads in [1usize, 2, 8] {
        let request = Request::Find(FindRequest::new(FinderConfig {
            num_seeds: 24,
            min_size: 6,
            max_order_len: 48,
            rng_seed: 0xD0C,
            threads,
            ..FinderConfig::default()
        }));
        lines.push(session.handle_line(&serde::json::to_string(&request)));
    }
    assert!(lines[0].contains("\"gtls\":[{"), "finder found nothing: {}", lines[0]);
    assert_eq!(lines[0], lines[1], "2 workers changed the response bytes");
    assert_eq!(lines[0], lines[2], "8 workers changed the response bytes");
}

#[test]
fn place_response_bytes_identical_for_1_2_8_workers() {
    let session = session();
    let mut lines = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut request = PlaceRequest::new();
        request.placer.threads = threads;
        request.routing.threads = threads;
        lines.push(session.handle_line(&serde::json::to_string(&Request::Place(request))));
    }
    assert!(lines[0].contains("\"hpwl\":"), "{}", lines[0]);
    assert_eq!(lines[0], lines[1]);
    assert_eq!(lines[0], lines[2]);
}
