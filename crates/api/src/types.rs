//! The versioned request/response contracts.
//!
//! Every message carries an explicit protocol version `v` (currently
//! [`API_VERSION`]); a [`Session`](crate::Session) rejects versions it
//! does not speak with a structured
//! [`unsupported_version`](crate::ApiError::UnsupportedVersion) error
//! instead of guessing. On the wire (JSON lines, see
//! [`serve`](mod@crate::serve)) requests and responses travel inside the
//! externally tagged [`Request`] / [`Response`] envelopes, e.g.
//! `{"Find":{"v":1,"config":{...}}}`.
//!
//! Serialization is deterministic — field order is declaration order and
//! floats render in shortest round-trip form — so equal responses are
//! byte-identical, which the serve determinism tests assert across worker
//! counts.

use gtl_netlist::{Netlist, NetlistStats};
use gtl_place::congestion::{CongestionReport, RoutingConfig};
use gtl_place::{Die, PlacerConfig};
use gtl_tangled::{FinderConfig, FinderResult};
use serde::{Deserialize, Serialize};

/// The protocol version this build speaks.
///
/// Bump when a contract changes shape incompatibly; a session answers a
/// mismatched `v` with an `unsupported_version` error naming both sides.
pub const API_VERSION: u32 = 1;

/// Compact netlist identification echoed in every response, so clients
/// can sanity-check which design the server is bound to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistSummary {
    /// Number of cells, `|V|`.
    pub num_cells: usize,
    /// Number of nets, `|E|`.
    pub num_nets: usize,
    /// Total pins.
    pub num_pins: usize,
    /// Average pins per cell, `A(G)`.
    pub avg_pins_per_cell: f64,
}

impl NetlistSummary {
    /// Summarizes a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        Self {
            num_cells: netlist.num_cells(),
            num_nets: netlist.num_nets(),
            num_pins: netlist.num_pins(),
            avg_pins_per_cell: netlist.avg_pins_per_cell(),
        }
    }
}

/// A request to run the three-phase finder over the session's netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
    /// Finder parameters. The finder's output is byte-identical for any
    /// `config.threads`, so worker count is a performance knob, not a
    /// semantic one.
    pub config: FinderConfig,
}

impl FindRequest {
    /// A current-version request with the given config.
    pub fn new(config: FinderConfig) -> Self {
        Self { v: API_VERSION, config }
    }
}

impl Default for FindRequest {
    fn default() -> Self {
        Self::new(FinderConfig::default())
    }
}

/// The finder's answer: the discovered GTLs plus run statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FindResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The netlist the session served this request against.
    pub netlist: NetlistSummary,
    /// The finder outcome (GTLs best-first, search statistics).
    pub result: FinderResult,
}

/// A request to place the session's netlist and estimate congestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
    /// Die utilization in `(0, 1]` (cell area / die area).
    pub utilization: f64,
    /// Global-placer parameters.
    pub placer: PlacerConfig,
    /// Congestion-estimation parameters.
    pub routing: RoutingConfig,
}

impl PlaceRequest {
    /// A current-version request with default pipeline parameters.
    pub fn new() -> Self {
        Self {
            v: API_VERSION,
            utilization: 0.7,
            placer: PlacerConfig::default(),
            routing: RoutingConfig::default(),
        }
    }
}

impl Default for PlaceRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// The placement pipeline's answer: die, wirelength and congestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The netlist the session served this request against.
    pub netlist: NetlistSummary,
    /// The die the placement ran on.
    pub die: Die,
    /// Half-perimeter wirelength of the global placement.
    pub hpwl: f64,
    /// Congestion statistics of the placement.
    pub congestion: CongestionReport,
}

/// A request for whole-design statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
}

impl StatsRequest {
    /// A current-version request.
    pub fn new() -> Self {
        Self { v: API_VERSION }
    }
}

impl Default for StatsRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// Whole-design statistics (`gtl stats` over the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// Full design statistics, including degree histograms.
    pub stats: NetlistStats,
}

/// The structured error payload carried on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Protocol version of this response.
    pub v: u32,
    /// Stable machine-readable code (see [`ApiError::code`]).
    ///
    /// [`ApiError::code`]: crate::ApiError::code
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl From<&crate::ApiError> for ErrorBody {
    fn from(err: &crate::ApiError) -> Self {
        Self { v: API_VERSION, code: err.code().to_string(), message: err.message() }
    }
}

/// The wire request envelope: one externally tagged JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run the finder.
    Find(FindRequest),
    /// Run the placement + congestion pipeline.
    Place(PlaceRequest),
    /// Fetch design statistics.
    Stats(StatsRequest),
}

/// The wire response envelope, mirroring [`Request`] plus
/// [`Response::Error`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Find`].
    Find(FindResponse),
    /// Answer to [`Request::Place`].
    Place(PlaceResponse),
    /// Answer to [`Request::Stats`].
    Stats(StatsResponse),
    /// Any failure, with a stable code.
    Error(ErrorBody),
}
