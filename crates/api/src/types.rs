//! The versioned request/response contracts.
//!
//! Every message carries an explicit protocol version `v` (currently
//! [`API_VERSION`]); a [`Session`](crate::Session) rejects versions it
//! does not speak with a structured
//! [`unsupported_version`](crate::ApiError::UnsupportedVersion) error
//! instead of guessing. On the wire (JSON lines, see
//! [`serve`](mod@crate::serve)) requests and responses travel inside the
//! externally tagged [`Request`] / [`Response`] envelopes, e.g.
//! `{"Find":{"v":1,"config":{...}}}`.
//!
//! Serialization is deterministic — field order is declaration order and
//! floats render in shortest round-trip form — so equal responses are
//! byte-identical, which the serve determinism tests assert across worker
//! counts.

use gtl_netlist::{Netlist, NetlistStats};
use gtl_place::congestion::{CongestionReport, RoutingConfig};
use gtl_place::{Die, PlacerConfig};
use gtl_runtime::MetricsSnapshot;
use gtl_tangled::{FinderConfig, FinderResult};
use serde::{Deserialize, Serialize};

/// The newest protocol version this build speaks.
///
/// Bump when a contract changes shape incompatibly **or** gains a new
/// request pair or field (v2 added [`MetricsRequest`]/[`MetricsResponse`];
/// v3 added the optional per-request `deadline_ms` on [`FindRequest`] and
/// [`PlaceRequest`]; v4 added the optional `session` field on the
/// compute requests plus the [`LoadNetlistRequest`] /
/// [`UnloadNetlistRequest`] / [`ListSessionsRequest`] registry
/// administration pairs; v5 added the per-request `trace` echo on every
/// response body, the [`MetricsTextRequest`] / [`MetricsTextResponse`]
/// Prometheus-text pair, and the latency-summary fields on
/// [`RuntimeMetrics`]). A session accepts every version in
/// [`MIN_API_VERSION`]`..=`[`API_VERSION`] and **echoes the request's
/// version** in its response, so v1–v4 clients keep receiving bytes
/// identical to the build that introduced their protocol (for the
/// deterministic compute contracts — the live [`MetricsResponse`]
/// payload is additive instead, see [`RuntimeMetrics`]); anything
/// outside the range is answered with a structured `unsupported_version`
/// error naming both sides.
pub const API_VERSION: u32 = 5;

/// The oldest protocol version this build still speaks.
///
/// v1 (the original Find/Place/Stats contracts) is unchanged in shape,
/// so it remains fully supported.
pub const MIN_API_VERSION: u32 = 1;

/// The version that introduced the Metrics request pair; a
/// [`MetricsRequest`] with an older `v` is rejected (the pair did not
/// exist in that protocol).
pub const METRICS_SINCE_VERSION: u32 = 2;

/// The version that introduced per-request deadlines; a request carrying
/// `deadline_ms` with an older `v` is rejected with `invalid_argument`
/// (the field did not exist in that protocol, so accepting it would make
/// v1/v2 behavior build-dependent).
pub const DEADLINE_SINCE_VERSION: u32 = 3;

/// The version that introduced multi-netlist sessions: the optional
/// `session` field on [`FindRequest`] / [`PlaceRequest`] /
/// [`StatsRequest`] and the registry administration pairs
/// ([`LoadNetlistRequest`], [`UnloadNetlistRequest`],
/// [`ListSessionsRequest`]). A request carrying a `session` name with an
/// older `v` is rejected with `invalid_argument`, and the administration
/// pairs require at least this version — the same freeze discipline as
/// [`DEADLINE_SINCE_VERSION`], keeping v1–v3 behavior build-independent.
pub const SESSION_SINCE_VERSION: u32 = 4;

/// The version that introduced per-request trace IDs: responses to v5+
/// requests carry a `trace` field (last in the body), deterministically
/// derived from (connection id, request sequence) by the serve runtime.
/// Responses to v1–v4 requests omit the field entirely, byte for byte —
/// the version-echo freeze discipline. In-process sessions have no
/// connection identity, so their responses never carry a trace.
pub const TRACE_SINCE_VERSION: u32 = 5;

/// The version that introduced the Prometheus text-exposition pair
/// ([`MetricsTextRequest`] / [`MetricsTextResponse`]); like the Metrics
/// pair it reports live runtime state and is rejected for older `v`.
pub const METRICS_TEXT_SINCE_VERSION: u32 = 5;

/// Compact netlist identification echoed in every response, so clients
/// can sanity-check which design the server is bound to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistSummary {
    /// Number of cells, `|V|`.
    pub num_cells: usize,
    /// Number of nets, `|E|`.
    pub num_nets: usize,
    /// Total pins.
    pub num_pins: usize,
    /// Average pins per cell, `A(G)`.
    pub avg_pins_per_cell: f64,
}

impl NetlistSummary {
    /// Summarizes a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        Self {
            num_cells: netlist.num_cells(),
            num_nets: netlist.num_nets(),
            num_pins: netlist.num_pins(),
            avg_pins_per_cell: netlist.avg_pins_per_cell(),
        }
    }
}

/// A request to run the three-phase finder over the session's netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
    /// Finder parameters. The finder's output is byte-identical for any
    /// `config.threads`, so worker count is a performance knob, not a
    /// semantic one.
    pub config: FinderConfig,
    /// Optional deadline in milliseconds (protocol v3+), measured from
    /// the moment the server admits the request — queue wait counts. An
    /// expired deadline answers a `deadline_exceeded` error without
    /// consuming compute; a deadline that fires mid-compute aborts at
    /// the next checkpoint. Responses to deadline-carrying requests are
    /// timing-dependent and therefore never cached. Absent (or `null`)
    /// means no per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Optional session name (protocol v4+): run against the named
    /// loaded netlist instead of the server's default session. Absent
    /// (or `null`) means the default session — exactly the pre-v4 wire
    /// behavior, byte for byte.
    pub session: Option<String>,
}

impl FindRequest {
    /// A current-version request with the given config, no deadline and
    /// the default session.
    pub fn new(config: FinderConfig) -> Self {
        Self { v: API_VERSION, config, deadline_ms: None, session: None }
    }
}

impl Default for FindRequest {
    fn default() -> Self {
        Self::new(FinderConfig::default())
    }
}

/// The finder's answer: the discovered GTLs plus run statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FindResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The netlist the session served this request against.
    pub netlist: NetlistSummary,
    /// The finder outcome (GTLs best-first, search statistics).
    pub result: FinderResult,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// A request to place the session's netlist and estimate congestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
    /// Die utilization in `(0, 1]` (cell area / die area).
    pub utilization: f64,
    /// Global-placer parameters.
    pub placer: PlacerConfig,
    /// Congestion-estimation parameters.
    pub routing: RoutingConfig,
    /// Optional deadline in milliseconds (protocol v3+); same semantics
    /// as [`FindRequest::deadline_ms`].
    pub deadline_ms: Option<u64>,
    /// Optional session name (protocol v4+); same semantics as
    /// [`FindRequest::session`].
    pub session: Option<String>,
}

impl PlaceRequest {
    /// A current-version request with default pipeline parameters, no
    /// deadline and the default session.
    pub fn new() -> Self {
        Self {
            v: API_VERSION,
            utilization: 0.7,
            placer: PlacerConfig::default(),
            routing: RoutingConfig::default(),
            deadline_ms: None,
            session: None,
        }
    }
}

impl Default for PlaceRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// The placement pipeline's answer: die, wirelength and congestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The netlist the session served this request against.
    pub netlist: NetlistSummary,
    /// The die the placement ran on.
    pub die: Die,
    /// Half-perimeter wirelength of the global placement.
    pub hpwl: f64,
    /// Congestion statistics of the placement.
    pub congestion: CongestionReport,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// A request for whole-design statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Protocol version (see [`API_VERSION`]).
    pub v: u32,
    /// Optional session name (protocol v4+); same semantics as
    /// [`FindRequest::session`].
    pub session: Option<String>,
}

impl StatsRequest {
    /// A current-version request against the default session.
    pub fn new() -> Self {
        Self { v: API_VERSION, session: None }
    }
}

impl Default for StatsRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// Whole-design statistics (`gtl stats` over the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// Full design statistics, including degree histograms.
    pub stats: NetlistStats,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// A request to load a netlist into the server's session registry under
/// a name (since protocol v4).
///
/// The netlist is read from `path`, resolved inside the server's
/// configured netlist directory (`gtl serve --netlist-dir`); absolute
/// paths and `..` components are rejected so a client can never address
/// files outside it. Loading may deterministically evict the coldest
/// sessions if the registry's entry or byte budget would be exceeded —
/// the response names every victim. Loading over an existing name
/// replaces it (with a fresh generation, so cached responses of the old
/// load can never answer for the new one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadNetlistRequest {
    /// Protocol version (at least [`SESSION_SINCE_VERSION`]).
    pub v: u32,
    /// The session name to register the netlist under. The reserved
    /// name `default` (the netlist the server was started with) cannot
    /// be loaded over.
    pub name: String,
    /// Path of the netlist file, relative to the server's netlist
    /// directory (`.hgr`, `.aux` or `.v`, same loaders as the CLI).
    pub path: String,
}

impl LoadNetlistRequest {
    /// A current-version load request.
    pub fn new(name: impl Into<String>, path: impl Into<String>) -> Self {
        Self { v: API_VERSION, name: name.into(), path: path.into() }
    }
}

/// Answer to [`LoadNetlistRequest`]: the registered session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadNetlistResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The session as registered (name, generation, summary).
    pub session: SessionInfo,
    /// Whether an existing session of the same name was replaced.
    pub replaced: bool,
    /// Session names evicted (coldest first) to fit this load under the
    /// registry's entry/byte budget.
    pub evicted: Vec<String>,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// A request to unload a named session from the registry (since
/// protocol v4).
///
/// Unloading **drains, never aborts**: requests already admitted against
/// the session keep their reference and finish normally; the netlist's
/// memory is released when the last in-flight request drops it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnloadNetlistRequest {
    /// Protocol version (at least [`SESSION_SINCE_VERSION`]).
    pub v: u32,
    /// The session name to unload. The reserved `default` session
    /// cannot be unloaded.
    pub name: String,
}

impl UnloadNetlistRequest {
    /// A current-version unload request.
    pub fn new(name: impl Into<String>) -> Self {
        Self { v: API_VERSION, name: name.into() }
    }
}

/// Answer to [`UnloadNetlistRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnloadNetlistResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// The unloaded session name.
    pub name: String,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// A request to list the registry's resident sessions (since protocol
/// v4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListSessionsRequest {
    /// Protocol version (at least [`SESSION_SINCE_VERSION`]).
    pub v: u32,
}

impl ListSessionsRequest {
    /// A current-version list request.
    pub fn new() -> Self {
        Self { v: API_VERSION }
    }
}

impl Default for ListSessionsRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// Answer to [`ListSessionsRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListSessionsResponse {
    /// Protocol version of this response.
    pub v: u32,
    /// Resident sessions sorted by name, with the default session (if
    /// the server has one) listed first under its reserved name.
    pub sessions: Vec<SessionInfo>,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// One registered session, as reported by the registry administration
/// responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionInfo {
    /// The session name.
    pub name: String,
    /// The registry generation stamped at load time — monotonically
    /// increasing and never reused, so (name, generation) uniquely
    /// identifies one load for the lifetime of the server. The default
    /// session, which lives outside the registry, reports generation 0.
    pub generation: u64,
    /// Summary of the loaded netlist.
    pub netlist: NetlistSummary,
}

/// A request for the serve runtime's metrics (since protocol v2).
///
/// Answered only by the `gtl serve` runtime, which owns the counters;
/// an in-process [`Session`](crate::Session) has no runtime attached
/// and answers with a structured `invalid_argument` error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRequest {
    /// Protocol version (at least [`METRICS_SINCE_VERSION`]).
    pub v: u32,
}

impl MetricsRequest {
    /// A current-version request.
    pub fn new() -> Self {
        Self { v: API_VERSION }
    }
}

impl Default for MetricsRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// The serve runtime's counters (`{"Metrics":..}` over the wire).
///
/// Unlike every other response, a metrics snapshot is **not** a pure
/// function of the request bytes — it reports live runtime state — so
/// the serve runtime never caches it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Protocol version of this response (echoes the request).
    pub v: u32,
    /// The runtime counters at the time the request was served.
    pub metrics: RuntimeMetrics,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// Wire mirror of [`gtl_runtime::MetricsSnapshot`] — a separate type so
/// the wire contract stays stable even if the runtime grows internal
/// counters.
///
/// Unlike the compute contracts (Find/Place/Stats), the Metrics payload
/// is **additive across protocol versions**: new counters (e.g. the v3
/// cancellation pair) appear for every accepted `v`, and clients must
/// ignore fields they do not know. A metrics snapshot reports live,
/// ever-changing state — it is never cached, never byte-frozen and
/// never golden-tested, so the version-echo byte freeze deliberately
/// does not apply to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeMetrics {
    /// Compute lanes (scheduler worker threads).
    pub lanes: u64,
    /// Capacity of the bounded job queue feeding the lanes.
    pub queue_capacity: u64,
    /// Max jobs in flight per connection (reorder-buffer size).
    pub pipeline_depth: u64,
    /// Max queued jobs per admission tenant (fair-share quota).
    pub tenant_quota: u64,
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Request lines admitted to the scheduler.
    pub requests: u64,
    /// Response lines successfully written back.
    pub responses: u64,
    /// Connections closed by the read/idle timeout.
    pub read_timeouts: u64,
    /// Per-connection I/O failures.
    pub io_errors: u64,
    /// Handler panics caught on a compute lane (each costs its
    /// connection, never the lane).
    pub handler_panics: u64,
    /// Jobs abandoned because their connection was lost (queued compute
    /// skipped; nobody left to answer).
    pub jobs_cancelled: u64,
    /// Requests answered with a `deadline_exceeded` error.
    pub deadlines_exceeded: u64,
    /// Fair-share invariant breaches (a tenant served twice in a row
    /// while another was waiting). Structurally zero.
    pub fair_share_violations: u64,
    /// Jobs waiting in the scheduler queue (last observed).
    pub queue_depth: u64,
    /// Highest queue depth observed so far.
    pub queue_high_water: u64,
    /// Response-cache byte budget (`0` = caching disabled).
    pub cache_capacity_bytes: u64,
    /// Response-cache resident entries.
    pub cache_entries: u64,
    /// Response-cache resident bytes.
    pub cache_bytes: u64,
    /// Response-cache lookup hits.
    pub cache_hits: u64,
    /// Response-cache lookup misses.
    pub cache_misses: u64,
    /// Response-cache evictions under the byte budget.
    pub cache_evictions: u64,
    /// Response-cache insertions.
    pub cache_insertions: u64,
    /// Sessions currently resident in the registry (excludes the
    /// default session, which lives outside it).
    pub sessions_active: u64,
    /// Netlists loaded into the registry since the server started.
    pub sessions_loaded: u64,
    /// Sessions evicted under the registry's entry/byte budget.
    pub sessions_evicted: u64,
    /// Sessions explicitly unloaded.
    pub sessions_unloaded: u64,
    /// Bytes currently charged against the registry budget.
    pub registry_bytes: u64,
    /// The registry's byte budget (`0` = unlimited).
    pub registry_capacity_bytes: u64,
    /// Responses stamped with a trace ID (protocol v5+ requests).
    pub responses_traced: u64,
    /// Per-serve-stage latency summaries (queue-wait, lane-compute,
    /// serialize, writer-flush), in a fixed stage order.
    pub stage_latency: Vec<LatencyStats>,
    /// Per-request-kind latency summaries (find/place/stats/admin/…),
    /// sorted by kind label.
    pub kind_latency: Vec<LatencyStats>,
}

/// Wire mirror of [`gtl_runtime::LatencySummary`]: one labelled latency
/// distribution, pre-digested into count/sum/max, the p50/p95/p99
/// bucket upper bounds, and cumulative counts at the fixed scrape
/// boundaries ([`gtl_core::obs::SCRAPE_BOUNDS_US`], ascending).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// The stage or request-kind label.
    pub label: String,
    /// Recorded observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_us: u64,
    /// Largest observation, in microseconds.
    pub max_us: u64,
    /// Median latency (bucket upper bound), in microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency (bucket upper bound), in microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency (bucket upper bound), in microseconds.
    pub p99_us: u64,
    /// Cumulative observation counts at the fixed scrape boundaries.
    pub buckets: Vec<u64>,
}

impl From<gtl_runtime::LatencySummary> for LatencyStats {
    fn from(summary: gtl_runtime::LatencySummary) -> Self {
        Self {
            label: summary.label,
            count: summary.count,
            sum_us: summary.sum_us,
            max_us: summary.max_us,
            p50_us: summary.p50_us,
            p95_us: summary.p95_us,
            p99_us: summary.p99_us,
            buckets: summary.buckets,
        }
    }
}

impl From<MetricsSnapshot> for RuntimeMetrics {
    fn from(snapshot: MetricsSnapshot) -> Self {
        Self {
            lanes: snapshot.lanes,
            queue_capacity: snapshot.queue_capacity,
            pipeline_depth: snapshot.pipeline_depth,
            tenant_quota: snapshot.tenant_quota,
            connections_accepted: snapshot.connections_accepted,
            connections_active: snapshot.connections_active,
            requests: snapshot.requests,
            responses: snapshot.responses,
            read_timeouts: snapshot.read_timeouts,
            io_errors: snapshot.io_errors,
            handler_panics: snapshot.handler_panics,
            jobs_cancelled: snapshot.jobs_cancelled,
            deadlines_exceeded: snapshot.deadlines_exceeded,
            fair_share_violations: snapshot.fair_share_violations,
            queue_depth: snapshot.queue_depth,
            queue_high_water: snapshot.queue_high_water,
            cache_capacity_bytes: snapshot.cache_capacity_bytes,
            cache_entries: snapshot.cache_entries,
            cache_bytes: snapshot.cache_bytes,
            cache_hits: snapshot.cache_hits,
            cache_misses: snapshot.cache_misses,
            cache_evictions: snapshot.cache_evictions,
            cache_insertions: snapshot.cache_insertions,
            // The runtime snapshot has no registry view — the serve
            // dispatcher overlays these from its RegistryStats.
            sessions_active: 0,
            sessions_loaded: 0,
            sessions_evicted: 0,
            sessions_unloaded: 0,
            registry_bytes: 0,
            registry_capacity_bytes: 0,
            responses_traced: snapshot.responses_traced,
            stage_latency: snapshot.stage_latency.into_iter().map(LatencyStats::from).collect(),
            kind_latency: snapshot.kind_latency.into_iter().map(LatencyStats::from).collect(),
        }
    }
}

/// A request for the runtime's metrics in Prometheus text exposition
/// format (since protocol v5).
///
/// Like [`MetricsRequest`], this is answered only by the `gtl serve`
/// runtime; an in-process session answers with `invalid_argument`. The
/// same text is served on the optional `gtl serve --metrics-port` side
/// listener as a minimal HTTP/1.0 `GET /metrics` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsTextRequest {
    /// Protocol version (at least [`METRICS_TEXT_SINCE_VERSION`]).
    pub v: u32,
}

impl MetricsTextRequest {
    /// A current-version request.
    pub fn new() -> Self {
        Self { v: API_VERSION }
    }
}

impl Default for MetricsTextRequest {
    fn default() -> Self {
        Self::new()
    }
}

/// Answer to [`MetricsTextRequest`]: the Prometheus text rendering of
/// the live counters (see [`crate::prom::render_prometheus`]).
///
/// Like [`MetricsResponse`] this reports live state: never cached,
/// never byte-frozen, never golden-tested (only the *rendering* is
/// deterministic for fixed counter values, which is).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsTextResponse {
    /// Protocol version of this response (echoes the request).
    pub v: u32,
    /// The Prometheus text exposition body (`\n`-separated lines).
    pub text: String,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

/// The structured error payload carried on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Protocol version of this response. Echoes the request's version
    /// when that version is supported (so v1 clients see v1 error
    /// bytes); [`API_VERSION`] for `unsupported_version` errors and
    /// unparseable requests, where no valid version is known.
    pub v: u32,
    /// Stable machine-readable code (see [`ApiError::code`]).
    ///
    /// [`ApiError::code`]: crate::ApiError::code
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// This request's trace ID (protocol v5+): stamped into the
    /// response by the serve runtime, `None` — and omitted from the
    /// wire entirely — for v1–v4 requests and in-process sessions.
    #[serde(skip_if_null)]
    pub trace: Option<String>,
}

impl From<&crate::ApiError> for ErrorBody {
    fn from(err: &crate::ApiError) -> Self {
        Self { v: API_VERSION, code: err.code().to_string(), message: err.message(), trace: None }
    }
}

/// The wire request envelope: one externally tagged JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run the finder.
    Find(FindRequest),
    /// Run the placement + congestion pipeline.
    Place(PlaceRequest),
    /// Fetch design statistics.
    Stats(StatsRequest),
    /// Fetch serve-runtime metrics (since protocol v2).
    Metrics(MetricsRequest),
    /// Fetch serve-runtime metrics as Prometheus text (since protocol
    /// v5).
    MetricsText(MetricsTextRequest),
    /// Load a netlist into the session registry (since protocol v4).
    LoadNetlist(LoadNetlistRequest),
    /// Unload a named session (since protocol v4).
    UnloadNetlist(UnloadNetlistRequest),
    /// List resident sessions (since protocol v4).
    ListSessions(ListSessionsRequest),
}

impl Request {
    /// The request's `deadline_ms`, for the variants that carry one
    /// (compute-heavy Find/Place; the other pairs answer in
    /// microseconds and have no deadline field).
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            Self::Find(req) => req.deadline_ms,
            Self::Place(req) => req.deadline_ms,
            Self::Stats(_)
            | Self::Metrics(_)
            | Self::MetricsText(_)
            | Self::LoadNetlist(_)
            | Self::UnloadNetlist(_)
            | Self::ListSessions(_) => None,
        }
    }

    /// The session name this request addresses, for the compute
    /// variants that carry one (protocol v4+). `None` means the default
    /// session; the administration variants address the registry
    /// itself, not a session.
    pub fn session(&self) -> Option<&str> {
        match self {
            Self::Find(req) => req.session.as_deref(),
            Self::Place(req) => req.session.as_deref(),
            Self::Stats(req) => req.session.as_deref(),
            Self::Metrics(_)
            | Self::MetricsText(_)
            | Self::LoadNetlist(_)
            | Self::UnloadNetlist(_)
            | Self::ListSessions(_) => None,
        }
    }
}

/// The wire response envelope, mirroring [`Request`] plus
/// [`Response::Error`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Find`].
    Find(FindResponse),
    /// Answer to [`Request::Place`].
    Place(PlaceResponse),
    /// Answer to [`Request::Stats`].
    Stats(StatsResponse),
    /// Answer to [`Request::Metrics`].
    Metrics(MetricsResponse),
    /// Answer to [`Request::MetricsText`].
    MetricsText(MetricsTextResponse),
    /// Answer to [`Request::LoadNetlist`].
    LoadNetlist(LoadNetlistResponse),
    /// Answer to [`Request::UnloadNetlist`].
    UnloadNetlist(UnloadNetlistResponse),
    /// Answer to [`Request::ListSessions`].
    ListSessions(ListSessionsResponse),
    /// Any failure, with a stable code.
    Error(ErrorBody),
}
