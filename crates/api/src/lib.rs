//! `gtl-api` — the versioned, serializable entry point to the
//! tangled-logic system.
//!
//! The workspace's algorithms (`gtl-tangled`, `gtl-place`) expose plain
//! Rust types; this crate wraps them in **wire contracts** so every
//! front-end — the `gtl` CLI's `find --json`, the `gtl serve` JSON-lines
//! server, tests, future backends — speaks exactly one language:
//!
//! * [`FindRequest`] / [`FindResponse`], [`PlaceRequest`] /
//!   [`PlaceResponse`], [`StatsRequest`] / [`StatsResponse`],
//!   [`MetricsRequest`] / [`MetricsResponse`] (since v2): versioned
//!   (`v`, see [`API_VERSION`]; every version in
//!   [`MIN_API_VERSION`]`..=`[`API_VERSION`] is accepted and echoed
//!   back) request/response pairs wrapping
//!   [`FinderConfig`](gtl_tangled::FinderConfig) /
//!   [`FinderResult`](gtl_tangled::FinderResult), the placement
//!   pipeline, and the serve runtime's counters, all deriving real
//!   `serde` serialization;
//! * [`Request`] / [`Response`]: the externally tagged envelopes that
//!   travel as JSON lines;
//! * [`LoadNetlistRequest`] / [`UnloadNetlistRequest`] /
//!   [`ListSessionsRequest`] (since v4): registry administration — named
//!   multi-netlist sessions with deterministic LRU eviction under a
//!   byte budget, served by the [`SessionDispatcher`];
//! * [`ApiError`]: structured errors with stable codes
//!   (`bad_request`, `unsupported_version`, `invalid_argument`,
//!   `netlist`, `io`, `unknown_session`) and conventional CLI exit
//!   codes;
//! * [`Session`]: a builder-constructed owner of one loaded
//!   [`Netlist`](gtl_netlist::Netlist) that validates and serves repeated
//!   requests with reused scratch;
//! * [`SessionDispatcher`]: the default session plus a budgeted
//!   registry of named sessions, resolving each request's optional
//!   `session` field (v4+) to the session it addresses;
//! * [`serve`](mod@serve): the TCP JSON-lines server the `gtl serve`
//!   subcommand runs — rewritten on the [`gtl_runtime`] bounded service
//!   runtime: a fixed pool of compute lanes behind a bounded queue
//!   (backpressure), per-connection pipelining with order-preserving
//!   reorder buffers, a deterministic LRU response cache, read/idle
//!   timeouts and a max-concurrent-connections gate.
//!
//! # Determinism
//!
//! Responses are **byte-identical** for any worker count: request compute
//! fans out through `gtl_core::exec`, and the JSON renderer is
//! deterministic (declaration-ordered fields, shortest round-trip
//! floats). A `FindResponse` obtained over TCP equals the one from
//! `gtl find --json`, byte for byte — for any lane count, cache size
//! (a cache hit returns exactly the bytes a fresh compute would;
//! property-tested) and pipeline depth. The one exception is
//! [`MetricsResponse`], which reports live runtime counters and is
//! never cached.
//!
//! # Example
//!
//! ```
//! use gtl_api::{FindRequest, Request, Session};
//! use gtl_netlist::NetlistBuilder;
//! use gtl_tangled::FinderConfig;
//!
//! let mut b = NetlistBuilder::new();
//! let cells: Vec<_> = (0..10).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! for i in 0..9 {
//!     b.add_anonymous_net([cells[i], cells[i + 1]]);
//! }
//! let session = Session::builder().netlist(b.finish()).build().unwrap();
//!
//! // One JSON line in, one JSON line out — same contract as `gtl serve`.
//! let config = FinderConfig { num_seeds: 4, ..FinderConfig::default() };
//! let line = serde::json::to_string(&Request::Find(FindRequest::new(config)));
//! let reply = session.handle_line(&line);
//! assert!(reply.starts_with("{\"Find\":"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod prom;
mod registry;
pub mod serve;
mod session;
mod types;

pub use error::ApiError;
pub use registry::{netlist_cost, SessionDispatcher, DEFAULT_SESSION};
pub use serve::{bind, serve, serve_with_metrics, ServeOptions, ServeSummary};
pub use session::{load_netlist, Session, SessionBuilder};
pub use types::{
    ErrorBody, FindRequest, FindResponse, LatencyStats, ListSessionsRequest, ListSessionsResponse,
    LoadNetlistRequest, LoadNetlistResponse, MetricsRequest, MetricsResponse, MetricsTextRequest,
    MetricsTextResponse, NetlistSummary, PlaceRequest, PlaceResponse, Request, Response,
    RuntimeMetrics, SessionInfo, StatsRequest, StatsResponse, UnloadNetlistRequest,
    UnloadNetlistResponse, API_VERSION, DEADLINE_SINCE_VERSION, METRICS_SINCE_VERSION,
    METRICS_TEXT_SINCE_VERSION, MIN_API_VERSION, SESSION_SINCE_VERSION, TRACE_SINCE_VERSION,
};
