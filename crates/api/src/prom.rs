//! Prometheus text rendering of [`RuntimeMetrics`] — exposition format
//! 0.0.4, hand-rolled (no dependency), byte-deterministic.
//!
//! Two consumers share one renderer: the v5+ `MetricsText` request/
//! response pair and the `gtl serve --metrics-port` HTTP side listener.
//! Both receive the output of [`render_prometheus`], so a scrape and a
//! wire query can never disagree on a value's spelling.
//!
//! # One table, two mirrors
//!
//! Every *scalar* field of [`RuntimeMetrics`] has exactly one row in
//! [`COUNTER_EXPORTS`]: its metric name, its Prometheus type, and the
//! accessor that reads it. The renderer iterates the table; the
//! `export_table_covers_every_scalar_field` test diffs the table against
//! the serialized field set of [`RuntimeMetrics`] itself. Adding a
//! counter to the snapshot without exporting it (or exporting a field
//! that no longer exists) fails the build's test gate instead of
//! silently drifting — that is the counter-export contract as code.
//!
//! The two non-scalar fields (`stage_latency`, `kind_latency`) render
//! as Prometheus histograms over the fixed
//! [`SCRAPE_BOUNDS_US`] boundary set.
//!
//! # Determinism
//!
//! Output ordering is fixed: scalars in table order (= wire field
//! order), then stage histograms in stage order, then kind histograms
//! sorted by label (the runtime already emits them sorted). All values
//! are integers or exact microsecond-to-second decimal strings
//! (`{secs}.{micros:06}`), never floating-point formatting, so the
//! rendering of equal counters is equal bytes on every platform.

use crate::RuntimeMetrics;
use gtl_core::obs::SCRAPE_BOUNDS_US;

/// The Prometheus type of an exported scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing over a server's lifetime.
    Counter,
    /// A point-in-time level (config knobs, occupancy, high-water).
    Gauge,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One row per scalar [`RuntimeMetrics`] field, in wire field order:
/// `(metric name, type, accessor)`. The rendered metric is the name
/// prefixed with `gtl_`. See the module docs for the coverage contract.
#[allow(clippy::type_complexity)]
pub const COUNTER_EXPORTS: &[(&str, MetricKind, fn(&RuntimeMetrics) -> u64)] = &[
    ("lanes", MetricKind::Gauge, |m| m.lanes),
    ("queue_capacity", MetricKind::Gauge, |m| m.queue_capacity),
    ("pipeline_depth", MetricKind::Gauge, |m| m.pipeline_depth),
    ("tenant_quota", MetricKind::Gauge, |m| m.tenant_quota),
    ("connections_accepted", MetricKind::Counter, |m| m.connections_accepted),
    ("connections_active", MetricKind::Gauge, |m| m.connections_active),
    ("requests", MetricKind::Counter, |m| m.requests),
    ("responses", MetricKind::Counter, |m| m.responses),
    ("read_timeouts", MetricKind::Counter, |m| m.read_timeouts),
    ("io_errors", MetricKind::Counter, |m| m.io_errors),
    ("handler_panics", MetricKind::Counter, |m| m.handler_panics),
    ("jobs_cancelled", MetricKind::Counter, |m| m.jobs_cancelled),
    ("deadlines_exceeded", MetricKind::Counter, |m| m.deadlines_exceeded),
    ("fair_share_violations", MetricKind::Counter, |m| m.fair_share_violations),
    ("queue_depth", MetricKind::Gauge, |m| m.queue_depth),
    ("queue_high_water", MetricKind::Gauge, |m| m.queue_high_water),
    ("cache_capacity_bytes", MetricKind::Gauge, |m| m.cache_capacity_bytes),
    ("cache_entries", MetricKind::Gauge, |m| m.cache_entries),
    ("cache_bytes", MetricKind::Gauge, |m| m.cache_bytes),
    ("cache_hits", MetricKind::Counter, |m| m.cache_hits),
    ("cache_misses", MetricKind::Counter, |m| m.cache_misses),
    ("cache_evictions", MetricKind::Counter, |m| m.cache_evictions),
    ("cache_insertions", MetricKind::Counter, |m| m.cache_insertions),
    ("sessions_active", MetricKind::Gauge, |m| m.sessions_active),
    ("sessions_loaded", MetricKind::Counter, |m| m.sessions_loaded),
    ("sessions_evicted", MetricKind::Counter, |m| m.sessions_evicted),
    ("sessions_unloaded", MetricKind::Counter, |m| m.sessions_unloaded),
    ("registry_bytes", MetricKind::Gauge, |m| m.registry_bytes),
    ("registry_capacity_bytes", MetricKind::Gauge, |m| m.registry_capacity_bytes),
    ("responses_traced", MetricKind::Counter, |m| m.responses_traced),
];

/// An exact microsecond count as a Prometheus seconds value:
/// `{secs}.{micros:06}` — integer formatting only, so equal inputs
/// render equal bytes on every platform.
fn seconds(us: u64) -> String {
    format!("{}.{:06}", us / 1_000_000, us % 1_000_000)
}

fn render_histogram(
    out: &mut String,
    metric: &str,
    label_key: &str,
    series: &[crate::LatencyStats],
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {metric} histogram");
    for stats in series {
        debug_assert_eq!(stats.buckets.len(), SCRAPE_BOUNDS_US.len());
        for ((_, le), cumulative) in SCRAPE_BOUNDS_US.iter().zip(&stats.buckets) {
            let _ = writeln!(
                out,
                "{metric}_bucket{{{label_key}=\"{}\",le=\"{le}\"}} {cumulative}",
                stats.label
            );
        }
        let _ = writeln!(
            out,
            "{metric}_bucket{{{label_key}=\"{}\",le=\"+Inf\"}} {}",
            stats.label, stats.count
        );
        let _ = writeln!(
            out,
            "{metric}_sum{{{label_key}=\"{}\"}} {}",
            stats.label,
            seconds(stats.sum_us)
        );
        let _ = writeln!(out, "{metric}_count{{{label_key}=\"{}\"}} {}", stats.label, stats.count);
    }
}

/// Renders the full metrics view as Prometheus text: every
/// [`COUNTER_EXPORTS`] scalar, then the per-stage and per-request-kind
/// latency histograms. Byte-deterministic for equal inputs; ends with a
/// newline.
pub fn render_prometheus(metrics: &RuntimeMetrics) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, kind, get) in COUNTER_EXPORTS {
        let _ = writeln!(out, "# TYPE gtl_{name} {}", kind.label());
        let _ = writeln!(out, "gtl_{name} {}", get(metrics));
    }
    render_histogram(&mut out, "gtl_stage_latency_seconds", "stage", &metrics.stage_latency);
    render_histogram(&mut out, "gtl_request_latency_seconds", "kind", &metrics.kind_latency);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyStats;
    use gtl_runtime::MetricsSnapshot;

    fn scalar_field_names(metrics: &RuntimeMetrics) -> Vec<String> {
        let parsed = serde::json::parse(&serde::json::to_string(metrics)).unwrap();
        let serde::Value::Obj(fields) = parsed else {
            panic!("RuntimeMetrics serializes as an object");
        };
        fields
            .into_iter()
            .map(|(name, _)| name)
            .filter(|name| name != "stage_latency" && name != "kind_latency")
            .collect()
    }

    /// The counter-export contract: the table covers every scalar wire
    /// field, in wire order, with no stale rows — so the Prometheus
    /// rendering and the v2+/v5+ JSON mirrors can never drift apart.
    #[test]
    fn export_table_covers_every_scalar_field() {
        let metrics = RuntimeMetrics::from(MetricsSnapshot::default());
        let fields = scalar_field_names(&metrics);
        let table: Vec<String> =
            COUNTER_EXPORTS.iter().map(|(name, _, _)| (*name).to_string()).collect();
        assert_eq!(
            fields, table,
            "COUNTER_EXPORTS must list every scalar RuntimeMetrics field in wire order — \
             update the table in crates/api/src/prom.rs alongside the struct"
        );
    }

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(seconds(0), "0.000000");
        assert_eq!(seconds(1), "0.000001");
        assert_eq!(seconds(999_999), "0.999999");
        assert_eq!(seconds(1_000_000), "1.000000");
        assert_eq!(seconds(12_345_678), "12.345678");
    }

    fn golden_metrics() -> RuntimeMetrics {
        let mut metrics = RuntimeMetrics::from(MetricsSnapshot::default());
        metrics.lanes = 4;
        metrics.queue_capacity = 64;
        metrics.pipeline_depth = 8;
        metrics.tenant_quota = 16;
        metrics.connections_accepted = 3;
        metrics.requests = 7;
        metrics.responses = 7;
        metrics.cache_capacity_bytes = 65_536;
        metrics.cache_hits = 2;
        metrics.cache_misses = 5;
        metrics.cache_insertions = 5;
        metrics.cache_entries = 5;
        metrics.cache_bytes = 640;
        metrics.sessions_active = 1;
        metrics.sessions_loaded = 1;
        metrics.registry_bytes = 1_024;
        metrics.registry_capacity_bytes = 1 << 20;
        metrics.responses_traced = 7;
        let mut histogram = gtl_core::LatencyHistogram::new();
        for us in [90, 240, 800, 800, 2_000, 30_000, 1_200_000] {
            histogram.record_us(us);
        }
        let summary = gtl_runtime::LatencySummary::of("lane_compute", &histogram);
        metrics.stage_latency = vec![LatencyStats::from(summary.clone())];
        let mut find = LatencyStats::from(summary);
        find.label = "find".to_string();
        metrics.kind_latency = vec![find];
        metrics
    }

    /// The committed scrape snapshot: rendering a fixed metrics view
    /// must reproduce `tests/golden/metrics.prom` byte-for-byte.
    /// Re-bless with `GTL_BLESS=1` after an intentional format change.
    #[test]
    fn golden_prometheus_rendering_is_frozen() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/metrics.prom");
        let rendered = render_prometheus(&golden_metrics());
        if std::env::var_os("GTL_BLESS").is_some() {
            std::fs::write(path, &rendered).unwrap();
            return;
        }
        let golden = std::fs::read_to_string(path)
            .expect("tests/golden/metrics.prom missing — run with GTL_BLESS=1 to create it");
        assert_eq!(
            rendered, golden,
            "Prometheus rendering drifted from tests/golden/metrics.prom — if intentional, \
             re-bless with GTL_BLESS=1"
        );
    }

    #[test]
    fn histograms_render_bounds_inf_sum_count() {
        let text = render_prometheus(&golden_metrics());
        assert!(text.contains("# TYPE gtl_stage_latency_seconds histogram"));
        assert!(text
            .contains("gtl_stage_latency_seconds_bucket{stage=\"lane_compute\",le=\"0.0001\"} 1"));
        assert!(
            text.contains("gtl_stage_latency_seconds_bucket{stage=\"lane_compute\",le=\"+Inf\"} 7")
        );
        assert!(text.contains("gtl_request_latency_seconds_count{kind=\"find\"} 7"));
        // The sum is exact integer math: 90+240+800+800+2000+30000+1200000 µs.
        assert!(text.contains("gtl_stage_latency_seconds_sum{stage=\"lane_compute\"} 1.233930"));
        assert!(text.ends_with('\n'));
    }
}
