//! The [`Session`]: one loaded netlist serving repeated requests.
//!
//! A session is the unit of request dispatch: it owns the [`Netlist`],
//! validates each request (version, then arguments) before any compute
//! starts, and reuses allocation-heavy scratch across requests — today
//! the finder's pruning bitset ([`gtl_tangled::PruneScratch`]), behind a
//! mutex so concurrent `serve` connections share it safely. All heavy
//! compute inside a request fans out through `gtl_core::exec` (via the
//! finder and the sharded placer), so a response is byte-identical for
//! any worker count.

use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gtl_core::cancel::{CancelToken, Deadline};
use gtl_netlist::{bookshelf, hgr, verilog, Netlist, NetlistStats};
use gtl_place::congestion;
use gtl_tangled::{PruneScratch, TangledLogicFinder};

use crate::{
    ApiError, ErrorBody, FindRequest, FindResponse, MetricsRequest, MetricsResponse,
    MetricsTextRequest, MetricsTextResponse, NetlistSummary, PlaceRequest, PlaceResponse, Request,
    Response, RuntimeMetrics, StatsRequest, StatsResponse, API_VERSION, DEADLINE_SINCE_VERSION,
    METRICS_SINCE_VERSION, METRICS_TEXT_SINCE_VERSION, MIN_API_VERSION, SESSION_SINCE_VERSION,
};

/// Loads a netlist, selecting the parser from the file extension
/// (`.hgr` hMETIS, `.aux` Bookshelf, `.v` structural Verilog).
///
/// # Errors
///
/// [`ApiError::BadRequest`] for unknown extensions,
/// [`ApiError::Netlist`] for load/parse failures.
pub fn load_netlist(path: &str) -> Result<Netlist, ApiError> {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("hgr") => Ok(hgr::read(path)?),
        Some("aux") => Ok(bookshelf::read_aux(path)?.netlist),
        Some("v") => Ok(verilog::read(path)?.netlist),
        other => Err(ApiError::bad_request(format!(
            "unsupported input extension {other:?} (expected .hgr, .aux or .v)"
        ))),
    }
}

/// Caps on remote-supplied request sizes. Requests arrive over the
/// network; without bounds a single hostile line could drive the server
/// into an allocator abort (which no thread can catch) or hours of
/// compute. The caps are far above the paper-scale workloads
/// (`m = 100` seeds, `Z = 100K` orderings, 32-tile grids).
const MAX_NUM_SEEDS: usize = 100_000;
/// Cap on [`FinderConfig::max_order_len`](gtl_tangled::FinderConfig).
const MAX_ORDER_LEN: usize = 10_000_000;
/// Cap on Phase III refinement seeds per candidate.
const MAX_REFINE_SEEDS: usize = 64;
/// Cap on the congestion grid side (a `t × t` grid allocates two
/// `t²`-f64 slabs: 2048² ≈ 67 MB).
const MAX_ROUTING_TILES: usize = 2_048;
/// Cap on placer solve/spread iterations.
const MAX_PLACER_ITERATIONS: usize = 1_000;
/// Cap on CG iterations per solve.
const MAX_CG_ITERATIONS: usize = 100_000;
/// Cap on every request-supplied worker count (`0` = all cores is always
/// allowed); each worker is an OS thread.
const MAX_THREADS: usize = 1_024;
/// Cap on the requested shard-grid side (the auto-sizer itself never
/// exceeds 16; the placer allocates per-shard state for `g²` shards).
const MAX_SHARD_GRID: usize = 64;
/// Cap on spreading recursion depth (each level is a stack frame).
const MAX_SPREAD_DEPTH: usize = 256;

/// Validates a request-supplied worker count (`0` = all cores).
fn check_threads(threads: usize, field: &str) -> Result<(), ApiError> {
    if threads > MAX_THREADS {
        return Err(ApiError::invalid_argument(format!(
            "{field} must be at most {MAX_THREADS} (0 = all cores)"
        )));
    }
    Ok(())
}

/// Builds the effective cancellation token for one request: the caller's
/// `base` token (the serve runtime's per-connection token, or a fresh
/// never-firing one for in-process dispatch), narrowed by the request's
/// `deadline_ms` anchored at `anchor` (request admission, so queue wait
/// counts against the deadline).
///
/// # Errors
///
/// [`ApiError::InvalidArgument`] when `deadline_ms` is supplied with a
/// protocol version older than [`DEADLINE_SINCE_VERSION`].
fn request_token(
    base: &CancelToken,
    v: u32,
    deadline_ms: Option<u64>,
    anchor: Instant,
) -> Result<CancelToken, ApiError> {
    match deadline_ms {
        None => Ok(base.clone()),
        Some(_) if v < DEADLINE_SINCE_VERSION => Err(ApiError::invalid_argument(format!(
            "deadline_ms requires protocol version {DEADLINE_SINCE_VERSION} (requested {v})"
        ))),
        Some(ms) => match Deadline::anchored(anchor, Duration::from_millis(ms)) {
            Some(deadline) => Ok(base.child_with_deadline(deadline)),
            // An unrepresentably far deadline is the same as none.
            None => Ok(base.clone()),
        },
    }
}

/// Validates a request's `session` field against its protocol version.
/// The field exists since [`SESSION_SINCE_VERSION`]; on older versions
/// it is rejected exactly like a pre-v3 `deadline_ms`, so v1–v3 behavior
/// stays build-independent. A session name carried on a new-enough
/// version is *resolved by the serve dispatcher* before the request
/// reaches a [`Session`]; at this level it is validation-only.
fn check_session_field(v: u32, session: Option<&str>) -> Result<(), ApiError> {
    match session {
        Some(_) if v < SESSION_SINCE_VERSION => Err(ApiError::invalid_argument(format!(
            "session requires protocol version {SESSION_SINCE_VERSION} (requested {v})"
        ))),
        _ => Ok(()),
    }
}

/// Builder for [`Session`] (see [`Session::builder`]).
#[derive(Debug, Default)]
pub struct SessionBuilder {
    netlist: Option<Netlist>,
}

impl SessionBuilder {
    /// Uses an already-built netlist.
    pub fn netlist(mut self, netlist: Netlist) -> Self {
        self.netlist = Some(netlist);
        self
    }

    /// Loads the netlist from a file (extension selects the parser).
    ///
    /// # Errors
    ///
    /// See [`load_netlist`].
    pub fn load(mut self, path: &str) -> Result<Self, ApiError> {
        self.netlist = Some(load_netlist(path)?);
        Ok(self)
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// [`ApiError::InvalidArgument`] if no netlist was provided or the
    /// netlist is empty (the finder has nothing to search).
    pub fn build(self) -> Result<Session, ApiError> {
        let netlist =
            self.netlist.ok_or_else(|| ApiError::invalid_argument("session requires a netlist"))?;
        if netlist.num_cells() == 0 {
            return Err(ApiError::invalid_argument("netlist has no cells"));
        }
        let summary = NetlistSummary::of(&netlist);
        // The netlist is immutable for the session's lifetime, so the
        // full statistics are computed once here, not per Stats request.
        let stats = NetlistStats::compute(&netlist);
        let scratch = Mutex::new(PruneScratch::new(netlist.num_cells()));
        let place_scratch = Mutex::new(gtl_place::PlaceScratch::new());
        Ok(Session { netlist, summary, stats, scratch, place_scratch })
    }
}

/// A loaded netlist plus per-session scratch, serving [`Request`]s.
///
/// # Example
///
/// ```
/// use gtl_api::{FindRequest, Session};
/// use gtl_netlist::NetlistBuilder;
/// use gtl_tangled::FinderConfig;
///
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..8).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// for i in 0..7 {
///     b.add_anonymous_net([cells[i], cells[i + 1]]);
/// }
/// let session = Session::builder().netlist(b.finish()).build().unwrap();
///
/// let req = FindRequest::new(FinderConfig { num_seeds: 4, ..FinderConfig::default() });
/// let resp = session.find(&req).unwrap();
/// assert_eq!(resp.netlist.num_cells, 8);
/// ```
#[derive(Debug)]
pub struct Session {
    netlist: Netlist,
    summary: NetlistSummary,
    stats: NetlistStats,
    scratch: Mutex<PruneScratch>,
    place_scratch: Mutex<gtl_place::PlaceScratch>,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The netlist this session serves.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The summary echoed in every response.
    pub fn summary(&self) -> &NetlistSummary {
        &self.summary
    }

    /// Accepts any version in [`MIN_API_VERSION`]`..=`[`API_VERSION`];
    /// successful responses echo the request's version, so clients of an
    /// older protocol receive byte-identical answers from newer builds.
    fn check_version(&self, v: u32) -> Result<(), ApiError> {
        if (MIN_API_VERSION..=API_VERSION).contains(&v) {
            Ok(())
        } else {
            Err(ApiError::UnsupportedVersion { requested: v, supported: API_VERSION })
        }
    }

    /// Runs the three-phase finder.
    ///
    /// # Errors
    ///
    /// Version and argument validation errors; never panics on bad
    /// requests (the preconditions the finder asserts are checked here
    /// and reported as [`ApiError::InvalidArgument`], and remote-supplied
    /// sizes are capped before any allocation happens — a hostile request
    /// must not be able to abort the server).
    pub fn find(&self, request: &FindRequest) -> Result<FindResponse, ApiError> {
        self.find_cancellable(request, &CancelToken::new(), Instant::now())
    }

    /// [`Session::find`] under a caller-supplied cancellation `base`
    /// token (the serve runtime passes the connection's token) and
    /// deadline anchor. The request's `deadline_ms` (v3+) narrows the
    /// token; an already-expired deadline is answered before any compute
    /// starts, and a deadline firing mid-run aborts the finder at its
    /// next checkpoint (one seed search).
    ///
    /// # Errors
    ///
    /// Everything [`Session::find`] reports, plus
    /// [`ApiError::DeadlineExceeded`] / [`ApiError::Cancelled`].
    pub fn find_cancellable(
        &self,
        request: &FindRequest,
        base: &CancelToken,
        anchor: Instant,
    ) -> Result<FindResponse, ApiError> {
        self.check_version(request.v)?;
        check_session_field(request.v, request.session.as_deref())?;
        let token = request_token(base, request.v, request.deadline_ms, anchor)?;
        // The cheap pre-compute probe: an expired deadline (or lost
        // connection) is answered here, before any lane time is spent.
        token.checkpoint().map_err(ApiError::from)?;
        let config = request.config;
        if config.num_seeds == 0 || config.num_seeds > MAX_NUM_SEEDS {
            return Err(ApiError::invalid_argument(format!(
                "config.num_seeds must be in 1..={MAX_NUM_SEEDS}"
            )));
        }
        if config.max_order_len == 0 || config.max_order_len > MAX_ORDER_LEN {
            return Err(ApiError::invalid_argument(format!(
                "config.max_order_len must be in 1..={MAX_ORDER_LEN}"
            )));
        }
        if config.refine_seeds > MAX_REFINE_SEEDS {
            return Err(ApiError::invalid_argument(format!(
                "config.refine_seeds must be at most {MAX_REFINE_SEEDS}"
            )));
        }
        check_threads(config.threads, "config.threads")?;
        let finder = TangledLogicFinder::new(&self.netlist, config);
        // Reuse the session scratch when it is free; under contention run
        // with a fresh local one instead of serializing concurrent finds
        // behind the mutex (the scratch is a pure allocation cache — the
        // result is identical either way).
        let result = match self.scratch.try_lock() {
            Ok(mut scratch) => finder.run_with_scratch_cancellable(&mut scratch, &token),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                finder.run_with_scratch_cancellable(&mut poisoned.into_inner(), &token)
            }
            Err(std::sync::TryLockError::WouldBlock) => finder.run_with_scratch_cancellable(
                &mut PruneScratch::new(self.netlist.num_cells()),
                &token,
            ),
        }?;
        Ok(FindResponse { v: request.v, netlist: self.summary.clone(), result, trace: None })
    }

    /// Runs global placement and congestion estimation.
    ///
    /// # Errors
    ///
    /// Version and argument validation errors.
    pub fn place(&self, request: &PlaceRequest) -> Result<PlaceResponse, ApiError> {
        self.place_cancellable(request, &CancelToken::new(), Instant::now())
    }

    /// [`Session::place`] under a caller-supplied cancellation `base`
    /// token and deadline anchor (see [`Session::find_cancellable`]);
    /// the placer checkpoints between solve/spread iterations and the
    /// congestion estimator between tile stripes.
    ///
    /// # Errors
    ///
    /// Everything [`Session::place`] reports, plus
    /// [`ApiError::DeadlineExceeded`] / [`ApiError::Cancelled`].
    pub fn place_cancellable(
        &self,
        request: &PlaceRequest,
        base: &CancelToken,
        anchor: Instant,
    ) -> Result<PlaceResponse, ApiError> {
        self.check_version(request.v)?;
        check_session_field(request.v, request.session.as_deref())?;
        let token = request_token(base, request.v, request.deadline_ms, anchor)?;
        token.checkpoint().map_err(ApiError::from)?;
        if !(request.utilization > 0.0 && request.utilization <= 1.0) {
            return Err(ApiError::invalid_argument("utilization must be in (0, 1]"));
        }
        if request.routing.tiles == 0 || request.routing.tiles > MAX_ROUTING_TILES {
            return Err(ApiError::invalid_argument(format!(
                "routing.tiles must be in 1..={MAX_ROUTING_TILES}"
            )));
        }
        if request.placer.iterations == 0 || request.placer.iterations > MAX_PLACER_ITERATIONS {
            return Err(ApiError::invalid_argument(format!(
                "placer.iterations must be in 1..={MAX_PLACER_ITERATIONS}"
            )));
        }
        if request.placer.max_cg_iterations > MAX_CG_ITERATIONS {
            return Err(ApiError::invalid_argument(format!(
                "placer.max_cg_iterations must be at most {MAX_CG_ITERATIONS}"
            )));
        }
        if request.placer.shard_grid > MAX_SHARD_GRID {
            return Err(ApiError::invalid_argument(format!(
                "placer.shard_grid must be at most {MAX_SHARD_GRID} (0 = auto)"
            )));
        }
        let spread = &request.placer.spread;
        if spread.leaf_cells == 0 || spread.max_depth > MAX_SPREAD_DEPTH {
            return Err(ApiError::invalid_argument(format!(
                "placer.spread requires leaf_cells >= 1 and max_depth <= {MAX_SPREAD_DEPTH}"
            )));
        }
        if !(spread.target_utilization > 0.0 && spread.target_utilization.is_finite()) {
            return Err(ApiError::invalid_argument(
                "placer.spread.target_utilization must be positive and finite",
            ));
        }
        check_threads(request.placer.threads, "placer.threads")?;
        check_threads(request.routing.threads, "routing.threads")?;
        let die = gtl_place::Die::for_netlist(&self.netlist, request.utilization);
        // Reuse the session's Laplacian-build scratch when it is free;
        // under contention fall back to a fresh one rather than queueing
        // (the scratch is a pure allocation cache — results are identical).
        let placement = match self.place_scratch.try_lock() {
            Ok(mut scratch) => gtl_place::place_cancellable_with_scratch(
                &self.netlist,
                &die,
                &request.placer,
                &token,
                &mut scratch,
            ),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                gtl_place::place_cancellable_with_scratch(
                    &self.netlist,
                    &die,
                    &request.placer,
                    &token,
                    &mut poisoned.into_inner(),
                )
            }
            Err(std::sync::TryLockError::WouldBlock) => gtl_place::place_cancellable_with_scratch(
                &self.netlist,
                &die,
                &request.placer,
                &token,
                &mut gtl_place::PlaceScratch::new(),
            ),
        }?;
        let hpwl = gtl_place::hpwl(&self.netlist, &placement);
        let map = congestion::estimate_cancellable(
            &self.netlist,
            &placement,
            &die,
            &request.routing,
            &token,
        )?;
        Ok(PlaceResponse {
            v: request.v,
            netlist: self.summary.clone(),
            die,
            hpwl,
            congestion: map.report(),
            trace: None,
        })
    }

    /// Computes whole-design statistics.
    ///
    /// # Errors
    ///
    /// Version validation errors.
    pub fn stats(&self, request: &StatsRequest) -> Result<StatsResponse, ApiError> {
        self.check_version(request.v)?;
        check_session_field(request.v, request.session.as_deref())?;
        Ok(StatsResponse { v: request.v, stats: self.stats.clone(), trace: None })
    }

    /// Builds a [`MetricsResponse`] from a runtime snapshot — called by
    /// the serve runtime, which owns the counters (see
    /// [`serve`](crate::serve())). The pair exists since protocol v2;
    /// older versions are rejected.
    ///
    /// # Errors
    ///
    /// Version validation errors.
    pub fn metrics(
        &self,
        request: &MetricsRequest,
        snapshot: gtl_runtime::MetricsSnapshot,
    ) -> Result<MetricsResponse, ApiError> {
        self.check_version(request.v)?;
        if request.v < METRICS_SINCE_VERSION {
            return Err(ApiError::invalid_argument(format!(
                "Metrics requires protocol version {METRICS_SINCE_VERSION} (requested {})",
                request.v
            )));
        }
        Ok(MetricsResponse { v: request.v, metrics: RuntimeMetrics::from(snapshot), trace: None })
    }

    /// Builds a [`MetricsTextResponse`] — the Prometheus text rendering
    /// of already-assembled (and, on the serve path, registry-overlaid)
    /// counters. The pair exists since protocol v5; older versions are
    /// rejected, like [`Session::metrics`] before v2.
    ///
    /// # Errors
    ///
    /// Version validation errors.
    pub fn metrics_text(
        &self,
        request: &MetricsTextRequest,
        metrics: &RuntimeMetrics,
    ) -> Result<MetricsTextResponse, ApiError> {
        self.check_version(request.v)?;
        if request.v < METRICS_TEXT_SINCE_VERSION {
            return Err(ApiError::invalid_argument(format!(
                "MetricsText requires protocol version {METRICS_TEXT_SINCE_VERSION} (requested {})",
                request.v
            )));
        }
        Ok(MetricsTextResponse {
            v: request.v,
            text: crate::prom::render_prometheus(metrics),
            trace: None,
        })
    }

    /// Dispatches an envelope, mapping failures onto [`Response::Error`]
    /// (this never fails — every outcome is a response).
    ///
    /// [`Request::Metrics`] is the one envelope a bare session cannot
    /// serve: the counters belong to the `gtl serve` runtime, which
    /// intercepts it before dispatch (see [`serve`](crate::serve())).
    /// Here it is answered with a structured `invalid_argument` error.
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_cancellable(request, &CancelToken::new(), Instant::now())
    }

    /// [`Session::handle`] under a caller-supplied cancellation `base`
    /// token and deadline anchor: cancellation and deadline outcomes
    /// become `cancelled` / `deadline_exceeded` error responses (echoing
    /// the request's version like every other error).
    pub fn handle_cancellable(
        &self,
        request: &Request,
        base: &CancelToken,
        anchor: Instant,
    ) -> Response {
        let requested_v = match request {
            Request::Find(req) => req.v,
            Request::Place(req) => req.v,
            Request::Stats(req) => req.v,
            Request::Metrics(req) => req.v,
            Request::MetricsText(req) => req.v,
            Request::LoadNetlist(req) => req.v,
            Request::UnloadNetlist(req) => req.v,
            Request::ListSessions(req) => req.v,
        };
        let outcome = match request {
            Request::Find(req) => self.find_cancellable(req, base, anchor).map(Response::Find),
            Request::Place(req) => self.place_cancellable(req, base, anchor).map(Response::Place),
            Request::Stats(req) => self.stats(req).map(Response::Stats),
            Request::Metrics(_) | Request::MetricsText(_) => Err(ApiError::invalid_argument(
                "Metrics is served by the `gtl serve` runtime (no runtime is attached to an \
                 in-process session)",
            )),
            Request::LoadNetlist(_) | Request::UnloadNetlist(_) | Request::ListSessions(_) => {
                Err(ApiError::invalid_argument(
                    "the session registry is served by the `gtl serve` runtime (an in-process \
                     session owns exactly one netlist)",
                ))
            }
        };
        outcome.unwrap_or_else(|err| {
            let mut body = ErrorBody::from(&err);
            // Like success responses, errors echo the request's version —
            // a v1 client sees exactly the bytes a v1 build produced. A
            // version outside the supported range can't be spoken back,
            // so those errors (and parse failures, where no version is
            // known) stamp the build's own API_VERSION.
            if !matches!(err, ApiError::UnsupportedVersion { .. }) {
                body.v = requested_v;
            }
            Response::Error(body)
        })
    }

    /// The full wire round-trip for one JSON line: parse, dispatch,
    /// serialize. Malformed input becomes a `bad_request` error response;
    /// the returned string is always exactly one JSON document with no
    /// trailing newline.
    ///
    /// Determinism contract: the same input line always yields the same
    /// output bytes, for any `threads` value in the request and any
    /// machine — requests fan out through `gtl_core::exec` and the JSON
    /// renderer is deterministic.
    pub fn handle_line(&self, line: &str) -> String {
        let mut out = String::new();
        self.handle_line_into(line, &mut out);
        out
    }

    /// [`handle_line`](Self::handle_line) into a caller-owned buffer:
    /// appends the response document onto `out` (cleared first), reusing
    /// its allocation. The serve runtime calls this with a recycled
    /// per-connection buffer so steady-state request handling allocates
    /// no fresh response `String`; the bytes are identical to
    /// [`handle_line`](Self::handle_line).
    pub fn handle_line_into(&self, line: &str, out: &mut String) {
        out.clear();
        match serde::json::from_str::<Request>(line) {
            Ok(request) => self.handle_into(&request, out),
            Err(e) => serde::json::to_string_into(
                &Response::Error(ErrorBody::from(&ApiError::bad_request(e.to_string()))),
                out,
            ),
        }
    }

    /// Dispatches an envelope and appends the serialized response onto
    /// `out` (same contract as [`handle`](Self::handle), without the
    /// intermediate `String`).
    pub fn handle_into(&self, request: &Request, out: &mut String) {
        serde::json::to_string_into(&self.handle(request), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;
    use gtl_tangled::FinderConfig;

    fn two_cliques() -> Netlist {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..40).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for base in [0, 20] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    b.add_anonymous_net([cells[base + i], cells[base + j]]);
                }
            }
        }
        for i in 0..40 {
            b.add_anonymous_net([cells[i], cells[(i + 1) % 40]]);
        }
        b.finish()
    }

    fn session() -> Session {
        Session::builder().netlist(two_cliques()).build().unwrap()
    }

    fn find_request() -> FindRequest {
        FindRequest::new(FinderConfig {
            num_seeds: 12,
            min_size: 4,
            max_order_len: 24,
            rng_seed: 7,
            ..FinderConfig::default()
        })
    }

    #[test]
    fn find_discovers_structures() {
        let resp = session().find(&find_request()).unwrap();
        assert_eq!(resp.v, API_VERSION);
        assert_eq!(resp.netlist.num_cells, 40);
        assert!(!resp.result.gtls.is_empty());
    }

    #[test]
    fn version_mismatch_is_structured() {
        let mut req = find_request();
        req.v = 99;
        let err = session().find(&req).unwrap_err();
        assert_eq!(err.code(), "unsupported_version");
    }

    #[test]
    fn invalid_arguments_do_not_panic() {
        let s = session();
        let mut req = find_request();
        req.config.num_seeds = 0;
        assert_eq!(s.find(&req).unwrap_err().code(), "invalid_argument");

        // Remote-supplied sizes are capped before any allocation.
        req.config.num_seeds = usize::MAX;
        assert_eq!(s.find(&req).unwrap_err().code(), "invalid_argument");

        let mut preq = PlaceRequest::new();
        preq.utilization = 0.0;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.utilization = f64::NAN;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.utilization = 0.7;
        preq.routing.tiles = usize::MAX;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.routing.tiles = 16;
        preq.placer.shard_grid = usize::MAX;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.placer.shard_grid = 0;
        preq.placer.threads = usize::MAX;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.placer.threads = 0;
        preq.placer.spread.leaf_cells = 0;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");
        preq.placer.spread.leaf_cells = 12;
        preq.placer.spread.max_depth = usize::MAX;
        assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument");

        let mut freq = find_request();
        freq.config.threads = usize::MAX;
        assert_eq!(s.find(&freq).unwrap_err().code(), "invalid_argument");
    }

    #[test]
    fn place_and_stats_answer() {
        let s = session();
        let place = s.place(&PlaceRequest::new()).unwrap();
        assert!(place.hpwl > 0.0);
        assert!(place.die.width > 0.0);
        let stats = s.stats(&StatsRequest::new()).unwrap();
        assert_eq!(stats.stats.num_cells, 40);
    }

    #[test]
    fn error_responses_echo_a_supported_request_version() {
        let s = session();
        // A v1 request failing validation answers with v:1 — the bytes a
        // v1 build produced.
        let mut req = find_request();
        req.v = 1;
        req.config.num_seeds = 0;
        let Response::Error(body) = s.handle(&Request::Find(req)) else {
            panic!("expected error response");
        };
        assert_eq!(body.v, 1);
        assert_eq!(body.code, "invalid_argument");
        // An unsupported version can't be spoken back: the build's own
        // version is stamped, and the message names the range.
        let mut req = find_request();
        req.v = 99;
        let Response::Error(body) = s.handle(&Request::Find(req)) else {
            panic!("expected error response");
        };
        assert_eq!(body.v, API_VERSION);
        assert!(body.message.contains("1..=5"), "{}", body.message);
    }

    #[test]
    fn handle_never_fails() {
        let s = session();
        let mut req = find_request();
        req.v = API_VERSION + 1;
        let Response::Error(body) = s.handle(&Request::Find(req)) else {
            panic!("expected error response");
        };
        assert_eq!(body.code, "unsupported_version");
    }

    #[test]
    fn handle_line_is_total_and_deterministic() {
        let s = session();
        let line = serde::json::to_string(&Request::Find(find_request()));
        let a = s.handle_line(&line);
        let b = s.handle_line(&line);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"Find\":{\"v\":5,"), "{a}");
        // A v1 request is still accepted and echoes v1 — the golden
        // round-trip from the v1 protocol stays byte-identical (an
        // in-process session stamps no trace for any version).
        let v1 = s.handle_line(&line.replacen("\"v\":5", "\"v\":1", 1));
        assert!(v1.starts_with("{\"Find\":{\"v\":1,"), "{v1}");
        assert_eq!(v1.replacen("\"v\":1", "\"v\":5", 1), a);

        let err = s.handle_line("this is not json");
        assert!(err.contains("\"code\":\"bad_request\""), "{err}");
    }

    #[test]
    fn expired_deadline_answers_deadline_exceeded_before_compute() {
        let s = session();
        let mut req = find_request();
        req.deadline_ms = Some(0);
        let err = s.find(&req).unwrap_err();
        assert_eq!(err.code(), "deadline_exceeded");
        assert_eq!(err.exit_code(), 4);

        let mut preq = PlaceRequest::new();
        preq.deadline_ms = Some(0);
        assert_eq!(s.place(&preq).unwrap_err().code(), "deadline_exceeded");
    }

    #[test]
    fn deadline_ms_requires_protocol_v3() {
        let s = session();
        for v in [1, 2] {
            let mut req = find_request();
            req.v = v;
            req.deadline_ms = Some(5_000);
            let err = s.find(&req).unwrap_err();
            assert_eq!(err.code(), "invalid_argument", "v={v}");
            assert!(err.message().contains("deadline_ms"), "{}", err.message());
        }
    }

    #[test]
    fn generous_deadline_leaves_the_response_identical() {
        let s = session();
        let plain = serde::json::to_string(&s.find(&find_request()).unwrap());
        let mut req = find_request();
        req.deadline_ms = Some(3_600_000);
        let with_deadline = serde::json::to_string(&s.find(&req).unwrap());
        assert_eq!(plain, with_deadline);
        // An absurdly far deadline saturates to "no deadline".
        req.deadline_ms = Some(u64::MAX);
        assert_eq!(plain, serde::json::to_string(&s.find(&req).unwrap()));
    }

    #[test]
    fn cancelled_base_token_reaches_the_dispatch() {
        let s = session();
        let base = CancelToken::new();
        base.cancel();
        let err = s.find_cancellable(&find_request(), &base, Instant::now()).unwrap_err();
        assert_eq!(err.code(), "cancelled");
        // Through the envelope path the outcome is an error *response*
        // echoing the request's version.
        let mut req = find_request();
        req.v = 1;
        let Response::Error(body) =
            s.handle_cancellable(&Request::Find(req), &base, Instant::now())
        else {
            panic!("expected error response");
        };
        assert_eq!(body.code, "cancelled");
        assert_eq!(body.v, 1);
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let s = session();
        let first = format!("{:?}", s.find(&find_request()).unwrap().result);
        let second = format!("{:?}", s.find(&find_request()).unwrap().result);
        assert_eq!(first, second);
    }

    #[test]
    fn session_field_requires_protocol_v4() {
        let s = session();
        for v in [1, 2, 3] {
            let mut req = find_request();
            req.v = v;
            req.session = Some("other".into());
            let err = s.find(&req).unwrap_err();
            assert_eq!(err.code(), "invalid_argument", "v={v}");
            assert!(err.message().contains("session"), "{}", err.message());

            let mut preq = PlaceRequest::new();
            preq.v = v;
            preq.session = Some("other".into());
            assert_eq!(s.place(&preq).unwrap_err().code(), "invalid_argument", "v={v}");

            let sreq = StatsRequest { v, session: Some("other".into()) };
            assert_eq!(s.stats(&sreq).unwrap_err().code(), "invalid_argument", "v={v}");
        }
    }

    #[test]
    fn v4_session_field_is_dispatcher_resolved_not_session_rejected() {
        // By the time a request reaches a Session, the serve dispatcher
        // has already resolved the name to this very session, so the
        // field is accepted and the response is byte-identical to the
        // session-less request (minus request bytes, which differ).
        let s = session();
        let plain = serde::json::to_string(&s.stats(&StatsRequest::new()).unwrap());
        let addressed = StatsRequest { v: API_VERSION, session: Some("default".into()) };
        assert_eq!(plain, serde::json::to_string(&s.stats(&addressed).unwrap()));
    }

    #[test]
    fn registry_requests_rejected_in_process() {
        let s = session();
        for req in [
            Request::LoadNetlist(crate::LoadNetlistRequest::new("a", "a.hgr")),
            Request::UnloadNetlist(crate::UnloadNetlistRequest::new("a")),
            Request::ListSessions(crate::ListSessionsRequest::new()),
        ] {
            let Response::Error(body) = s.handle(&req) else {
                panic!("expected error response");
            };
            assert_eq!(body.code, "invalid_argument");
            assert!(body.message.contains("registry"), "{}", body.message);
        }
    }

    #[test]
    fn empty_netlist_rejected_at_build() {
        let err = Session::builder().netlist(NetlistBuilder::new().finish()).build().unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
        let err = Session::builder().build().unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
    }
}
