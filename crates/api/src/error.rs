//! Structured API errors with stable codes.
//!
//! Every failure the API surface can produce maps to one of a small set
//! of machine-readable codes, replacing the stringly errors the CLI used
//! to hand-format. The codes are part of the wire contract (they travel
//! in [`ErrorBody`](crate::ErrorBody)) and each carries a conventional
//! process exit code for the `gtl` front-end.

/// A structured API error: a stable code plus a human-readable message.
///
/// # Example
///
/// ```
/// use gtl_api::ApiError;
///
/// let err = ApiError::invalid_argument("num_seeds must be positive");
/// assert_eq!(err.code(), "invalid_argument");
/// assert_eq!(err.exit_code(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The request could not be parsed or has the wrong shape.
    BadRequest {
        /// What was malformed.
        message: String,
    },
    /// The request's `v` field names a protocol version this build does
    /// not speak.
    UnsupportedVersion {
        /// The version the client asked for.
        requested: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A well-formed request with a semantically invalid value.
    InvalidArgument {
        /// Which argument, and why.
        message: String,
    },
    /// The netlist could not be loaded or parsed.
    Netlist {
        /// The loader/parser failure.
        message: String,
    },
    /// An I/O failure (socket, file).
    Io {
        /// The underlying error.
        message: String,
    },
    /// The request's deadline (its `deadline_ms` or the server-side
    /// default) passed before the response was produced. Never cached.
    DeadlineExceeded {
        /// Which deadline fired.
        message: String,
    },
    /// The request was cancelled before completion (connection loss,
    /// shutdown). Never cached.
    Cancelled {
        /// Why the request was cancelled.
        message: String,
    },
    /// The request addressed a session name the registry does not hold
    /// (never loaded, already unloaded, or evicted under the registry
    /// budget). Since protocol v4.
    UnknownSession {
        /// The session name the request asked for.
        name: String,
    },
}

impl ApiError {
    /// Shorthand for [`ApiError::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::BadRequest { message: message.into() }
    }

    /// Shorthand for [`ApiError::InvalidArgument`].
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        Self::InvalidArgument { message: message.into() }
    }

    /// Shorthand for [`ApiError::Netlist`].
    pub fn netlist(message: impl Into<String>) -> Self {
        Self::Netlist { message: message.into() }
    }

    /// Shorthand for [`ApiError::Io`].
    pub fn io(message: impl Into<String>) -> Self {
        Self::Io { message: message.into() }
    }

    /// Shorthand for [`ApiError::DeadlineExceeded`].
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        Self::DeadlineExceeded { message: message.into() }
    }

    /// Shorthand for [`ApiError::Cancelled`].
    pub fn cancelled(message: impl Into<String>) -> Self {
        Self::Cancelled { message: message.into() }
    }

    /// Shorthand for [`ApiError::UnknownSession`].
    pub fn unknown_session(name: impl Into<String>) -> Self {
        Self::UnknownSession { name: name.into() }
    }

    /// The stable machine-readable code (part of the wire contract).
    pub fn code(&self) -> &'static str {
        match self {
            Self::BadRequest { .. } => "bad_request",
            Self::UnsupportedVersion { .. } => "unsupported_version",
            Self::InvalidArgument { .. } => "invalid_argument",
            Self::Netlist { .. } => "netlist",
            Self::Io { .. } => "io",
            Self::DeadlineExceeded { .. } => "deadline_exceeded",
            Self::Cancelled { .. } => "cancelled",
            Self::UnknownSession { .. } => "unknown_session",
        }
    }

    /// The conventional process exit code for the `gtl` CLI:
    /// `1` for input/netlist errors, `2` for bad requests/arguments,
    /// `3` for I/O failures, `4` for deadline/cancellation outcomes.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Netlist { .. } => 1,
            Self::BadRequest { .. }
            | Self::UnsupportedVersion { .. }
            | Self::InvalidArgument { .. }
            | Self::UnknownSession { .. } => 2,
            Self::Io { .. } => 3,
            Self::DeadlineExceeded { .. } | Self::Cancelled { .. } => 4,
        }
    }

    /// The human-readable message (without the code).
    pub fn message(&self) -> String {
        match self {
            Self::BadRequest { message }
            | Self::InvalidArgument { message }
            | Self::Netlist { message }
            | Self::Io { message }
            | Self::DeadlineExceeded { message }
            | Self::Cancelled { message } => message.clone(),
            Self::UnsupportedVersion { requested, supported } => {
                format!(
                    "request version {requested} unsupported (this build speaks {}..={supported})",
                    crate::MIN_API_VERSION
                )
            }
            Self::UnknownSession { name } => {
                format!("unknown session {name:?} (not loaded, unloaded, or evicted)")
            }
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code(), self.message())
    }
}

impl std::error::Error for ApiError {}

impl From<gtl_netlist::NetlistError> for ApiError {
    fn from(e: gtl_netlist::NetlistError) -> Self {
        Self::netlist(e.to_string())
    }
}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        Self::io(e.to_string())
    }
}

impl From<serde::Error> for ApiError {
    fn from(e: serde::Error) -> Self {
        Self::bad_request(e.to_string())
    }
}

impl From<gtl_core::cancel::Cancelled> for ApiError {
    fn from(c: gtl_core::cancel::Cancelled) -> Self {
        match c.reason {
            gtl_core::cancel::CancelReason::DeadlineExceeded => {
                Self::deadline_exceeded("deadline expired before the response was produced")
            }
            gtl_core::cancel::CancelReason::Cancelled => {
                Self::cancelled("request cancelled before completion")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_exit_codes_are_stable() {
        let cases = [
            (ApiError::bad_request("x"), "bad_request", 2),
            (ApiError::UnsupportedVersion { requested: 9, supported: 1 }, "unsupported_version", 2),
            (ApiError::invalid_argument("x"), "invalid_argument", 2),
            (ApiError::netlist("x"), "netlist", 1),
            (ApiError::io("x"), "io", 3),
            (ApiError::deadline_exceeded("x"), "deadline_exceeded", 4),
            (ApiError::cancelled("x"), "cancelled", 4),
            (ApiError::unknown_session("x"), "unknown_session", 2),
        ];
        for (err, code, exit) in cases {
            assert_eq!(err.code(), code);
            assert_eq!(err.exit_code(), exit);
        }
    }

    #[test]
    fn display_includes_code() {
        let err = ApiError::UnsupportedVersion { requested: 2, supported: 1 };
        let text = err.to_string();
        assert!(text.contains("[unsupported_version]"), "{text}");
        assert!(text.contains("version 2"), "{text}");
    }
}
