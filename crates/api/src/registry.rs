//! The [`SessionDispatcher`]: multi-netlist session serving on top of
//! the runtime's [`Registry`].
//!
//! `gtl serve` starts with one netlist — the **default session**, which
//! lives outside the registry, can never be unloaded or evicted, and
//! answers every request that carries no `session` field exactly as
//! every pre-v4 build did, byte for byte. Protocol v4 adds named
//! sessions on top: [`LoadNetlistRequest`] registers a netlist from the
//! server's netlist directory under a name, [`UnloadNetlistRequest`]
//! removes it, [`ListSessionsRequest`] enumerates residents, and the
//! compute requests (Find/Place/Stats) grow an optional `session` field
//! addressing a named session.
//!
//! # Invariants
//!
//! * **Deterministic eviction.** The registry is byte- and
//!   entry-budgeted; a load that does not fit evicts the coldest
//!   sessions in strict LRU order and reports every victim in its
//!   response, so eviction is a pure function of the operation order —
//!   never of lane count or timing.
//! * **Drain, never abort.** Unloading (or evicting) a session only
//!   drops the registry's reference. Requests already dispatched against
//!   it hold their own [`Arc`] and finish normally; the memory is
//!   released when the last one drops it.
//! * **Cache transparency per session, never across sessions.** The
//!   response-cache key for a session-addressed line is prefixed with
//!   the session's registry *generation* — monotonically increasing and
//!   never reused — so a reload under the same name can never be
//!   answered with the previous load's bytes, while byte-identical
//!   requests against one load keep hitting.

use std::borrow::Cow;
use std::path::{Component, Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use gtl_core::cancel::CancelToken;
use gtl_netlist::Netlist;
use gtl_runtime::{MetricsSnapshot, Registry, RegistryStats};

use crate::{
    load_netlist, ApiError, ErrorBody, ListSessionsRequest, ListSessionsResponse,
    LoadNetlistRequest, LoadNetlistResponse, MetricsRequest, MetricsResponse, MetricsTextRequest,
    MetricsTextResponse, Request, Response, Session, SessionInfo, UnloadNetlistRequest,
    UnloadNetlistResponse, API_VERSION, MIN_API_VERSION, SESSION_SINCE_VERSION,
};

/// The reserved name of the netlist the server was started with. It is
/// addressable (`"session":"default"` behaves like an absent `session`
/// field) but can never be loaded over, unloaded or evicted.
pub const DEFAULT_SESSION: &str = "default";

/// Deterministic byte-cost estimate of a resident netlist session,
/// charged against the registry budget: per-cell, per-net and per-pin
/// footprints of the CSR storage plus session scratch, and a flat
/// overhead. An estimate (not an allocator measurement) keeps eviction
/// decisions identical on every platform and allocator.
pub fn netlist_cost(netlist: &Netlist) -> usize {
    1024 + 64 * netlist.num_cells() + 48 * netlist.num_nets() + 16 * netlist.num_pins()
}

/// Builds the error response for a failed request, echoing the
/// requested version exactly like [`Session::handle_cancellable`] does.
fn error_response(err: &ApiError, requested_v: u32) -> Response {
    let mut body = ErrorBody::from(err);
    if !matches!(err, ApiError::UnsupportedVersion { .. }) {
        body.v = requested_v;
    }
    Response::Error(body)
}

/// Validates the version of a registry-administration request: the pair
/// must be a supported version *and* at least [`SESSION_SINCE_VERSION`]
/// (the same gate the Metrics pair applies with
/// [`METRICS_SINCE_VERSION`](crate::METRICS_SINCE_VERSION)).
fn check_admin_version(v: u32, what: &str) -> Result<(), ApiError> {
    if !(MIN_API_VERSION..=API_VERSION).contains(&v) {
        return Err(ApiError::UnsupportedVersion { requested: v, supported: API_VERSION });
    }
    if v < SESSION_SINCE_VERSION {
        return Err(ApiError::invalid_argument(format!(
            "{what} requires protocol version {SESSION_SINCE_VERSION} (requested {v})"
        )));
    }
    Ok(())
}

/// A default [`Session`] plus a budgeted [`Registry`] of named sessions,
/// dispatching [`Request`]s to whichever session they address.
///
/// This is the layer `gtl serve` actually runs: it owns session
/// *resolution* (names, generations, the registry), while each
/// [`Session`] owns request *validation and compute*.
///
/// # Example
///
/// ```
/// use gtl_api::{SessionDispatcher, ListSessionsRequest, Session};
/// use gtl_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// b.add_anonymous_net(cells.clone());
/// let session = Session::builder().netlist(b.finish()).build().unwrap();
///
/// let dispatcher = SessionDispatcher::new(&session, 4, 0, None);
/// let listed = dispatcher.list(&ListSessionsRequest::new()).unwrap();
/// assert_eq!(listed.sessions.len(), 1); // just the default session
/// assert_eq!(listed.sessions[0].name, "default");
/// assert_eq!(listed.sessions[0].generation, 0);
/// ```
#[derive(Debug)]
pub struct SessionDispatcher<'s> {
    default: &'s Session,
    registry: Registry<Session>,
    netlist_dir: Option<PathBuf>,
}

impl<'s> SessionDispatcher<'s> {
    /// Creates a dispatcher over `default` with a registry capped at
    /// `max_netlists` named sessions (`0` = unlimited) and
    /// `registry_bytes` estimated bytes (`0` = unlimited). `netlist_dir`
    /// is the only directory [`LoadNetlistRequest`] paths may resolve
    /// into; without one, loading is rejected.
    pub fn new(
        default: &'s Session,
        max_netlists: usize,
        registry_bytes: usize,
        netlist_dir: Option<PathBuf>,
    ) -> Self {
        Self { default, registry: Registry::new(max_netlists, registry_bytes), netlist_dir }
    }

    /// The default session this dispatcher wraps.
    pub fn default_session(&self) -> &'s Session {
        self.default
    }

    /// A snapshot of the registry's occupancy and counters.
    pub fn registry_stats(&self) -> RegistryStats {
        self.registry.stats()
    }

    /// Looks up a named *registry* session (promoting it to
    /// most-recently-used), returning the shared session and its
    /// generation. The default session lives outside the registry — use
    /// [`SessionDispatcher::default_session`].
    pub fn session(&self, name: &str) -> Option<(Arc<Session>, u64)> {
        self.registry.get(name)
    }

    /// Resolves a [`LoadNetlistRequest`] path inside the configured
    /// netlist directory. Absolute paths and any non-plain component
    /// (`..`, `.`, prefixes) are rejected so remote clients can never
    /// address files outside the directory.
    fn resolve_path(&self, path: &str) -> Result<PathBuf, ApiError> {
        let dir = self.netlist_dir.as_deref().ok_or_else(|| {
            ApiError::invalid_argument(
                "this server has no netlist directory (start `gtl serve` with --netlist-dir to \
                 allow LoadNetlist)",
            )
        })?;
        let rel = Path::new(path);
        let confined = !path.is_empty()
            && !rel.is_absolute()
            && rel.components().all(|c| matches!(c, Component::Normal(_)));
        if !confined {
            return Err(ApiError::invalid_argument(format!(
                "netlist path {path:?} must be relative to the server's netlist directory, \
                 without `..` components"
            )));
        }
        Ok(dir.join(rel))
    }

    /// Serves a [`LoadNetlistRequest`]: reads the netlist, builds a
    /// session, and registers it — deterministically evicting the
    /// coldest sessions if the registry budget requires it (every
    /// victim is named in the response).
    ///
    /// # Errors
    ///
    /// Version gating, name/path validation, netlist load failures, and
    /// `invalid_argument` when the netlist alone exceeds the registry's
    /// byte budget.
    pub fn load(&self, request: &LoadNetlistRequest) -> Result<LoadNetlistResponse, ApiError> {
        check_admin_version(request.v, "LoadNetlist")?;
        if request.name.is_empty() {
            return Err(ApiError::invalid_argument("session name must not be empty"));
        }
        if request.name == DEFAULT_SESSION {
            return Err(ApiError::invalid_argument(
                "the session name \"default\" is reserved for the netlist the server was \
                 started with",
            ));
        }
        let path = self.resolve_path(&request.path)?;
        let path = path
            .to_str()
            .ok_or_else(|| ApiError::invalid_argument("netlist path is not valid UTF-8"))?;
        let netlist = load_netlist(path)?;
        let cost = netlist_cost(&netlist);
        let session = Session::builder().netlist(netlist).build()?;
        let summary = session.summary().clone();
        let outcome = self
            .registry
            .insert(&request.name, session, cost)
            .map_err(|e| ApiError::invalid_argument(e.to_string()))?;
        Ok(LoadNetlistResponse {
            v: request.v,
            session: SessionInfo {
                name: request.name.clone(),
                generation: outcome.generation,
                netlist: summary,
            },
            replaced: outcome.replaced,
            evicted: outcome.evicted.iter().map(|name| name.to_string()).collect(),
            trace: None,
        })
    }

    /// Serves an [`UnloadNetlistRequest`]. Unloading drops only the
    /// registry's reference — in-flight requests against the session
    /// drain normally.
    ///
    /// # Errors
    ///
    /// Version gating, the reserved default name, and
    /// [`ApiError::UnknownSession`] when nothing is registered under
    /// the name.
    pub fn unload(
        &self,
        request: &UnloadNetlistRequest,
    ) -> Result<UnloadNetlistResponse, ApiError> {
        check_admin_version(request.v, "UnloadNetlist")?;
        if request.name == DEFAULT_SESSION {
            return Err(ApiError::invalid_argument("the default session cannot be unloaded"));
        }
        match self.registry.remove(&request.name) {
            Some(_session) => {
                Ok(UnloadNetlistResponse { v: request.v, name: request.name.clone(), trace: None })
            }
            None => Err(ApiError::unknown_session(&request.name)),
        }
    }

    /// Serves a [`ListSessionsRequest`]: the default session first, then
    /// every registered session sorted by name.
    ///
    /// # Errors
    ///
    /// Version gating.
    pub fn list(&self, request: &ListSessionsRequest) -> Result<ListSessionsResponse, ApiError> {
        check_admin_version(request.v, "ListSessions")?;
        let mut sessions = vec![SessionInfo {
            name: DEFAULT_SESSION.to_string(),
            generation: 0,
            netlist: self.default.summary().clone(),
        }];
        sessions.extend(self.registry.list().into_iter().map(|entry| SessionInfo {
            name: entry.name.to_string(),
            generation: entry.generation,
            netlist: entry.value.summary().clone(),
        }));
        Ok(ListSessionsResponse { v: request.v, sessions, trace: None })
    }

    /// Builds a [`MetricsResponse`] from a runtime snapshot, overlaying
    /// the registry counters the runtime cannot see (the registry lives
    /// in this crate).
    ///
    /// # Errors
    ///
    /// Version validation (the pair is v2+).
    pub fn metrics(
        &self,
        request: &MetricsRequest,
        snapshot: MetricsSnapshot,
    ) -> Result<MetricsResponse, ApiError> {
        let mut response = self.default.metrics(request, snapshot)?;
        response.metrics = self.overlay_registry(response.metrics);
        Ok(response)
    }

    /// The complete [`RuntimeMetrics`](crate::RuntimeMetrics) view for a runtime snapshot:
    /// the wire mirror of the snapshot plus the registry counters only
    /// this crate can see. Every export path — the v2+ `Metrics` pair,
    /// the v5+ `MetricsText` pair, the Prometheus side-port scrape and
    /// the serve exit summary — goes through here, so they can never
    /// disagree on a counter.
    pub fn runtime_metrics(&self, snapshot: MetricsSnapshot) -> crate::RuntimeMetrics {
        self.overlay_registry(crate::RuntimeMetrics::from(snapshot))
    }

    fn overlay_registry(&self, mut metrics: crate::RuntimeMetrics) -> crate::RuntimeMetrics {
        let stats = self.registry.stats();
        metrics.sessions_active = stats.entries;
        metrics.sessions_loaded = stats.loads;
        metrics.sessions_evicted = stats.evictions;
        metrics.sessions_unloaded = stats.unloads;
        metrics.registry_bytes = stats.bytes;
        metrics.registry_capacity_bytes = stats.capacity_bytes;
        metrics
    }

    /// Builds a [`MetricsTextResponse`] — the registry-overlaid counters
    /// rendered as Prometheus text ([`crate::prom::render_prometheus`]).
    ///
    /// # Errors
    ///
    /// Version validation (the pair is v5+).
    pub fn metrics_text(
        &self,
        request: &MetricsTextRequest,
        snapshot: MetricsSnapshot,
    ) -> Result<MetricsTextResponse, ApiError> {
        let metrics = self.runtime_metrics(snapshot);
        self.default.metrics_text(request, &metrics)
    }

    /// Dispatches an envelope to the session it addresses, mapping
    /// failures onto [`Response::Error`] (this never fails). The
    /// counterpart of [`Session::handle_cancellable`], one level up:
    ///
    /// * registry administration requests are served here;
    /// * a compute request carrying a `session` name (v4+) resolves it
    ///   against the registry ([`unknown_session`](ApiError::UnknownSession)
    ///   if absent), `"default"` and an absent field resolve to the
    ///   default session;
    /// * a `session` name on a pre-v4 version reaches the default
    ///   session unresolved and is rejected there with
    ///   `invalid_argument`, keeping frozen-version behavior
    ///   build-independent.
    ///
    /// [`Request::Metrics`] and [`Request::MetricsText`] are still the
    /// serve runtime's job (it owns the counters — see
    /// [`SessionDispatcher::metrics`] and
    /// [`SessionDispatcher::metrics_text`]); here they fall through to
    /// the default session's structured error.
    pub fn handle_cancellable(
        &self,
        request: &Request,
        base: &CancelToken,
        anchor: Instant,
    ) -> Response {
        match request {
            Request::LoadNetlist(req) => self
                .load(req)
                .map(Response::LoadNetlist)
                .unwrap_or_else(|err| error_response(&err, req.v)),
            Request::UnloadNetlist(req) => self
                .unload(req)
                .map(Response::UnloadNetlist)
                .unwrap_or_else(|err| error_response(&err, req.v)),
            Request::ListSessions(req) => self
                .list(req)
                .map(Response::ListSessions)
                .unwrap_or_else(|err| error_response(&err, req.v)),
            Request::Find(_)
            | Request::Place(_)
            | Request::Stats(_)
            | Request::Metrics(_)
            | Request::MetricsText(_) => {
                let v = match request {
                    Request::Find(req) => req.v,
                    Request::Place(req) => req.v,
                    Request::Stats(req) => req.v,
                    Request::Metrics(req) => req.v,
                    Request::MetricsText(req) => req.v,
                    // gtl-lint: allow(no-panic-on-serve-path, reason = "outer match arm admits exactly these five variants")
                    _ => unreachable!("admin variants handled above"),
                };
                match request.session() {
                    Some(name)
                        if (SESSION_SINCE_VERSION..=API_VERSION).contains(&v)
                            && name != DEFAULT_SESSION =>
                    {
                        match self.registry.get(name) {
                            Some((session, _generation)) => {
                                session.handle_cancellable(request, base, anchor)
                            }
                            None => error_response(&ApiError::unknown_session(name), v),
                        }
                    }
                    // Absent, "default", or a version the field doesn't
                    // exist in (the session rejects the latter).
                    _ => self.default.handle_cancellable(request, base, anchor),
                }
            }
        }
    }

    /// [`SessionDispatcher::handle_cancellable`] without external
    /// cancellation, for in-process dispatch.
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_cancellable(request, &CancelToken::new(), Instant::now())
    }

    /// The response-cache key for a request line: the raw line bytes,
    /// except for a line addressing a *resolvable* named session (v4+),
    /// whose key is prefixed with `s<generation>:`. Generations are
    /// monotonic and never reused, so a reload under the same name keys
    /// differently and can never serve the previous load's bytes —
    /// cache transparency holds per session, never across sessions. A
    /// line addressing an unknown session keeps the raw key; it answers
    /// an error, which is never cached.
    pub fn cache_key<'a>(&self, line: &'a str) -> Cow<'a, [u8]> {
        // A session-addressed line necessarily contains the key token
        // verbatim; everything else takes this zero-cost path.
        if !line.contains("\"session\"") {
            return Cow::Borrowed(line.as_bytes());
        }
        let Ok(request) = serde::json::from_str::<Request>(line) else {
            return Cow::Borrowed(line.as_bytes());
        };
        let v = match &request {
            Request::Find(req) => req.v,
            Request::Place(req) => req.v,
            Request::Stats(req) => req.v,
            Request::Metrics(_)
            | Request::MetricsText(_)
            | Request::LoadNetlist(_)
            | Request::UnloadNetlist(_)
            | Request::ListSessions(_) => return Cow::Borrowed(line.as_bytes()),
        };
        match request.session() {
            Some(name) if (SESSION_SINCE_VERSION..=API_VERSION).contains(&v) => {
                let generation = if name == DEFAULT_SESSION {
                    Some(0)
                } else {
                    self.registry.get(name).map(|(_, generation)| generation)
                };
                match generation {
                    Some(generation) => Cow::Owned(format!("s{generation}:{line}").into_bytes()),
                    None => Cow::Borrowed(line.as_bytes()),
                }
            }
            _ => Cow::Borrowed(line.as_bytes()),
        }
    }

    /// The fair-share admission tenant of a request line: the session it
    /// addresses (compute requests via their `session` field, load and
    /// unload via their target name). Default-session traffic,
    /// ListSessions, Metrics and unparseable lines share the anonymous
    /// `""` tenant.
    pub fn tenant(&self, line: &str) -> String {
        if !line.contains("\"session\"") && !line.contains("\"name\"") {
            return String::new();
        }
        match serde::json::from_str::<Request>(line) {
            Ok(Request::LoadNetlist(req)) => req.name,
            Ok(Request::UnloadNetlist(req)) => req.name,
            Ok(request) => request.session().unwrap_or_default().to_string(),
            Err(_) => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FindRequest, StatsRequest};
    use gtl_netlist::NetlistBuilder;
    use gtl_tangled::FinderConfig;

    /// A ring of `n` cells, as a Session.
    fn ring_session(n: usize) -> Session {
        Session::builder().netlist(ring(n)).build().unwrap()
    }

    fn ring(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..n {
            b.add_anonymous_net([cells[i], cells[(i + 1) % n]]);
        }
        b.finish()
    }

    /// Writes a ring netlist of `n` cells as `<name>.hgr` under a fresh
    /// per-test directory; returns the directory.
    fn netlist_dir(test: &str, rings: &[(&str, usize)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gtl_api_registry_{test}"));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, n) in rings {
            let mut text = format!("{n} {n}\n");
            for i in 0..*n {
                text.push_str(&format!("{} {}\n", i + 1, (i + 1) % n + 1));
            }
            std::fs::write(dir.join(format!("{name}.hgr")), text).unwrap();
        }
        dir
    }

    #[test]
    fn load_list_unload_round_trip() {
        let default = ring_session(8);
        let dir = netlist_dir("round_trip", &[("a", 6), ("b", 10)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));

        let a = d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();
        assert_eq!(a.session.name, "a");
        assert_eq!(a.session.generation, 1);
        assert_eq!(a.session.netlist.num_cells, 6);
        assert!(!a.replaced);
        assert!(a.evicted.is_empty());
        let b = d.load(&LoadNetlistRequest::new("b", "b.hgr")).unwrap();
        assert_eq!(b.session.generation, 2);

        let listed = d.list(&ListSessionsRequest::new()).unwrap();
        let names: Vec<&str> = listed.sessions.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["default", "a", "b"]);
        assert_eq!(listed.sessions[0].generation, 0);

        let unloaded = d.unload(&UnloadNetlistRequest::new("a")).unwrap();
        assert_eq!(unloaded.name, "a");
        let listed = d.list(&ListSessionsRequest::new()).unwrap();
        assert_eq!(listed.sessions.len(), 2);
        assert_eq!(
            d.unload(&UnloadNetlistRequest::new("a")).unwrap_err().code(),
            "unknown_session"
        );
    }

    #[test]
    fn session_addressed_requests_resolve_against_the_registry() {
        let default = ring_session(8);
        let dir = netlist_dir("resolve", &[("small", 5)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        d.load(&LoadNetlistRequest::new("small", "small.hgr")).unwrap();

        let mut req = StatsRequest::new();
        req.session = Some("small".into());
        let Response::Stats(resp) = d.handle(&Request::Stats(req)) else {
            panic!("expected stats response");
        };
        assert_eq!(resp.stats.num_cells, 5);

        // Absent and "default" both reach the default session.
        let Response::Stats(resp) = d.handle(&Request::Stats(StatsRequest::new())) else {
            panic!("expected stats response");
        };
        assert_eq!(resp.stats.num_cells, 8);
        let mut req = StatsRequest::new();
        req.session = Some(DEFAULT_SESSION.into());
        let Response::Stats(resp) = d.handle(&Request::Stats(req)) else {
            panic!("expected stats response");
        };
        assert_eq!(resp.stats.num_cells, 8);

        // Unknown names answer unknown_session, echoing the version.
        let mut req = StatsRequest::new();
        req.v = SESSION_SINCE_VERSION;
        req.session = Some("missing".into());
        let Response::Error(body) = d.handle(&Request::Stats(req)) else {
            panic!("expected error response");
        };
        assert_eq!(body.code, "unknown_session");
        assert_eq!(body.v, SESSION_SINCE_VERSION);
        assert!(body.message.contains("missing"), "{}", body.message);
    }

    #[test]
    fn admin_requests_gate_on_protocol_v4() {
        let default = ring_session(8);
        let dir = netlist_dir("admin_gate", &[("a", 5)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        for v in 1..SESSION_SINCE_VERSION {
            let mut req = LoadNetlistRequest::new("a", "a.hgr");
            req.v = v;
            let err = d.load(&req).unwrap_err();
            assert_eq!(err.code(), "invalid_argument", "v={v}");
            assert!(err.message().contains("protocol version 4"), "{}", err.message());
            let mut req = UnloadNetlistRequest::new("a");
            req.v = v;
            assert_eq!(d.unload(&req).unwrap_err().code(), "invalid_argument", "v={v}");
            let mut req = ListSessionsRequest::new();
            req.v = v;
            assert_eq!(d.list(&req).unwrap_err().code(), "invalid_argument", "v={v}");
        }
        let mut req = ListSessionsRequest::new();
        req.v = API_VERSION + 1;
        assert_eq!(d.list(&req).unwrap_err().code(), "unsupported_version");
    }

    #[test]
    fn load_paths_are_confined_to_the_netlist_dir() {
        let default = ring_session(8);
        let dir = netlist_dir("confined", &[("a", 5)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        for path in ["/etc/passwd", "../a.hgr", "sub/../../a.hgr", "", "./a.hgr"] {
            let err = d.load(&LoadNetlistRequest::new("x", path)).unwrap_err();
            assert_eq!(err.code(), "invalid_argument", "path={path:?}");
        }
        // Without a netlist dir, loading is rejected outright.
        let closed = SessionDispatcher::new(&default, 0, 0, None);
        let err = closed.load(&LoadNetlistRequest::new("x", "a.hgr")).unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
        assert!(err.message().contains("--netlist-dir"), "{}", err.message());
    }

    #[test]
    fn reserved_default_name_cannot_be_loaded_or_unloaded() {
        let default = ring_session(8);
        let dir = netlist_dir("reserved", &[("a", 5)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        let err = d.load(&LoadNetlistRequest::new(DEFAULT_SESSION, "a.hgr")).unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
        let err = d.unload(&UnloadNetlistRequest::new(DEFAULT_SESSION)).unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
        let err = d.load(&LoadNetlistRequest::new("", "a.hgr")).unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
    }

    #[test]
    fn budget_eviction_is_deterministic_and_reported() {
        let default = ring_session(8);
        let dir = netlist_dir("evict", &[("a", 5), ("b", 5), ("c", 5)]);
        // Entry cap of 2: loading a third evicts the coldest.
        let d = SessionDispatcher::new(&default, 2, 0, Some(dir));
        d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();
        d.load(&LoadNetlistRequest::new("b", "b.hgr")).unwrap();
        // Touch "a" so "b" is coldest.
        let mut req = StatsRequest::new();
        req.session = Some("a".into());
        assert!(matches!(d.handle(&Request::Stats(req)), Response::Stats(_)));
        let c = d.load(&LoadNetlistRequest::new("c", "c.hgr")).unwrap();
        assert_eq!(c.evicted, vec!["b".to_string()]);
        let stats = d.registry_stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
    }

    #[test]
    fn oversized_load_is_refused_with_registry_unchanged() {
        let default = ring_session(8);
        let dir = netlist_dir("oversized", &[("a", 5), ("big", 200)]);
        let small_cost = netlist_cost(&ring(5));
        let d = SessionDispatcher::new(&default, 0, small_cost, Some(dir));
        d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();
        let err = d.load(&LoadNetlistRequest::new("big", "big.hgr")).unwrap_err();
        assert_eq!(err.code(), "invalid_argument");
        assert!(err.message().contains("budget"), "{}", err.message());
        // The refused load left "a" resident and untouched.
        let listed = d.list(&ListSessionsRequest::new()).unwrap();
        assert_eq!(listed.sessions.len(), 2);
    }

    #[test]
    fn unload_drains_in_flight_sessions() {
        let default = ring_session(8);
        let dir = netlist_dir("drain", &[("a", 12)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();
        // An "in-flight request" holds the session's Arc across the
        // unload; the compute must finish normally against it.
        let (held, generation) = d.session("a").unwrap();
        assert_eq!(generation, 1);
        d.unload(&UnloadNetlistRequest::new("a")).unwrap();
        assert!(d.session("a").is_none());
        let resp = held
            .find(&FindRequest::new(FinderConfig {
                num_seeds: 4,
                min_size: 3,
                max_order_len: 12,
                rng_seed: 1,
                ..FinderConfig::default()
            }))
            .unwrap();
        assert_eq!(resp.netlist.num_cells, 12);
    }

    #[test]
    fn cache_keys_isolate_sessions_by_generation() {
        let default = ring_session(8);
        let dir = netlist_dir("cache_key", &[("a", 5)]);
        let d = SessionDispatcher::new(&default, 0, 0, Some(dir));
        d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();

        let plain = serde::json::to_string(&Request::Stats(StatsRequest::new()));
        assert!(
            matches!(d.cache_key(&plain), Cow::Borrowed(_)),
            "default-session lines keep their raw bytes as the key"
        );

        let mut req = StatsRequest::new();
        req.session = Some("a".into());
        let addressed = serde::json::to_string(&Request::Stats(req));
        let first = d.cache_key(&addressed).into_owned();
        assert_eq!(first, format!("s1:{addressed}").into_bytes());

        // A reload under the same name gets a fresh generation: the same
        // line bytes key differently, so the old load's cached responses
        // can never answer for the new one.
        d.load(&LoadNetlistRequest::new("a", "a.hgr")).unwrap();
        let second = d.cache_key(&addressed).into_owned();
        assert_eq!(second, format!("s2:{addressed}").into_bytes());
        assert_ne!(first, second);

        // Unknown sessions (error outcome, never cached) keep raw bytes.
        d.unload(&UnloadNetlistRequest::new("a")).unwrap();
        assert!(matches!(d.cache_key(&addressed), Cow::Borrowed(_)));

        // Pre-v4 lines carrying a session name are rejected by the
        // session layer — raw key, uncacheable error.
        let pre_v4 = addressed.replacen("\"v\":5", "\"v\":3", 1);
        assert!(matches!(d.cache_key(&pre_v4), Cow::Borrowed(_)));
    }

    #[test]
    fn tenants_follow_the_addressed_session() {
        let default = ring_session(8);
        let d = SessionDispatcher::new(&default, 0, 0, None);
        let mut req = StatsRequest::new();
        req.session = Some("a".into());
        assert_eq!(d.tenant(&serde::json::to_string(&Request::Stats(req))), "a");
        assert_eq!(d.tenant(&serde::json::to_string(&Request::Stats(StatsRequest::new()))), "");
        let load = Request::LoadNetlist(LoadNetlistRequest::new("b", "b.hgr"));
        assert_eq!(d.tenant(&serde::json::to_string(&load)), "b");
        let unload = Request::UnloadNetlist(UnloadNetlistRequest::new("c"));
        assert_eq!(d.tenant(&serde::json::to_string(&unload)), "c");
        assert_eq!(d.tenant("not json"), "");
        assert_eq!(
            d.tenant(&serde::json::to_string(&Request::ListSessions(ListSessionsRequest::new()))),
            ""
        );
    }
}
