//! The `gtl serve` backend: a JSON-lines TCP server over a [`Session`].
//!
//! Protocol: one [`Request`](crate::Request) envelope per line in, one
//! [`Response`](crate::Response) envelope per line out, in order, on a
//! plain TCP stream (no HTTP). Blank lines are ignored; a connection ends
//! at client EOF. Try it with netcat:
//!
//! ```text
//! $ gtl serve design.hgr --port 7878 &
//! $ printf '{"Stats":{"v":1}}\n' | nc 127.0.0.1 7878
//! {"Stats":{"v":1,"stats":{...}}}
//! ```
//!
//! # Concurrency and determinism
//!
//! Each accepted connection is handled on its own scoped thread. These
//! threads are **I/O concurrency only** — they parse, dispatch and write
//! bytes; every piece of heavy compute inside a request (the finder, the
//! sharded placer, congestion) fans out through `gtl_core::exec` and is
//! byte-identical for any worker count. No RNG, no scratch and no result
//! state is shared between connections except the session's mutex-guarded
//! prune scratch, which is invisible in outputs. Responses on one
//! connection are serialized in request order, so the wire contract is
//! deterministic: same request line, same response bytes — regardless of
//! the server's thread count or how many clients are connected.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

use crate::{ApiError, Session};

/// Options for [`serve()`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Stop accepting after this many connections (`None` = run forever;
    /// `Some(0)` returns immediately without accepting). Scripted callers
    /// (CI golden tests) use this to get a clean exit.
    pub max_connections: Option<usize>,
}

/// Binds a listener on `addr` (e.g. `"127.0.0.1:7878"`; port `0` asks the
/// OS for a free port).
///
/// # Errors
///
/// [`ApiError::Io`] when binding fails.
pub fn bind(addr: &str) -> Result<TcpListener, ApiError> {
    TcpListener::bind(addr).map_err(|e| ApiError::io(format!("bind {addr}: {e}")))
}

/// Serves JSON-lines requests from `listener` against `session` until
/// the connection budget is exhausted (or forever without one).
///
/// Returns the number of connections served.
///
/// # Errors
///
/// [`ApiError::Io`] when accepting fails; per-connection I/O errors
/// terminate only that connection.
pub fn serve(
    session: &Session,
    listener: &TcpListener,
    options: &ServeOptions,
) -> Result<usize, ApiError> {
    if options.max_connections == Some(0) {
        return Ok(0);
    }
    let mut served = 0usize;
    let mut consecutive_errors = 0usize;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    // accept() fails transiently in normal operation
                    // (ECONNABORTED on client reset, EMFILE under fd
                    // pressure); one bad handshake must not take the
                    // server down. Persistent failure still surfaces.
                    consecutive_errors += 1;
                    if consecutive_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                        return Err(ApiError::io(format!(
                            "accept failed {consecutive_errors} times in a row: {e}"
                        )));
                    }
                    continue;
                }
            };
            consecutive_errors = 0;
            served += 1;
            scope.spawn(move || handle_connection(session, stream));
            if options.max_connections.is_some_and(|max| served >= max) {
                break;
            }
        }
        Ok(served)
    })
}

/// Largest accepted request line. A line is buffered in memory before
/// parsing; without a cap, one newline-free stream could grow the buffer
/// until the allocator aborts the process (which no thread can catch).
/// Far above any real request — a full `FinderConfig` envelope is < 1 KB.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Give up on the listener after this many accept() failures in a row.
const MAX_CONSECUTIVE_ACCEPT_ERRORS: usize = 100;

/// Reads request lines until EOF, answering each on the same stream.
/// I/O failures end the connection silently (the peer is gone); an
/// oversized or non-UTF-8 line is answered with `bad_request` and the
/// connection is dropped.
fn handle_connection(session: &Session, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Bound the read: at most one byte past the cap, so an oversized
        // line is detected without ever buffering the whole stream.
        match std::io::Read::take(&mut reader, MAX_REQUEST_BYTES + 1).read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if buf.len() as u64 > MAX_REQUEST_BYTES {
            let _ = answer(
                &mut writer,
                &error_line(&ApiError::bad_request(format!(
                    "request line exceeds {MAX_REQUEST_BYTES} bytes"
                ))),
            );
            break;
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            let _ =
                answer(&mut writer, &error_line(&ApiError::bad_request("request is not UTF-8")));
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        if answer(&mut writer, &session.handle_line(line)).is_err() {
            break;
        }
    }
}

/// Writes one response line and flushes it.
fn answer(writer: &mut BufWriter<TcpStream>, response: &str) -> std::io::Result<()> {
    writeln!(writer, "{response}")?;
    writer.flush()
}

/// Serializes an [`ApiError`] as a wire error line (for transport-level
/// failures that never reach [`Session::handle_line`]).
fn error_line(err: &ApiError) -> String {
    serde::json::to_string(&crate::Response::Error(crate::ErrorBody::from(err)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FindRequest, Request};
    use gtl_netlist::NetlistBuilder;
    use gtl_tangled::FinderConfig;

    fn session() -> Session {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..20).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        for i in 0..20 {
            b.add_anonymous_net([cells[i], cells[(i + 1) % 20]]);
        }
        Session::builder().netlist(b.finish()).build().unwrap()
    }

    fn request_line() -> String {
        serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
            num_seeds: 6,
            min_size: 3,
            max_order_len: 10,
            rng_seed: 3,
            ..FinderConfig::default()
        })))
    }

    #[test]
    fn zero_connection_budget_returns_immediately() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let served =
            serve(&session, &listener, &ServeOptions { max_connections: Some(0) }).unwrap();
        assert_eq!(served, 0);
    }

    #[test]
    fn oversized_line_answered_and_dropped() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                serve(&session, &listener, &ServeOptions { max_connections: Some(1) }).unwrap()
            });
            let mut conn = TcpStream::connect(addr).unwrap();
            // Stream more than the cap without a newline; the server must
            // answer bad_request and close rather than buffer forever.
            let chunk = vec![b'x'; 1 << 16];
            let mut sent = 0u64;
            while sent <= MAX_REQUEST_BYTES {
                if conn.write_all(&chunk).is_err() {
                    break; // server already hung up — also acceptable
                }
                sent += chunk.len() as u64;
            }
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut response = String::new();
            let _ = BufReader::new(conn).read_line(&mut response);
            assert!(response.is_empty() || response.contains("\"bad_request\""), "{response}");
            assert_eq!(handle.join().unwrap(), 1);
        });
    }

    #[test]
    fn tcp_round_trip_matches_in_process_dispatch() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                serve(&session, &listener, &ServeOptions { max_connections: Some(2) }).unwrap()
            });

            let mut expected = None;
            for _ in 0..2 {
                let mut conn = TcpStream::connect(addr).unwrap();
                // Two requests on one connection, plus a blank line and a
                // malformed line that must produce an error response.
                write!(conn, "{}\n\n{}\nnot json\n", request_line(), request_line()).unwrap();
                conn.shutdown(std::net::Shutdown::Write).unwrap();
                let mut lines = Vec::new();
                for line in BufReader::new(conn).lines() {
                    lines.push(line.unwrap());
                }
                assert_eq!(lines.len(), 3, "{lines:?}");
                assert_eq!(lines[0], session.handle_line(&request_line()));
                assert_eq!(lines[0], lines[1]);
                assert!(lines[2].contains("\"bad_request\""), "{}", lines[2]);
                // Every connection sees identical bytes.
                match &expected {
                    None => expected = Some(lines),
                    Some(prev) => assert_eq!(prev, &lines),
                }
            }
            assert_eq!(handle.join().unwrap(), 2);
        });
    }
}
