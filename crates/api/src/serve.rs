//! The `gtl serve` backend: a JSON-lines TCP server over a [`Session`],
//! running on the [`gtl_runtime`] bounded service runtime.
//!
//! Protocol: one [`Request`] envelope per line in, one
//! [`Response`] envelope per line out, **in request
//! order**, on a plain TCP stream (no HTTP). Blank lines are ignored; a
//! connection ends at client EOF, at the read/idle timeout, or after a
//! framing error (oversized / non-UTF-8 line — answered with
//! `bad_request` first). Clients may **pipeline**: write many request
//! lines before reading; the runtime keeps up to the configured pipeline
//! depth in flight per connection and a reorder buffer preserves wire
//! order. Try it with netcat:
//!
//! ```text
//! $ gtl serve design.hgr --port 7878 &
//! $ printf '{"Stats":{"v":1}}\n{"Metrics":{"v":2}}\n' | nc 127.0.0.1 7878
//! {"Stats":{"v":1,"stats":{...}}}
//! {"Metrics":{"v":2,"metrics":{...}}}
//! ```
//!
//! # Concurrency and determinism
//!
//! Connection threads are **I/O only** — they frame lines and move
//! buffers; every request runs as a job on the runtime's fixed pool of
//! compute lanes, fed by a bounded FIFO queue (full queue = backpressure
//! to the client's TCP window, never unbounded buffering). Heavy compute
//! inside a job (the finder, the sharded placer, congestion) still fans
//! out through `gtl_core::exec` and is byte-identical for any worker
//! count. Deterministic responses are additionally served from an LRU
//! **response cache** keyed by the canonical request-line bytes; a hit
//! returns exactly the bytes a fresh compute would (property-tested), so
//! the wire contract is unchanged for any lane count, cache size
//! (including 0 = disabled) and pipeline depth: same request line, same
//! response bytes. The deliberate exceptions are
//! [`MetricsRequest`](crate::MetricsRequest) and
//! [`MetricsTextRequest`](crate::MetricsTextRequest), which report live
//! runtime counters and therefore bypass the cache.
//!
//! # Observability (protocol v5+)
//!
//! Every response to a **v5** request is stamped with a per-request
//! trace ID (`"<conn>-<seq>"` in fixed-width hex) as the last body
//! field, *after* the cache (cached bytes are stored unstamped, so a
//! hit and a fresh compute stamp identically). Responses echoing a
//! frozen version (v1–v4) are byte-identical to their historical form —
//! no field appears. Framing-failure responses (oversized / non-UTF-8
//! lines) never reach the scheduler and carry no trace. The runtime
//! also records per-stage and per-request-kind latency histograms,
//! exported through the `Metrics` pair, the v5 `MetricsText` pair
//! (Prometheus text — see [`crate::prom`]) and, when
//! [`serve_with_metrics`] is given a side listener, a plain-HTTP
//! `GET /metrics` scrape endpoint.

use std::borrow::Cow;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gtl_core::Span;
use gtl_runtime::{
    Cacheability, LineHandler, MetricsExporter, RequestContext, RuntimeConfig, TraceId,
    TransportError,
};

use crate::{
    ApiError, ErrorBody, Request, Response, RuntimeMetrics, Session, SessionDispatcher,
    TRACE_SINCE_VERSION,
};

/// Largest accepted request line. A line is buffered in memory before
/// parsing; without a cap, one newline-free stream could grow the buffer
/// until the allocator aborts the process (which no thread can catch).
/// Far above any real request — a full `FinderConfig` envelope is < 1 KB.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Default response-cache budget: 64 MiB holds tens of thousands of
/// typical responses while staying far below paper-scale netlist
/// footprints.
const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Default per-connection pipeline depth.
const DEFAULT_PIPELINE_DEPTH: usize = 8;

/// Options for [`serve()`], built with builder-style setters.
///
/// ```
/// use gtl_api::ServeOptions;
/// use std::time::Duration;
///
/// let options = ServeOptions::new()
///     .lanes(4)
///     .cache_bytes(1 << 20)
///     .pipeline_depth(16)
///     .timeout(Some(Duration::from_secs(30)))
///     .max_concurrent(Some(64))
///     .max_connections(Some(100));
/// assert_eq!(options.lanes, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Compute lanes (`0` = all cores). Lanes execute request jobs; the
    /// per-request `threads` knobs still control fan-out *inside* a job.
    pub lanes: usize,
    /// Bounded job-queue capacity (`0` = auto: `4 × lanes`).
    pub queue_depth: usize,
    /// Response-cache byte budget (`0` disables caching).
    pub cache_bytes: usize,
    /// Max pipelined jobs in flight per connection (min 1).
    pub pipeline_depth: usize,
    /// Per-connection idle timeout (`None` = wait forever). A client
    /// waiting on a slow compute is not idle; only a connection with no
    /// request in flight and nothing arriving is closed.
    pub timeout: Option<Duration>,
    /// Max concurrently open connections (`None` = unbounded); excess
    /// clients wait in the listen backlog.
    pub max_concurrent: Option<usize>,
    /// Stop accepting after this many connections (`None` = run forever;
    /// `Some(0)` returns immediately). Scripted callers (CI golden
    /// tests) use this to get a clean exit.
    pub max_connections: Option<usize>,
    /// Server-side default deadline per request (`None` = unbounded).
    /// Anchored at request admission; an expired deadline answers a
    /// `deadline_exceeded` error without consuming compute, and a
    /// deadline firing mid-compute aborts at the next checkpoint.
    /// Request-supplied `deadline_ms` (protocol v3+) narrows this
    /// further per request.
    pub deadline: Option<Duration>,
    /// Max *named* sessions resident in the registry (`0` = unlimited);
    /// loading beyond the cap deterministically evicts the coldest
    /// session. The default session is not counted.
    pub max_netlists: usize,
    /// Registry byte budget over the loaded netlists' estimated
    /// footprints (`0` = unlimited); see
    /// [`netlist_cost`](crate::netlist_cost).
    pub registry_bytes: usize,
    /// The only directory `LoadNetlist` paths may resolve into
    /// (`None` = loading disabled).
    pub netlist_dir: Option<PathBuf>,
    /// Max queued jobs per fair-share tenant (`0` = auto: the full
    /// queue depth, i.e. no per-tenant sub-limit). Tenants are the
    /// sessions requests address; a flooding tenant saturating its
    /// quota backpressures only itself.
    pub tenant_quota: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            lanes: 0,
            queue_depth: 0,
            cache_bytes: DEFAULT_CACHE_BYTES,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            timeout: None,
            max_concurrent: None,
            max_connections: None,
            deadline: None,
            max_netlists: 0,
            registry_bytes: 0,
            netlist_dir: None,
            tenant_quota: 0,
        }
    }
}

impl ServeOptions {
    /// The defaults: all cores, 64 MiB cache, pipeline depth 8, no
    /// timeout, unbounded connections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the compute-lane count (`0` = all cores).
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Sets the job-queue capacity (`0` = auto).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the response-cache byte budget (`0` disables caching).
    pub fn cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Sets the per-connection pipeline depth (clamped to at least 1).
    pub fn pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        self.pipeline_depth = pipeline_depth;
        self
    }

    /// Sets the per-connection read/idle timeout.
    pub fn timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the max-concurrent-connections gate.
    pub fn max_concurrent(mut self, max_concurrent: Option<usize>) -> Self {
        self.max_concurrent = max_concurrent;
        self
    }

    /// Sets the total accept budget.
    pub fn max_connections(mut self, max_connections: Option<usize>) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Sets the server-side default per-request deadline.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the registry's named-session cap (`0` = unlimited).
    pub fn max_netlists(mut self, max_netlists: usize) -> Self {
        self.max_netlists = max_netlists;
        self
    }

    /// Sets the registry's byte budget (`0` = unlimited).
    pub fn registry_bytes(mut self, registry_bytes: usize) -> Self {
        self.registry_bytes = registry_bytes;
        self
    }

    /// Sets the directory `LoadNetlist` paths resolve into (`None`
    /// disables loading).
    pub fn netlist_dir(mut self, netlist_dir: Option<PathBuf>) -> Self {
        self.netlist_dir = netlist_dir;
        self
    }

    /// Sets the per-tenant fair-share quota (`0` = auto).
    pub fn tenant_quota(mut self, tenant_quota: usize) -> Self {
        self.tenant_quota = tenant_quota;
        self
    }
}

/// What a bounded [`serve()`] run did. Earlier versions returned only a
/// connection count and silently dropped per-connection I/O errors;
/// those are now reported here.
#[derive(Debug)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: usize,
    /// Per-connection I/O error descriptions (reader and writer sides;
    /// capped — see `dropped_io_errors`).
    pub io_errors: Vec<String>,
    /// I/O errors beyond the reporting cap (counted, not stored).
    pub dropped_io_errors: usize,
    /// The runtime's final metrics snapshot (cache hit/miss/eviction
    /// counters, queue high-water, timeouts, …).
    pub metrics: RuntimeMetrics,
}

/// Binds a listener on `addr` (e.g. `"127.0.0.1:7878"`; port `0` asks the
/// OS for a free port).
///
/// # Errors
///
/// [`ApiError::Io`] when binding fails.
pub fn bind(addr: &str) -> Result<TcpListener, ApiError> {
    TcpListener::bind(addr).map_err(|e| ApiError::io(format!("bind {addr}: {e}")))
}

/// Serves JSON-lines requests from `listener` against `session` on the
/// bounded runtime until the connection budget is exhausted (or forever
/// without one).
///
/// # Errors
///
/// [`ApiError::Io`] when accepting fails persistently; per-connection
/// I/O errors terminate only that connection and are reported in the
/// returned [`ServeSummary`].
pub fn serve(
    session: &Session,
    listener: &TcpListener,
    options: &ServeOptions,
) -> Result<ServeSummary, ApiError> {
    serve_with_metrics(session, listener, options, None)
}

/// [`serve()`] with an optional Prometheus scrape side listener: while
/// the JSON-lines server runs, `metrics_listener` answers plain-HTTP
/// `GET /metrics` with the same registry-overlaid counters as the v5
/// `MetricsText` pair, rendered by [`crate::prom::render_prometheus`].
/// The side listener accepts one scrape at a time (observation plane,
/// not data plane) and shuts down with the server.
///
/// # Errors
///
/// [`ApiError::Io`] when accepting fails persistently; per-connection
/// I/O errors terminate only that connection and are reported in the
/// returned [`ServeSummary`].
pub fn serve_with_metrics(
    session: &Session,
    listener: &TcpListener,
    options: &ServeOptions,
    metrics_listener: Option<&TcpListener>,
) -> Result<ServeSummary, ApiError> {
    let config = RuntimeConfig {
        lanes: options.lanes,
        queue_depth: options.queue_depth,
        cache_bytes: options.cache_bytes,
        pipeline_depth: options.pipeline_depth,
        max_request_bytes: MAX_REQUEST_BYTES,
        read_timeout: options.timeout,
        max_concurrent: options.max_concurrent,
        max_connections: options.max_connections,
        default_deadline: options.deadline,
        tenant_quota: options.tenant_quota,
    };
    let dispatcher = SessionDispatcher::new(
        session,
        options.max_netlists,
        options.registry_bytes,
        options.netlist_dir.clone(),
    );
    let handler = SessionHandler { dispatcher: &dispatcher };
    // The scrape path and the wire mirrors share one rendering: the
    // runtime snapshot overlaid with the registry counters, through the
    // same `runtime_metrics` every other export uses.
    let render = |snapshot: &gtl_runtime::MetricsSnapshot| {
        crate::prom::render_prometheus(&dispatcher.runtime_metrics(snapshot.clone()))
    };
    let exporter = metrics_listener.map(|listener| MetricsExporter { listener, render: &render });
    let report = gtl_runtime::serve_lines_with_metrics(listener, &config, &handler, exporter)
        .map_err(|e| ApiError::io(e.to_string()))?;
    Ok(ServeSummary {
        connections: report.connections,
        io_errors: report.io_errors,
        dropped_io_errors: report.dropped_io_errors,
        metrics: dispatcher.runtime_metrics(report.metrics),
    })
}

/// The [`LineHandler`] gluing the runtime to a [`SessionDispatcher`]:
/// parse once, dispatch to the addressed session, serialize into the
/// runtime's recycled buffer. Tenant classification and session-aware
/// cache keys delegate to the dispatcher.
struct SessionHandler<'d, 's> {
    dispatcher: &'d SessionDispatcher<'s>,
}

/// Serializes a response into the runtime's recycled buffer, recording
/// the time spent as a `serialize`-stage observation (I/O plane — the
/// handler runs on a compute lane, so this clock read is outside the
/// compute zone).
fn serialize_response(ctx: &RequestContext<'_>, response: &Response, out: &mut String) {
    let span = Span::starting_at(Instant::now());
    serde::json::to_string_into(response, out);
    ctx.observe_serialize_us(span.end_at(Instant::now()));
}

impl LineHandler for SessionHandler<'_, '_> {
    fn handle(&self, ctx: &RequestContext<'_>, line: &str, out: &mut String) -> Cacheability {
        match serde::json::from_str::<Request>(line) {
            // Metrics report live runtime state: the responses that are
            // not pure functions of the request bytes, so they must never
            // be cached.
            Ok(Request::Metrics(req)) => {
                let response = match self.dispatcher.metrics(&req, ctx.metrics()) {
                    Ok(resp) => Response::Metrics(resp),
                    Err(err) => Response::Error(ErrorBody::from(&err)),
                };
                serialize_response(ctx, &response, out);
                Cacheability::Uncacheable
            }
            Ok(Request::MetricsText(req)) => {
                let response = match self.dispatcher.metrics_text(&req, ctx.metrics()) {
                    Ok(resp) => Response::MetricsText(resp),
                    Err(err) => Response::Error(ErrorBody::from(&err)),
                };
                serialize_response(ctx, &response, out);
                Cacheability::Uncacheable
            }
            Ok(request) => {
                // The job token (connection loss + server default
                // deadline) reaches the compute through the session;
                // `deadline_ms` in the request narrows it further,
                // anchored at admission so queue wait counts.
                let response = self.dispatcher.handle_cancellable(
                    &request,
                    ctx.cancel_token(),
                    ctx.submitted_at(),
                );
                serialize_response(ctx, &response, out);
                if let Response::Error(body) = &response {
                    // The runtime owns the counters; the handler owns
                    // the outcome classification.
                    match body.code.as_str() {
                        "deadline_exceeded" => ctx.record_deadline_exceeded(),
                        "cancelled" => ctx.record_cancelled(),
                        _ => {}
                    }
                    // Error responses (validation failures, deadline and
                    // cancellation outcomes) are never cached: unique
                    // invalid requests must not evict compute worth
                    // seconds, and deadline/cancel outcomes are
                    // timing-dependent, not pure functions of the line.
                    return Cacheability::Uncacheable;
                }
                // Successful responses are deterministic — cached bytes
                // are always exactly what a successful compute of the
                // line produces. Deadlines only make the success-vs-error
                // *outcome* timing-dependent, and a warm hit resolving
                // that race in the client's favor is deliberate: a
                // deadline bounds latency, and a hit (microseconds)
                // always meets it. Requests carrying their own
                // `deadline_ms` are still kept out of the cache: the
                // deadline is part of the key bytes, so admitting them
                // would let one client mint unbounded near-duplicate
                // entries of the same response (one per deadline value)
                // and evict everything else. Registry administration
                // responses report (and mutate) live registry state —
                // like Metrics, they are never pure functions of their
                // request bytes.
                let admin = matches!(
                    request,
                    Request::LoadNetlist(_) | Request::UnloadNetlist(_) | Request::ListSessions(_)
                );
                if admin || request.deadline_ms().is_some() {
                    Cacheability::Uncacheable
                } else {
                    Cacheability::Cacheable
                }
            }
            Err(e) => {
                serialize_response(
                    ctx,
                    &Response::Error(ErrorBody::from(&ApiError::bad_request(e.to_string()))),
                    out,
                );
                // Same reasoning: a parse failure costs microseconds —
                // never worth evicting real compute for.
                Cacheability::Uncacheable
            }
        }
    }

    fn cache_key<'a>(&self, line: &'a str) -> Cow<'a, [u8]> {
        self.dispatcher.cache_key(line)
    }

    fn tenant(&self, line: &str) -> String {
        self.dispatcher.tenant(line)
    }

    fn kind(&self, line: &str) -> &'static str {
        // The envelope tag is the first JSON key of a canonical line;
        // prefix inspection classifies without parsing (this runs per
        // request on the metrics path). Non-canonical spellings fall
        // into "other" — a label, never a behavior change.
        const KINDS: &[(&str, &str)] = &[
            ("{\"Find\":", "find"),
            ("{\"Place\":", "place"),
            ("{\"Stats\":", "stats"),
            ("{\"MetricsText\":", "metrics"),
            ("{\"Metrics\":", "metrics"),
            ("{\"LoadNetlist\":", "admin"),
            ("{\"UnloadNetlist\":", "admin"),
            ("{\"ListSessions\":", "admin"),
        ];
        KINDS
            .iter()
            .find(|(tag, _)| line.starts_with(tag))
            .map(|(_, kind)| *kind)
            .unwrap_or("other")
    }

    fn stamp_trace(&self, trace: TraceId, out: &mut String) -> bool {
        // Only v5+ bodies declare the `trace` field; a response echoing
        // a frozen version (v1–v4) must keep its exact historical
        // bytes. The version is always the *first* body field (wire
        // invariant since v1), so inspecting the envelope head —
        // `{"Tag":{"v":N,` — decides without a parse.
        let Some(colon) = out.find(':') else { return false };
        let Some(digits) = out[colon + 1..].strip_prefix("{\"v\":") else { return false };
        let end = digits.find(|c: char| !c.is_ascii_digit()).unwrap_or(digits.len());
        let Ok(v) = digits[..end].parse::<u32>() else { return false };
        if v < TRACE_SINCE_VERSION || !out.ends_with("}}") {
            return false;
        }
        // `trace` is declared last in every v5 body, so inserting just
        // before the closing `}}` produces exactly the bytes a
        // parse → stamp → serialize round-trip would.
        let at = out.len() - 2;
        out.insert_str(at, &format!(",\"trace\":\"{trace}\""));
        true
    }

    fn transport_error(&self, error: &TransportError) -> Option<String> {
        let err = match error {
            TransportError::Oversized { limit } => {
                ApiError::bad_request(format!("request line exceeds {limit} bytes"))
            }
            TransportError::NotUtf8 => ApiError::bad_request("request is not UTF-8"),
        };
        Some(serde::json::to_string(&Response::Error(ErrorBody::from(&err))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FindRequest, MetricsRequest, MetricsTextRequest, Request};
    use gtl_netlist::NetlistBuilder;
    use gtl_tangled::FinderConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn session() -> Session {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..20).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        for i in 0..20 {
            b.add_anonymous_net([cells[i], cells[(i + 1) % 20]]);
        }
        Session::builder().netlist(b.finish()).build().unwrap()
    }

    fn request_line() -> String {
        serde::json::to_string(&Request::Find(FindRequest::new(FinderConfig {
            num_seeds: 6,
            min_size: 3,
            max_order_len: 10,
            rng_seed: 3,
            ..FinderConfig::default()
        })))
    }

    /// Removes the stamped `,"trace":"…"` field from a wire line, so
    /// wire bytes can be compared against in-process dispatch (which
    /// stamps nothing) and across connections (whose traces differ).
    fn strip_trace(line: &str) -> String {
        let Some(start) = line.find(",\"trace\":\"") else { return line.to_string() };
        let rest = &line[start + 10..];
        let end = rest.find('\"').unwrap();
        format!("{}{}", &line[..start], &rest[end + 1..])
    }

    #[test]
    fn zero_connection_budget_returns_immediately() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let options = ServeOptions::new().max_connections(Some(0));
        let summary = serve(&session, &listener, &options).unwrap();
        assert_eq!(summary.connections, 0);
    }

    #[test]
    fn oversized_line_answered_and_dropped() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            // Stream more than the cap without a newline; the server must
            // answer bad_request and close rather than buffer forever.
            let chunk = vec![b'x'; 1 << 16];
            let mut sent = 0u64;
            while sent <= MAX_REQUEST_BYTES {
                if conn.write_all(&chunk).is_err() {
                    break; // server already hung up — also acceptable
                }
                sent += chunk.len() as u64;
            }
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut response = String::new();
            let _ = BufReader::new(conn).read_line(&mut response);
            assert!(response.is_empty() || response.contains("\"bad_request\""), "{response}");
            assert_eq!(handle.join().unwrap().connections, 1);
        });
    }

    #[test]
    fn tcp_round_trip_matches_in_process_dispatch() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(2).max_connections(Some(2));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());

            let mut expected = None;
            for _ in 0..2 {
                let mut conn = TcpStream::connect(addr).unwrap();
                // Two requests on one connection, plus a blank line and a
                // malformed line that must produce an error response.
                write!(conn, "{}\n\n{}\nnot json\n", request_line(), request_line()).unwrap();
                conn.shutdown(std::net::Shutdown::Write).unwrap();
                let mut lines = Vec::new();
                for line in BufReader::new(conn).lines() {
                    lines.push(line.unwrap());
                }
                assert_eq!(lines.len(), 3, "{lines:?}");
                // v5 responses are stamped with per-request traces on
                // the wire; everything else is byte-identical to
                // in-process dispatch.
                assert!(lines[0].contains("\"trace\":\""), "{}", lines[0]);
                assert_eq!(strip_trace(&lines[0]), session.handle_line(&request_line()));
                assert_eq!(strip_trace(&lines[0]), strip_trace(&lines[1]));
                assert_ne!(lines[0], lines[1], "traces are per-request");
                assert!(lines[2].contains("\"bad_request\""), "{}", lines[2]);
                // Every connection sees identical bytes modulo traces.
                let stripped: Vec<String> = lines.iter().map(|l| strip_trace(l)).collect();
                match &expected {
                    None => expected = Some(stripped),
                    Some(prev) => assert_eq!(prev, &stripped),
                }
            }
            let summary = handle.join().unwrap();
            assert_eq!(summary.connections, 2);
            // The second connection's identical requests were served from
            // the cache — with bytes identical to the fresh computes.
            assert!(summary.metrics.cache_hits >= 1, "{:?}", summary.metrics);
        });
    }

    #[test]
    fn error_responses_do_not_occupy_the_cache() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            // Unique malformed and invalid requests must not evict real
            // compute: none of them may take a cache slot.
            for i in 0..3 {
                writeln!(conn, "garbage number {i}").unwrap();
            }
            writeln!(conn, "{{\"Find\":{{\"v\":99,\"config\":{{}}}}}}").unwrap();
            writeln!(conn, "{}", request_line()).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 5, "{lines:?}");
            assert!(lines[..4].iter().all(|l| l.contains("\"Error\":")), "{lines:?}");
            assert!(lines[4].starts_with("{\"Find\":"), "{}", lines[4]);
            let summary = handle.join().unwrap();
            assert_eq!(
                summary.metrics.cache_entries, 1,
                "only the successful Find may be cached: {:?}",
                summary.metrics
            );
        });
    }

    #[test]
    fn deadline_ms_over_the_wire() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            // An already-expired per-request deadline: answered with a
            // structured error, without running the finder.
            let expired = request_line().replace("\"deadline_ms\":null", "\"deadline_ms\":0");
            assert!(expired.contains("\"deadline_ms\":0"), "{expired}");
            writeln!(conn, "{expired}").unwrap();
            // A generous deadline: served normally, but never cached
            // (the outcome is timing-dependent) — send it twice.
            let generous =
                request_line().replace("\"deadline_ms\":null", "\"deadline_ms\":3600000");
            writeln!(conn, "{generous}").unwrap();
            writeln!(conn, "{generous}").unwrap();
            // A v2 request carrying deadline_ms: the field is v3+.
            let wrong_version = expired.replacen("\"v\":5", "\"v\":2", 1);
            writeln!(conn, "{wrong_version}").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 4, "{lines:?}");
            assert!(lines[0].contains("\"code\":\"deadline_exceeded\""), "{}", lines[0]);
            assert!(lines[1].starts_with("{\"Find\":{\"v\":5,"), "{}", lines[1]);
            assert_eq!(
                strip_trace(&lines[1]),
                strip_trace(&lines[2]),
                "same line must answer identically modulo its trace"
            );
            assert!(lines[3].contains("\"code\":\"invalid_argument\""), "{}", lines[3]);
            let summary = handle.join().unwrap();
            assert_eq!(summary.metrics.deadlines_exceeded, 1, "{:?}", summary.metrics);
            assert_eq!(
                summary.metrics.cache_entries, 0,
                "deadline-carrying requests must never be cached: {:?}",
                summary.metrics
            );
        });
    }

    #[test]
    fn metrics_request_served_by_runtime_not_cached() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            let line = serde::json::to_string(&Request::Metrics(MetricsRequest::new()));
            writeln!(conn, "{line}").unwrap();
            writeln!(conn, "{line}").unwrap();
            // A v1 Metrics request must be rejected: the pair is v2+.
            writeln!(conn, "{{\"Metrics\":{{\"v\":1}}}}").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 3, "{lines:?}");
            assert!(lines[0].starts_with("{\"Metrics\":{\"v\":5,\"metrics\":{"), "{}", lines[0]);
            assert!(lines[1].contains("\"requests\":"), "{}", lines[1]);
            assert!(lines[2].contains("\"invalid_argument\""), "{}", lines[2]);
            let summary = handle.join().unwrap();
            // Every Metrics outcome (snapshot or version error) bypasses
            // the cache; the two snapshots differ (the counters moved
            // between them).
            assert_eq!(summary.metrics.cache_entries, 0, "Metrics outcomes are never cached");
            assert_ne!(
                strip_trace(&lines[0]),
                strip_trace(&lines[1]),
                "metrics snapshots must not be cached"
            );
        });
    }

    #[test]
    fn traces_stamp_v5_responses_only() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "{}", request_line()).unwrap();
            // The same request pinned to v4: frozen bytes, no trace.
            writeln!(conn, "{}", request_line().replacen("\"v\":5", "\"v\":4", 1)).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 2, "{lines:?}");
            // Conn IDs are 1-based, sequence numbers 0-based.
            assert!(lines[0].ends_with(",\"trace\":\"00000001-00000000\"}}"), "{}", lines[0]);
            assert!(!lines[1].contains("\"trace\""), "{}", lines[1]);
            let summary = handle.join().unwrap();
            assert_eq!(summary.metrics.responses_traced, 1, "{:?}", summary.metrics);
        });
    }

    #[test]
    fn metrics_text_serves_prometheus_rendering() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&session, &listener, &options).unwrap());
            let mut conn = TcpStream::connect(addr).unwrap();
            let line = serde::json::to_string(&Request::MetricsText(MetricsTextRequest::new()));
            writeln!(conn, "{line}").unwrap();
            // The pair is v5+: a v4 MetricsText request is rejected.
            writeln!(conn, "{}", line.replacen("\"v\":5", "\"v\":4", 1)).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 2, "{lines:?}");
            assert!(lines[0].starts_with("{\"MetricsText\":{\"v\":5,\"text\":\""), "{}", lines[0]);
            assert!(lines[0].contains("# TYPE gtl_requests counter"), "{}", lines[0]);
            assert!(lines[0].contains("\"trace\":\"00000001-00000000\""), "{}", lines[0]);
            assert!(lines[1].contains("\"invalid_argument\""), "{}", lines[1]);
            let summary = handle.join().unwrap();
            assert_eq!(summary.metrics.cache_entries, 0, "MetricsText is never cached");
        });
    }

    #[test]
    fn scrape_endpoint_serves_overlaid_prometheus_text() {
        let session = session();
        let listener = bind("127.0.0.1:0").unwrap();
        let metrics_listener = bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let metrics_addr = metrics_listener.local_addr().unwrap();
        let options = ServeOptions::new().lanes(1).max_connections(Some(1));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                serve_with_metrics(&session, &listener, &options, Some(&metrics_listener)).unwrap()
            });
            let mut conn = TcpStream::connect(addr).unwrap();
            writeln!(conn, "{}", request_line()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut first = String::new();
            reader.read_line(&mut first).unwrap();
            assert!(first.starts_with("{\"Find\":"), "{first}");
            // Scrape while the data-plane connection is still open.
            let mut scrape = TcpStream::connect(metrics_addr).unwrap();
            write!(scrape, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut response = String::new();
            std::io::Read::read_to_string(&mut scrape, &mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
            assert!(response.contains("# TYPE gtl_requests counter"), "{response}");
            assert!(response.contains("gtl_requests 1"), "{response}");
            assert!(
                response.contains("gtl_request_latency_seconds_count{kind=\"find\"} 1"),
                "{response}"
            );
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let summary = handle.join().unwrap();
            assert_eq!(summary.connections, 1);
            assert_eq!(summary.metrics.responses_traced, 1, "{:?}", summary.metrics);
        });
    }
}
