//! Tetris row legalization.
//!
//! Snaps a global placement onto standard-cell rows with no overlaps:
//! cells are processed left-to-right and each is dropped into the row
//! (near its global y) that minimizes displacement, at the first free x
//! after that row's current cursor — the classic "Tetris" greedy of
//! Hill's patent, as used by countless academic placers.
//!
//! Unlike the sharded solve ([`place`](crate::place)) and the striped
//! congestion estimator ([`congestion`](crate::congestion)), legalization
//! stays serial by design: every drop advances a row cursor that the next
//! drop reads, so the greedy is one long dependency chain. It consumes
//! the sharded placer's output unchanged and is itself deterministic
//! (cells are visited in sorted x-then-id order), so the end-to-end
//! pipeline keeps the byte-identical-for-any-thread-count property.

use gtl_netlist::{CellId, Netlist};

use crate::{Die, Placement};

/// Result of legalization.
#[derive(Debug, Clone)]
pub struct LegalizedPlacement {
    /// The legal positions (x = cell left edge, y = row bottom).
    pub placement: Placement,
    /// Row index assigned to each cell.
    pub row_of: Vec<u32>,
    /// Total displacement from the global placement.
    pub total_displacement: f64,
    /// Cells that did not fit in any row and were clamped to the die edge.
    pub overflowed: usize,
}

/// Legalizes `global` onto the rows of `die`.
///
/// Cell widths are taken as `area / row_height` (one-row-tall standard
/// cells — macros are not handled separately).
///
/// # Panics
///
/// Panics if the placement does not cover the netlist or the die has no
/// rows.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::{legal, Die, Placement};
///
/// let mut b = NetlistBuilder::new();
/// b.add_cell("a", 1.0);
/// b.add_cell("b", 1.0);
/// let nl = b.finish();
/// let die = Die { width: 4.0, height: 2.0, rows: 2 };
/// // Both cells stacked at the same point: legalization separates them.
/// let global = Placement::from_coords(vec![1.0, 1.0], vec![1.0, 1.0]);
/// let legal = legal::legalize(&nl, &global, &die);
/// let (x0, y0) = legal.placement.position(gtl_netlist::CellId::new(0));
/// let (x1, y1) = legal.placement.position(gtl_netlist::CellId::new(1));
/// assert!((x0, y0) != (x1, y1));
/// assert_eq!(legal.overflowed, 0);
/// ```
pub fn legalize(netlist: &Netlist, global: &Placement, die: &Die) -> LegalizedPlacement {
    assert!(global.len() >= netlist.num_cells(), "placement smaller than netlist");
    assert!(die.rows > 0, "die needs at least one row");
    let row_h = die.row_height();
    let n = netlist.num_cells();

    // Sort cells by global x (stable on id for determinism).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        global.xs()[a as usize].total_cmp(&global.xs()[b as usize]).then(a.cmp(&b))
    });

    let mut cursor = vec![0.0f64; die.rows]; // next free x per row
    let mut xs = vec![0.0f64; n];
    let mut ys = vec![0.0f64; n];
    let mut row_of = vec![0u32; n];
    let mut total_disp = 0.0;
    let mut overflowed = 0usize;

    for raw in order {
        let cell = CellId::from(raw);
        let (gx, gy) = global.position(cell);
        let width = (netlist.cell_area(cell) / row_h).max(f64::MIN_POSITIVE);
        let ideal_row = ((gy / row_h) as usize).min(die.rows - 1);

        // Scan rows outward from the ideal one; take the cheapest fit.
        let mut best: Option<(f64, usize, f64)> = None; // (cost, row, x)
        for delta in 0..die.rows {
            let mut candidates =
                [ideal_row as isize - delta as isize, ideal_row as isize + delta as isize];
            if delta == 0 {
                candidates[1] = isize::MIN; // dedupe
            }
            for r in candidates {
                if r < 0 || r as usize >= die.rows || r == isize::MIN {
                    continue;
                }
                let r = r as usize;
                let x = cursor[r].max(gx.min(die.width - width));
                if x + width > die.width + 1e-9 {
                    continue; // row full at/after this x
                }
                let cost = (x - gx).abs() + (r as f64 * row_h - gy).abs();
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, r, x));
                }
            }
            // Row distance alone already exceeds the best cost — stop early.
            if let Some((c, _, _)) = best {
                if delta as f64 * row_h > c {
                    break;
                }
            }
        }

        let (cost, row, x) = match best {
            Some(b) => b,
            None => {
                // Nothing fits; clamp into the least-loaded row.
                overflowed += 1;
                let r = (0..die.rows).min_by(|&a, &b| cursor[a].total_cmp(&cursor[b])).unwrap();
                let x = cursor[r].min(die.width - width);
                ((x - gx).abs(), r, x)
            }
        };
        xs[cell.index()] = x;
        ys[cell.index()] = row as f64 * row_h;
        row_of[cell.index()] = row as u32;
        cursor[row] = x + width;
        total_disp += cost;
    }

    LegalizedPlacement {
        placement: Placement::from_coords(xs, ys),
        row_of,
        total_displacement: total_disp,
        overflowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn unit_cells(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(n);
        b.finish()
    }

    #[test]
    fn no_overlaps_within_rows() {
        let n = 60;
        let nl = unit_cells(n);
        let die = Die { width: 20.0, height: 10.0, rows: 10 };
        // Random-ish pile-up.
        let xs: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 7) % 10) as f64).collect();
        let legal = legalize(&nl, &Placement::from_coords(xs, ys), &die);
        assert_eq!(legal.overflowed, 0);
        // Group by row and check pairwise intervals.
        let row_h = die.row_height();
        let mut per_row: Vec<Vec<(f64, f64)>> = vec![Vec::new(); die.rows];
        for c in nl.cells() {
            let (x, _) = legal.placement.position(c);
            let w = nl.cell_area(c) / row_h;
            per_row[legal.row_of[c.index()] as usize].push((x, x + w));
        }
        for intervals in &mut per_row {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in intervals.windows(2) {
                assert!(pair[0].1 <= pair[1].0 + 1e-9, "overlap {pair:?}");
            }
        }
    }

    #[test]
    fn cells_stay_in_die() {
        let n = 40;
        let nl = unit_cells(n);
        let die = Die { width: 10.0, height: 8.0, rows: 8 };
        let xs = vec![9.9; n];
        let ys = vec![7.9; n];
        let legal = legalize(&nl, &Placement::from_coords(xs, ys), &die);
        for c in nl.cells() {
            let (x, y) = legal.placement.position(c);
            assert!(x >= -1e-9 && x <= die.width && y >= 0.0 && y < die.height);
        }
    }

    #[test]
    fn displacement_small_for_already_legal_input() {
        let nl = unit_cells(4);
        let die = Die { width: 10.0, height: 4.0, rows: 4 };
        let xs = vec![0.0, 2.0, 4.0, 6.0];
        let ys = vec![0.0, 1.0, 2.0, 3.0];
        let legal = legalize(&nl, &Placement::from_coords(xs, ys), &die);
        assert!(legal.total_displacement < 1e-9, "disp {}", legal.total_displacement);
    }

    #[test]
    fn overflow_counted_when_die_too_small() {
        let nl = unit_cells(100);
        // Total area 100 in a die of 16 area units: must overflow.
        let die = Die { width: 4.0, height: 4.0, rows: 4 };
        let legal = legalize(&nl, &Placement::from_coords(vec![0.0; 100], vec![0.0; 100]), &die);
        assert!(legal.overflowed > 0);
    }

    #[test]
    fn deterministic() {
        let nl = unit_cells(30);
        let die = Die { width: 10.0, height: 6.0, rows: 6 };
        let p = Placement::from_coords(
            (0..30).map(|i| (i % 7) as f64).collect(),
            (0..30).map(|i| (i % 5) as f64).collect(),
        );
        let a = legalize(&nl, &p, &die);
        let b = legalize(&nl, &p, &die);
        assert_eq!(a.placement, b.placement);
    }
}
