//! Quadratic wirelength model: sparse Laplacian + conjugate gradients.
//!
//! Nets are modeled as springs: small nets as cliques (every pin pair gets
//! weight `2/d`), large nets as stars (every pin tied to the first pin as
//! hub) to keep the matrix sparse while still pulling high-fanout nets —
//! decoder rails, select lines — toward a common point. Minimizing the quadratic wirelength
//! `xᵀLx − 2bᵀx` per axis reduces to the SPD system `(L + αI)x = αt + b`
//! where `αI` anchors cells to targets `t` (SimPL-style pseudo-pins) and
//! `b` carries fixed-cell terms. The system is solved with a hand-written
//! Jacobi-preconditioned conjugate-gradient.

use gtl_netlist::Netlist;

/// Threshold above which a net is modeled as a star instead of a clique.
const CLIQUE_LIMIT: usize = 8;

/// A symmetric sparse matrix in CSR form, representing the connectivity
/// Laplacian of a netlist.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::quadratic::Laplacian;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// b.add_anonymous_net([x, y]);
/// let nl = b.finish();
/// let lap = Laplacian::build(&nl);
/// assert_eq!(lap.dim(), 2);
/// // Lx for x = [1, -1] equals [2w, -2w]: both entries nonzero.
/// let out = lap.multiply(&[1.0, -1.0]);
/// assert!(out[0] > 0.0 && out[1] < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Laplacian {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    diagonal: Vec<f64>,
}

impl Laplacian {
    /// Builds the Laplacian of `netlist` with the clique/path hybrid model.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.num_cells();
        // Accumulate off-diagonal entries per row in a triplet pass.
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        for net in netlist.nets() {
            let cells = netlist.net_cells(net);
            let d = cells.len();
            if d < 2 {
                continue;
            }
            if d <= CLIQUE_LIMIT {
                let w = 2.0 / d as f64;
                for i in 0..d {
                    for j in (i + 1)..d {
                        triplets.push((cells[i].raw(), cells[j].raw(), w));
                    }
                }
            } else {
                // Star model: hub = first pin, preserving O(d) sparsity.
                // Total edge weight (d−1)·w matches the clique's d−1.
                let w = 1.0;
                let hub = cells[0].raw();
                for &pin in &cells[1..] {
                    triplets.push((hub, pin.raw(), w));
                }
            }
        }

        // Count row populations (both directions), prefix-sum, fill.
        let mut counts = vec![0usize; n];
        for &(i, j, _) in &triplets {
            counts[i as usize] += 1;
            counts[j as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let nnz = *offsets.last().unwrap();
        let mut columns = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = offsets[..n].to_vec();
        let mut diagonal = vec![0.0f64; n];
        for &(i, j, w) in &triplets {
            columns[cursor[i as usize]] = j;
            values[cursor[i as usize]] = w;
            cursor[i as usize] += 1;
            columns[cursor[j as usize]] = i;
            values[cursor[j as usize]] = w;
            cursor[j as usize] += 1;
            diagonal[i as usize] += w;
            diagonal[j as usize] += w;
        }
        Self { offsets, columns, values, diagonal }
    }

    /// Matrix dimension (number of cells).
    pub fn dim(&self) -> usize {
        self.diagonal.len()
    }

    /// Off-diagonal entries of row `i` as `(column, weight)` pairs.
    ///
    /// A pair of cells connected by several nets appears once per net —
    /// consumers must sum duplicates (as [`Laplacian::multiply`] does).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.offsets[i]..self.offsets[i + 1])
            .map(move |k| (self.columns[k] as usize, self.values[k]))
    }

    /// Total incident edge weight of cell `i` (the Laplacian diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn degree(&self, i: usize) -> f64 {
        self.diagonal[i]
    }

    /// Computes `y = Lx` (diagonal minus off-diagonals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mut y = vec![0.0; x.len()];
        self.multiply_into(x, &mut y);
        y
    }

    fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.dim() {
            let mut acc = self.diagonal[i] * x[i];
            for k in self.offsets[i]..self.offsets[i + 1] {
                acc -= self.values[k] * x[self.columns[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Solves `(L + diag(anchor)) x = rhs` by Jacobi-preconditioned CG.
    ///
    /// `anchor` is the per-cell pseudo-pin weight (`αᵢ ≥ 0`); at least one
    /// entry must be positive or the system is singular. `x0` provides the
    /// starting guess. Returns the solution and the iterations used.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if every anchor weight is zero.
    pub fn solve_anchored(
        &self,
        anchor: &[f64],
        rhs: &[f64],
        x0: &[f64],
        tolerance: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, usize) {
        let n = self.dim();
        assert_eq!(anchor.len(), n, "anchor dimension mismatch");
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        assert!(anchor.iter().any(|&a| a > 0.0), "all-zero anchors make the system singular");

        let apply = |x: &[f64], out: &mut Vec<f64>| {
            self.multiply_into(x, out);
            for i in 0..n {
                out[i] += anchor[i] * x[i];
            }
        };
        let precond: Vec<f64> =
            (0..n).map(|i| 1.0 / (self.diagonal[i] + anchor[i]).max(1e-12)).collect();

        let mut x = x0.to_vec();
        let mut ax = vec![0.0; n];
        apply(&x, &mut ax);
        let mut r: Vec<f64> = (0..n).map(|i| rhs[i] - ax[i]).collect();
        let mut z: Vec<f64> = (0..n).map(|i| precond[i] * r[i]).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let target = tolerance * tolerance * rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

        let mut ap = vec![0.0; n];
        for iter in 0..max_iterations {
            let rr: f64 = r.iter().map(|v| v * v).sum();
            if rr <= target {
                return (x, iter);
            }
            apply(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break; // numerical breakdown; current x is best effort
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = precond[i] * r[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz.max(1e-30);
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        (x, max_iterations)
    }
}

/// Reusable scratch for solving *shard-restricted* anchored systems.
///
/// The sharded placer decomposes the die into a grid of regions and solves
/// each region's cells as an independent quadratic system, treating
/// neighbors outside the shard as fixed (Dirichlet coupling: their current
/// positions move to the right-hand side, their edge weights stay on the
/// diagonal, so the local matrix remains SPD). One `ShardSolver` is built
/// per *worker* of [`gtl_core::exec::parallel_map_with`] and reused across
/// every shard that worker claims — the local CSR and all CG vectors are
/// allocated once and recycled, per the execution layer's scratch
/// contract.
///
/// The result of [`ShardSolver::solve_shard`] is a pure function of its
/// arguments; nothing about buffer reuse or worker identity leaks into the
/// output.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::quadratic::{Laplacian, ShardSolver};
///
/// // Three cells in a chain; solve the shard {0, 1} with cell 2 fixed.
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..3).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// b.add_anonymous_net([cells[0], cells[1]]);
/// b.add_anonymous_net([cells[1], cells[2]]);
/// let nl = b.finish();
/// let lap = Laplacian::build(&nl);
///
/// let mut solver = ShardSolver::new(nl.num_cells());
/// let xs = [0.0, 0.0, 10.0];
/// let ys = [0.0, 0.0, 0.0];
/// let (sx, _sy) = solver.solve_shard(
///     &lap, &[0, 1], 1.0, &[0.0, 0.0], &[0.0, 0.0], &xs, &ys, 1e-10, 100,
/// );
/// // Cell 1 is pulled toward the fixed cell 2 at x = 10; cell 0 follows.
/// assert!(sx[1] > sx[0] && sx[1] > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardSolver {
    /// Epoch stamp per global cell; `mark[g] == epoch` ⇔ `g` is in the
    /// current shard.
    mark: Vec<u32>,
    /// Local index of each global cell (valid only where `mark` matches).
    local_of: Vec<u32>,
    epoch: u32,
    // Shard-local CSR (columns hold *local* indices).
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    diagonal: Vec<f64>,
    // Fixed-neighbor (Dirichlet) right-hand-side contributions per axis.
    ext_x: Vec<f64>,
    ext_y: Vec<f64>,
    // CG work vectors.
    rhs: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl ShardSolver {
    /// Creates a solver for shards of a `num_cells`-cell design.
    pub fn new(num_cells: usize) -> Self {
        Self {
            mark: vec![0; num_cells],
            local_of: vec![0; num_cells],
            epoch: 0,
            offsets: Vec::new(),
            columns: Vec::new(),
            values: Vec::new(),
            diagonal: Vec::new(),
            ext_x: Vec::new(),
            ext_y: Vec::new(),
            rhs: Vec::new(),
            x: Vec::new(),
            r: Vec::new(),
            z: Vec::new(),
            p: Vec::new(),
            ap: Vec::new(),
        }
    }

    /// Solves both axes of the anchored system restricted to `cells`.
    ///
    /// `targets_x`/`targets_y` are the anchor targets of the shard cells
    /// (indexed like `cells`); `xs`/`ys` are the full current coordinate
    /// vectors, used both as the CG starting guess and as the fixed
    /// positions of out-of-shard neighbors. Returns the new coordinates of
    /// the shard cells, in `cells` order.
    ///
    /// # Panics
    ///
    /// Panics if `anchor_weight <= 0`, the target slices do not match
    /// `cells`, or any cell index is out of range for the Laplacian.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_shard(
        &mut self,
        lap: &Laplacian,
        cells: &[u32],
        anchor_weight: f64,
        targets_x: &[f64],
        targets_y: &[f64],
        xs: &[f64],
        ys: &[f64],
        tolerance: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let m = cells.len();
        assert!(anchor_weight > 0.0, "anchor weight must be positive");
        assert_eq!(targets_x.len(), m, "targets_x must match cells");
        assert_eq!(targets_y.len(), m, "targets_y must match cells");

        // Stamp shard membership (O(shard), no clearing of the full map).
        self.epoch += 1;
        for (k, &c) in cells.iter().enumerate() {
            self.mark[c as usize] = self.epoch;
            self.local_of[c as usize] = k as u32;
        }

        // Extract the shard-local CSR; edges leaving the shard keep their
        // weight on the diagonal and push `w · neighbor_position` onto the
        // per-axis right-hand side.
        self.offsets.clear();
        self.offsets.push(0);
        self.columns.clear();
        self.values.clear();
        self.diagonal.clear();
        self.ext_x.clear();
        self.ext_y.clear();
        for &c in cells {
            let g = c as usize;
            let (mut ex, mut ey) = (0.0, 0.0);
            for (j, w) in lap.row(g) {
                if self.mark[j] == self.epoch {
                    self.columns.push(self.local_of[j]);
                    self.values.push(w);
                } else {
                    ex += w * xs[j];
                    ey += w * ys[j];
                }
            }
            self.offsets.push(self.columns.len());
            self.diagonal.push(lap.degree(g) + anchor_weight);
            self.ext_x.push(ex);
            self.ext_y.push(ey);
        }

        self.rhs.resize(m, 0.0);
        self.x.resize(m, 0.0);
        for k in 0..m {
            self.rhs[k] = anchor_weight * targets_x[k] + self.ext_x[k];
            self.x[k] = xs[cells[k] as usize];
        }
        let out_x = self.cg(tolerance, max_iterations);
        for k in 0..m {
            self.rhs[k] = anchor_weight * targets_y[k] + self.ext_y[k];
            self.x[k] = ys[cells[k] as usize];
        }
        let out_y = self.cg(tolerance, max_iterations);
        (out_x, out_y)
    }

    /// Jacobi-preconditioned CG on the current local system (`self.rhs`,
    /// starting guess `self.x`), mirroring [`Laplacian::solve_anchored`].
    fn cg(&mut self, tolerance: f64, max_iterations: usize) -> Vec<f64> {
        let m = self.diagonal.len();
        self.r.resize(m, 0.0);
        self.z.resize(m, 0.0);
        self.p.resize(m, 0.0);
        self.ap.resize(m, 0.0);

        self.apply_into_ap_from_x();
        for i in 0..m {
            self.r[i] = self.rhs[i] - self.ap[i];
            self.z[i] = self.r[i] / self.diagonal[i].max(1e-12);
        }
        self.p.copy_from_slice(&self.z);
        let mut rz: f64 = self.r.iter().zip(&self.z).map(|(a, b)| a * b).sum();
        let target = tolerance * tolerance * self.rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

        for _ in 0..max_iterations {
            let rr: f64 = self.r.iter().map(|v| v * v).sum();
            if rr <= target {
                break;
            }
            self.apply_into_ap_from_p();
            let pap: f64 = self.p.iter().zip(&self.ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break; // numerical breakdown; current x is best effort
            }
            let alpha = rz / pap;
            for i in 0..m {
                self.x[i] += alpha * self.p[i];
                self.r[i] -= alpha * self.ap[i];
            }
            for i in 0..m {
                self.z[i] = self.r[i] / self.diagonal[i].max(1e-12);
            }
            let rz_new: f64 = self.r.iter().zip(&self.z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz.max(1e-30);
            rz = rz_new;
            for i in 0..m {
                self.p[i] = self.z[i] + beta * self.p[i];
            }
        }
        self.x[..m].to_vec()
    }

    fn apply_into_ap_from_x(&mut self) {
        for i in 0..self.diagonal.len() {
            let mut acc = self.diagonal[i] * self.x[i];
            for k in self.offsets[i]..self.offsets[i + 1] {
                acc -= self.values[k] * self.x[self.columns[k] as usize];
            }
            self.ap[i] = acc;
        }
    }

    fn apply_into_ap_from_p(&mut self) {
        for i in 0..self.diagonal.len() {
            let mut acc = self.diagonal[i] * self.p[i];
            for k in self.offsets[i]..self.offsets[i + 1] {
                acc -= self.values[k] * self.p[self.columns[k] as usize];
            }
            self.ap[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(n);
        for i in 0..n - 1 {
            b.add_anonymous_net([gtl_netlist::CellId::new(i), gtl_netlist::CellId::new(i + 1)]);
        }
        let _ = first;
        b.finish()
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let nl = chain(10);
        let lap = Laplacian::build(&nl);
        let ones = vec![1.0; 10];
        let out = lap.multiply(&ones);
        for v in out {
            assert!(v.abs() < 1e-12, "L·1 must be 0, got {v}");
        }
    }

    #[test]
    fn clique_weights_match_model() {
        // 3-pin net: clique weight 2/3 per pair; diagonal = 2 pairs × 2/3.
        let mut b = NetlistBuilder::new();
        let c = b.add_anonymous_cells(3);
        b.add_anonymous_net([c, gtl_netlist::CellId::new(1), gtl_netlist::CellId::new(2)]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0, 0.0, 0.0]);
        assert!((e0[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((e0[1] + 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_net_uses_star_model() {
        // A 20-pin net must produce O(d) nonzeros, not O(d²).
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(20);
        b.add_anonymous_net((0..20).map(gtl_netlist::CellId::new));
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0; 20]);
        assert!(e0.iter().all(|v| v.abs() < 1e-12));
        // A leaf pin touches only itself and the hub.
        let mut unit = vec![0.0; 20];
        unit[10] = 1.0;
        let row = lap.multiply(&unit);
        let nonzero = row.iter().filter(|v| v.abs() > 1e-12).count();
        assert_eq!(nonzero, 2, "star leaf row should touch exactly 2 cells");
        // The hub touches everyone.
        let mut hub = vec![0.0; 20];
        hub[0] = 1.0;
        let hub_row = lap.multiply(&hub);
        assert_eq!(hub_row.iter().filter(|v| v.abs() > 1e-12).count(), 20);
    }

    #[test]
    fn anchored_solve_reaches_targets_when_disconnected() {
        // No nets: solution = targets exactly.
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(4);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0; 4];
        let targets = [3.0, -1.0, 0.5, 7.0];
        let rhs: Vec<f64> = targets.iter().map(|t| t * 1.0).collect();
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0; 4], 1e-10, 100);
        for (xi, ti) in x.iter().zip(&targets) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn anchored_solve_balances_spring_and_anchor() {
        // Two cells joined by a net (w=1), anchored at 0 and 10 with α=1:
        // minimize (x0-x1)² + ... → symmetric pull towards each other.
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("a", 1.0);
        let c1 = b.add_cell("b", 1.0);
        b.add_anonymous_net([c0, c1]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0, 1.0];
        let rhs = vec![0.0, 10.0];
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0, 0.0], 1e-12, 200);
        // Symmetry: x0 + x1 = 10; attraction: x1 - x0 < 10.
        assert!((x[0] + x[1] - 10.0).abs() < 1e-8, "{x:?}");
        assert!(x[1] - x[0] < 10.0 - 1e-6, "{x:?}");
        assert!(x[1] - x[0] > 0.0, "{x:?}");
    }

    #[test]
    fn cg_converges_on_chain() {
        let nl = chain(100);
        let lap = Laplacian::build(&nl);
        let anchor = vec![0.1; 100];
        let targets: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rhs: Vec<f64> = targets.iter().map(|t| 0.1 * t).collect();
        let (x, iters) = lap.solve_anchored(&anchor, &rhs, &vec![0.0; 100], 1e-8, 1000);
        assert!(iters < 1000, "CG did not converge");
        // Residual check.
        let mut ax = lap.multiply(&x);
        for i in 0..100 {
            ax[i] += 0.1 * x[i];
        }
        let res: f64 = ax.iter().zip(&rhs).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn shard_solver_matches_global_on_full_shard() {
        // One shard holding every cell has no external neighbors: the
        // shard solve must agree with the global anchored solve.
        let n = 30;
        let nl = chain(n);
        let lap = Laplacian::build(&nl);
        let targets: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 5.0).collect();
        let anchor = vec![0.5; n];
        let rhs: Vec<f64> = targets.iter().map(|t| 0.5 * t).collect();
        let x0 = vec![0.0; n];
        let (global, _) = lap.solve_anchored(&anchor, &rhs, &x0, 1e-12, 500);
        let mut solver = ShardSolver::new(n);
        let cells: Vec<u32> = (0..n as u32).collect();
        let (sx, sy) =
            solver.solve_shard(&lap, &cells, 0.5, &targets, &targets, &x0, &x0, 1e-12, 500);
        for i in 0..n {
            assert!((sx[i] - global[i]).abs() < 1e-8, "x[{i}]: {} vs {}", sx[i], global[i]);
            assert!((sy[i] - global[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn shard_solver_reuse_is_invisible() {
        // Solving shard B between two solves of shard A must not change
        // A's result — scratch reuse stays outside the output.
        let n = 20;
        let nl = chain(n);
        let lap = Laplacian::build(&nl);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys = vec![1.0; n];
        let ta = vec![2.5; 6];
        let tb = vec![7.5; 14];
        let a: Vec<u32> = (0..6).collect();
        let b: Vec<u32> = (6..20).collect();
        let mut solver = ShardSolver::new(n);
        let first = solver.solve_shard(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200);
        let _ = solver.solve_shard(&lap, &b, 1.0, &tb, &tb, &xs, &ys, 1e-10, 200);
        let again = solver.solve_shard(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200);
        assert_eq!(first, again);
    }

    #[test]
    fn row_and_degree_expose_csr() {
        let nl = chain(4);
        let lap = Laplacian::build(&nl);
        // Interior cell 1 neighbors 0 and 2, each with weight 1 (2/d, d=2).
        let row: Vec<(usize, f64)> = lap.row(1).collect();
        assert_eq!(row.len(), 2);
        let sum: f64 = row.iter().map(|(_, w)| w).sum();
        assert!((sum - lap.degree(1)).abs() < 1e-12);
        assert!((lap.degree(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn zero_anchor_panics() {
        let nl = chain(4);
        let lap = Laplacian::build(&nl);
        let _ = lap.solve_anchored(&[0.0; 4], &[0.0; 4], &[0.0; 4], 1e-8, 10);
    }
}
