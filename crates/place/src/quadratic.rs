//! Quadratic wirelength model: sparse Laplacian + conjugate gradients.
//!
//! Nets are modeled as springs: small nets as cliques (every pin pair gets
//! weight `2/d`), large nets as stars (every pin tied to the first pin as
//! hub) to keep the matrix sparse while still pulling high-fanout nets —
//! decoder rails, select lines — toward a common point. Minimizing the quadratic wirelength
//! `xᵀLx − 2bᵀx` per axis reduces to the SPD system `(L + αI)x = αt + b`
//! where `αI` anchors cells to targets `t` (SimPL-style pseudo-pins) and
//! `b` carries fixed-cell terms. The system is solved with a hand-written
//! Jacobi-preconditioned conjugate-gradient.

use gtl_netlist::Netlist;

/// Threshold above which a net is modeled as a star instead of a clique.
const CLIQUE_LIMIT: usize = 8;

/// A symmetric sparse matrix in CSR form, representing the connectivity
/// Laplacian of a netlist.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::quadratic::Laplacian;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// b.add_anonymous_net([x, y]);
/// let nl = b.finish();
/// let lap = Laplacian::build(&nl);
/// assert_eq!(lap.dim(), 2);
/// // Lx for x = [1, -1] equals [2w, -2w]: both entries nonzero.
/// let out = lap.multiply(&[1.0, -1.0]);
/// assert!(out[0] > 0.0 && out[1] < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Laplacian {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    diagonal: Vec<f64>,
}

impl Laplacian {
    /// Builds the Laplacian of `netlist` with the clique/path hybrid model.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.num_cells();
        // Accumulate off-diagonal entries per row in a triplet pass.
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        for net in netlist.nets() {
            let cells = netlist.net_cells(net);
            let d = cells.len();
            if d < 2 {
                continue;
            }
            if d <= CLIQUE_LIMIT {
                let w = 2.0 / d as f64;
                for i in 0..d {
                    for j in (i + 1)..d {
                        triplets.push((cells[i].raw(), cells[j].raw(), w));
                    }
                }
            } else {
                // Star model: hub = first pin, preserving O(d) sparsity.
                // Total edge weight (d−1)·w matches the clique's d−1.
                let w = 1.0;
                let hub = cells[0].raw();
                for &pin in &cells[1..] {
                    triplets.push((hub, pin.raw(), w));
                }
            }
        }

        // Count row populations (both directions), prefix-sum, fill.
        let mut counts = vec![0usize; n];
        for &(i, j, _) in &triplets {
            counts[i as usize] += 1;
            counts[j as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let nnz = *offsets.last().unwrap();
        let mut columns = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = offsets[..n].to_vec();
        let mut diagonal = vec![0.0f64; n];
        for &(i, j, w) in &triplets {
            columns[cursor[i as usize]] = j;
            values[cursor[i as usize]] = w;
            cursor[i as usize] += 1;
            columns[cursor[j as usize]] = i;
            values[cursor[j as usize]] = w;
            cursor[j as usize] += 1;
            diagonal[i as usize] += w;
            diagonal[j as usize] += w;
        }
        Self { offsets, columns, values, diagonal }
    }

    /// Matrix dimension (number of cells).
    pub fn dim(&self) -> usize {
        self.diagonal.len()
    }

    /// Computes `y = Lx` (diagonal minus off-diagonals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mut y = vec![0.0; x.len()];
        self.multiply_into(x, &mut y);
        y
    }

    fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.dim() {
            let mut acc = self.diagonal[i] * x[i];
            for k in self.offsets[i]..self.offsets[i + 1] {
                acc -= self.values[k] * x[self.columns[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Solves `(L + diag(anchor)) x = rhs` by Jacobi-preconditioned CG.
    ///
    /// `anchor` is the per-cell pseudo-pin weight (`αᵢ ≥ 0`); at least one
    /// entry must be positive or the system is singular. `x0` provides the
    /// starting guess. Returns the solution and the iterations used.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if every anchor weight is zero.
    pub fn solve_anchored(
        &self,
        anchor: &[f64],
        rhs: &[f64],
        x0: &[f64],
        tolerance: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, usize) {
        let n = self.dim();
        assert_eq!(anchor.len(), n, "anchor dimension mismatch");
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        assert!(anchor.iter().any(|&a| a > 0.0), "all-zero anchors make the system singular");

        let apply = |x: &[f64], out: &mut Vec<f64>| {
            self.multiply_into(x, out);
            for i in 0..n {
                out[i] += anchor[i] * x[i];
            }
        };
        let precond: Vec<f64> =
            (0..n).map(|i| 1.0 / (self.diagonal[i] + anchor[i]).max(1e-12)).collect();

        let mut x = x0.to_vec();
        let mut ax = vec![0.0; n];
        apply(&x, &mut ax);
        let mut r: Vec<f64> = (0..n).map(|i| rhs[i] - ax[i]).collect();
        let mut z: Vec<f64> = (0..n).map(|i| precond[i] * r[i]).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let target = tolerance * tolerance * rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

        let mut ap = vec![0.0; n];
        for iter in 0..max_iterations {
            let rr: f64 = r.iter().map(|v| v * v).sum();
            if rr <= target {
                return (x, iter);
            }
            apply(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break; // numerical breakdown; current x is best effort
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = precond[i] * r[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz.max(1e-30);
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        (x, max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(n);
        for i in 0..n - 1 {
            b.add_anonymous_net([gtl_netlist::CellId::new(i), gtl_netlist::CellId::new(i + 1)]);
        }
        let _ = first;
        b.finish()
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let nl = chain(10);
        let lap = Laplacian::build(&nl);
        let ones = vec![1.0; 10];
        let out = lap.multiply(&ones);
        for v in out {
            assert!(v.abs() < 1e-12, "L·1 must be 0, got {v}");
        }
    }

    #[test]
    fn clique_weights_match_model() {
        // 3-pin net: clique weight 2/3 per pair; diagonal = 2 pairs × 2/3.
        let mut b = NetlistBuilder::new();
        let c = b.add_anonymous_cells(3);
        b.add_anonymous_net([c, gtl_netlist::CellId::new(1), gtl_netlist::CellId::new(2)]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0, 0.0, 0.0]);
        assert!((e0[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((e0[1] + 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_net_uses_star_model() {
        // A 20-pin net must produce O(d) nonzeros, not O(d²).
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(20);
        b.add_anonymous_net((0..20).map(gtl_netlist::CellId::new));
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0; 20]);
        assert!(e0.iter().all(|v| v.abs() < 1e-12));
        // A leaf pin touches only itself and the hub.
        let mut unit = vec![0.0; 20];
        unit[10] = 1.0;
        let row = lap.multiply(&unit);
        let nonzero = row.iter().filter(|v| v.abs() > 1e-12).count();
        assert_eq!(nonzero, 2, "star leaf row should touch exactly 2 cells");
        // The hub touches everyone.
        let mut hub = vec![0.0; 20];
        hub[0] = 1.0;
        let hub_row = lap.multiply(&hub);
        assert_eq!(hub_row.iter().filter(|v| v.abs() > 1e-12).count(), 20);
    }

    #[test]
    fn anchored_solve_reaches_targets_when_disconnected() {
        // No nets: solution = targets exactly.
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(4);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0; 4];
        let targets = [3.0, -1.0, 0.5, 7.0];
        let rhs: Vec<f64> = targets.iter().map(|t| t * 1.0).collect();
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0; 4], 1e-10, 100);
        for (xi, ti) in x.iter().zip(&targets) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn anchored_solve_balances_spring_and_anchor() {
        // Two cells joined by a net (w=1), anchored at 0 and 10 with α=1:
        // minimize (x0-x1)² + ... → symmetric pull towards each other.
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("a", 1.0);
        let c1 = b.add_cell("b", 1.0);
        b.add_anonymous_net([c0, c1]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0, 1.0];
        let rhs = vec![0.0, 10.0];
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0, 0.0], 1e-12, 200);
        // Symmetry: x0 + x1 = 10; attraction: x1 - x0 < 10.
        assert!((x[0] + x[1] - 10.0).abs() < 1e-8, "{x:?}");
        assert!(x[1] - x[0] < 10.0 - 1e-6, "{x:?}");
        assert!(x[1] - x[0] > 0.0, "{x:?}");
    }

    #[test]
    fn cg_converges_on_chain() {
        let nl = chain(100);
        let lap = Laplacian::build(&nl);
        let anchor = vec![0.1; 100];
        let targets: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rhs: Vec<f64> = targets.iter().map(|t| 0.1 * t).collect();
        let (x, iters) = lap.solve_anchored(&anchor, &rhs, &vec![0.0; 100], 1e-8, 1000);
        assert!(iters < 1000, "CG did not converge");
        // Residual check.
        let mut ax = lap.multiply(&x);
        for i in 0..100 {
            ax[i] += 0.1 * x[i];
        }
        let res: f64 = ax.iter().zip(&rhs).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn zero_anchor_panics() {
        let nl = chain(4);
        let lap = Laplacian::build(&nl);
        let _ = lap.solve_anchored(&[0.0; 4], &[0.0; 4], &[0.0; 4], 1e-8, 10);
    }
}
