//! Quadratic wirelength model: sparse Laplacian + conjugate gradients.
//!
//! Nets are modeled as springs: small nets as cliques (every pin pair gets
//! weight `2/d`), large nets as stars (every pin tied to the first pin as
//! hub) to keep the matrix sparse while still pulling high-fanout nets —
//! decoder rails, select lines — toward a common point. Minimizing the quadratic wirelength
//! `xᵀLx − 2bᵀx` per axis reduces to the SPD system `(L + αI)x = αt + b`
//! where `αI` anchors cells to targets `t` (SimPL-style pseudo-pins) and
//! `b` carries fixed-cell terms. The system is solved with a hand-written
//! Jacobi-preconditioned conjugate-gradient.
//!
//! # Kernel shape
//!
//! The CG inner loops are fused — the x/r update, the Jacobi `z` solve and
//! the `rz`/`rr` reductions run in one pass over the vectors, and the CSR
//! apply folds the anchor term into its row loop — but every fusion keeps
//! the exact per-element operation order and the sequential index-order
//! reductions of the original four-pass kernels, so results are
//! **bit-identical** to the unfused form (pinned by the `reference` tests
//! in this module). Steady-state solves allocate nothing: callers own the
//! output buffers ([`Laplacian::solve_anchored_into`],
//! [`ShardSolver::solve_shard_into`]) and the CG work vectors live in
//! reusable scratch ([`SolveScratch`], [`ShardSolver`]), as does the
//! triplet pass of the CSR build ([`LaplacianScratch`]).

use gtl_netlist::Netlist;

/// Threshold above which a net is modeled as a star instead of a clique.
const CLIQUE_LIMIT: usize = 8;

/// Computes `out[i] = diagonal[i]·v[i] − Σₖ values[k]·v[columns[k]]` over
/// each CSR row `i` — the one sparse kernel behind both the global and the
/// shard solves. Row entries are walked through slice iterators (no
/// per-element bounds checks) with a single sequential accumulator, in the
/// same k-order as the original indexed loop: bit-identical, just
/// branch-free enough for the compiler to keep the row pipeline full.
fn csr_apply_into(
    offsets: &[usize],
    columns: &[u32],
    values: &[f64],
    diagonal: &[f64],
    v: &[f64],
    out: &mut [f64],
) {
    for i in 0..diagonal.len() {
        let (start, end) = (offsets[i], offsets[i + 1]);
        let mut acc = diagonal[i] * v[i];
        for (&c, &w) in columns[start..end].iter().zip(&values[start..end]) {
            acc -= w * v[c as usize];
        }
        out[i] = acc;
    }
}

/// [`csr_apply_into`] with the SimPL anchor term folded into the row
/// loop: `out[i] = (L·v)[i] + anchor[i]·v[i]`, replacing the original
/// two-pass apply (multiply, then a second sweep adding the anchor term)
/// with one pass. The anchor product is still added to the finished row
/// accumulator — same operations, same order, bit-identical.
fn csr_apply_anchored_into(
    offsets: &[usize],
    columns: &[u32],
    values: &[f64],
    diagonal: &[f64],
    anchor: &[f64],
    v: &[f64],
    out: &mut [f64],
) {
    for i in 0..diagonal.len() {
        let (start, end) = (offsets[i], offsets[i + 1]);
        let mut acc = diagonal[i] * v[i];
        for (&c, &w) in columns[start..end].iter().zip(&values[start..end]) {
            acc -= w * v[c as usize];
        }
        out[i] = acc + anchor[i] * v[i];
    }
}

/// Reusable scratch for [`Laplacian::build_with`]: the triplet list and
/// row-count/cursor arrays of the CSR construction, hoisted out of the
/// build so repeated builds (one per placement request on the serving
/// path) stop reallocating the `O(pins)` intermediate.
#[derive(Debug, Clone, Default)]
pub struct LaplacianScratch {
    triplets: Vec<(u32, u32, f64)>,
    counts: Vec<usize>,
    cursor: Vec<usize>,
}

impl LaplacianScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable CG work vectors for [`Laplacian::solve_anchored_into`]: the
/// residual, preconditioned residual, search direction, matrix-vector
/// product and Jacobi preconditioner. One `SolveScratch` per worker makes
/// steady-state anchored solves allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    precond: Vec<f64>,
}

impl SolveScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A symmetric sparse matrix in CSR form, representing the connectivity
/// Laplacian of a netlist.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::quadratic::Laplacian;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// b.add_anonymous_net([x, y]);
/// let nl = b.finish();
/// let lap = Laplacian::build(&nl);
/// assert_eq!(lap.dim(), 2);
/// // Lx for x = [1, -1] equals [2w, -2w]: both entries nonzero.
/// let out = lap.multiply(&[1.0, -1.0]);
/// assert!(out[0] > 0.0 && out[1] < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Laplacian {
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    diagonal: Vec<f64>,
}

impl Laplacian {
    /// Builds the Laplacian of `netlist` with the clique/path hybrid model.
    pub fn build(netlist: &Netlist) -> Self {
        Self::build_with(netlist, &mut LaplacianScratch::new())
    }

    /// [`Laplacian::build`] with caller-owned scratch: the triplet pass
    /// and the count/cursor arrays reuse `scratch`'s buffers, so repeated
    /// builds allocate only the CSR arrays of the result itself. The
    /// result is identical to [`Laplacian::build`] — scratch contents on
    /// entry are ignored.
    pub fn build_with(netlist: &Netlist, scratch: &mut LaplacianScratch) -> Self {
        let n = netlist.num_cells();
        // Accumulate off-diagonal entries per row in a triplet pass.
        let triplets = &mut scratch.triplets;
        triplets.clear();
        for net in netlist.nets() {
            let cells = netlist.net_cells(net);
            let d = cells.len();
            if d < 2 {
                continue;
            }
            if d <= CLIQUE_LIMIT {
                let w = 2.0 / d as f64;
                for i in 0..d {
                    for j in (i + 1)..d {
                        triplets.push((cells[i].raw(), cells[j].raw(), w));
                    }
                }
            } else {
                // Star model: hub = first pin, preserving O(d) sparsity.
                // Total edge weight (d−1)·w matches the clique's d−1.
                let w = 1.0;
                let hub = cells[0].raw();
                for &pin in &cells[1..] {
                    triplets.push((hub, pin.raw(), w));
                }
            }
        }

        // Count row populations (both directions), prefix-sum, fill.
        let counts = &mut scratch.counts;
        counts.clear();
        counts.resize(n, 0);
        for &(i, j, _) in triplets.iter() {
            counts[i as usize] += 1;
            counts[j as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for c in counts.iter() {
            offsets.push(offsets.last().unwrap() + c);
        }
        let nnz = *offsets.last().unwrap();
        let mut columns = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let cursor = &mut scratch.cursor;
        cursor.clear();
        cursor.extend_from_slice(&offsets[..n]);
        let mut diagonal = vec![0.0f64; n];
        for &(i, j, w) in triplets.iter() {
            columns[cursor[i as usize]] = j;
            values[cursor[i as usize]] = w;
            cursor[i as usize] += 1;
            columns[cursor[j as usize]] = i;
            values[cursor[j as usize]] = w;
            cursor[j as usize] += 1;
            diagonal[i as usize] += w;
            diagonal[j as usize] += w;
        }
        Self { offsets, columns, values, diagonal }
    }

    /// Matrix dimension (number of cells).
    pub fn dim(&self) -> usize {
        self.diagonal.len()
    }

    /// Off-diagonal entries of row `i` as `(column, weight)` pairs.
    ///
    /// A pair of cells connected by several nets appears once per net —
    /// consumers must sum duplicates (as [`Laplacian::multiply`] does).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.offsets[i]..self.offsets[i + 1])
            .map(move |k| (self.columns[k] as usize, self.values[k]))
    }

    /// Total incident edge weight of cell `i` (the Laplacian diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn degree(&self, i: usize) -> f64 {
        self.diagonal[i]
    }

    /// Computes `y = Lx` (diagonal minus off-diagonals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mut y = vec![0.0; x.len()];
        self.multiply_into(x, &mut y);
        y
    }

    fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        csr_apply_into(&self.offsets, &self.columns, &self.values, &self.diagonal, x, y);
    }

    /// Solves `(L + diag(anchor)) x = rhs` by Jacobi-preconditioned CG.
    ///
    /// `anchor` is the per-cell pseudo-pin weight (`αᵢ ≥ 0`); at least one
    /// entry must be positive or the system is singular. `x0` provides the
    /// starting guess. Returns the solution and the iterations used.
    /// Allocating convenience wrapper around
    /// [`Laplacian::solve_anchored_into`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if every anchor weight is zero.
    pub fn solve_anchored(
        &self,
        anchor: &[f64],
        rhs: &[f64],
        x0: &[f64],
        tolerance: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, usize) {
        let mut x = x0.to_vec();
        let iters = self.solve_anchored_into(
            anchor,
            rhs,
            &mut x,
            tolerance,
            max_iterations,
            &mut SolveScratch::new(),
        );
        (x, iters)
    }

    /// [`Laplacian::solve_anchored`] without the output and work-vector
    /// allocations: `x` holds the starting guess on entry and the solution
    /// on return, and all CG vectors live in `scratch` (contents on entry
    /// are ignored). Returns the iterations used. Bit-identical to
    /// [`Laplacian::solve_anchored`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if every anchor weight is zero.
    pub fn solve_anchored_into(
        &self,
        anchor: &[f64],
        rhs: &[f64],
        x: &mut [f64],
        tolerance: f64,
        max_iterations: usize,
        scratch: &mut SolveScratch,
    ) -> usize {
        let n = self.dim();
        assert_eq!(anchor.len(), n, "anchor dimension mismatch");
        assert_eq!(rhs.len(), n, "rhs dimension mismatch");
        assert_eq!(x.len(), n, "x0 dimension mismatch");
        assert!(anchor.iter().any(|&a| a > 0.0), "all-zero anchors make the system singular");

        let SolveScratch { r, z, p, ap, precond } = scratch;
        precond.clear();
        precond.extend((0..n).map(|i| 1.0 / (self.diagonal[i] + anchor[i]).max(1e-12)));
        r.resize(n, 0.0);
        z.resize(n, 0.0);
        p.resize(n, 0.0);
        ap.resize(n, 0.0);

        // Initial residual, fused with the Jacobi solve and the rz/rr
        // reductions (independent accumulators, index order — the same
        // operation sequence as the separate passes).
        csr_apply_anchored_into(
            &self.offsets,
            &self.columns,
            &self.values,
            &self.diagonal,
            anchor,
            x,
            ap,
        );
        let mut rz = 0.0f64;
        let mut rr = 0.0f64;
        for i in 0..n {
            let ri = rhs[i] - ap[i];
            r[i] = ri;
            let zi = precond[i] * ri;
            z[i] = zi;
            p[i] = zi;
            rz += ri * zi;
            rr += ri * ri;
        }
        let target = tolerance * tolerance * rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

        for iter in 0..max_iterations {
            if rr <= target {
                return iter;
            }
            csr_apply_anchored_into(
                &self.offsets,
                &self.columns,
                &self.values,
                &self.diagonal,
                anchor,
                p,
                ap,
            );
            let pap: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break; // numerical breakdown; current x is best effort
            }
            let alpha = rz / pap;
            // Fused x/r update + Jacobi z + rz/rr reductions: one pass
            // instead of four, same per-element ops in the same order.
            let mut rz_new = 0.0f64;
            let mut rr_new = 0.0f64;
            for i in 0..n {
                x[i] += alpha * p[i];
                let ri = r[i] - alpha * ap[i];
                r[i] = ri;
                let zi = precond[i] * ri;
                z[i] = zi;
                rz_new += ri * zi;
                rr_new += ri * ri;
            }
            let beta = rz_new / rz.max(1e-30);
            rz = rz_new;
            rr = rr_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        max_iterations
    }
}

/// Reusable scratch for solving *shard-restricted* anchored systems.
///
/// The sharded placer decomposes the die into a grid of regions and solves
/// each region's cells as an independent quadratic system, treating
/// neighbors outside the shard as fixed (Dirichlet coupling: their current
/// positions move to the right-hand side, their edge weights stay on the
/// diagonal, so the local matrix remains SPD). One `ShardSolver` is built
/// per *worker* of [`gtl_core::exec::parallel_map_with`] and reused across
/// every shard that worker claims — the local CSR and all CG vectors are
/// allocated once and recycled, per the execution layer's scratch
/// contract.
///
/// The result of [`ShardSolver::solve_shard`] is a pure function of its
/// arguments; nothing about buffer reuse or worker identity leaks into the
/// output.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::quadratic::{Laplacian, ShardSolver};
///
/// // Three cells in a chain; solve the shard {0, 1} with cell 2 fixed.
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..3).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// b.add_anonymous_net([cells[0], cells[1]]);
/// b.add_anonymous_net([cells[1], cells[2]]);
/// let nl = b.finish();
/// let lap = Laplacian::build(&nl);
///
/// let mut solver = ShardSolver::new(nl.num_cells());
/// let xs = [0.0, 0.0, 10.0];
/// let ys = [0.0, 0.0, 0.0];
/// let (sx, _sy) = solver.solve_shard(
///     &lap, &[0, 1], 1.0, &[0.0, 0.0], &[0.0, 0.0], &xs, &ys, 1e-10, 100,
/// );
/// // Cell 1 is pulled toward the fixed cell 2 at x = 10; cell 0 follows.
/// assert!(sx[1] > sx[0] && sx[1] > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardSolver {
    /// Epoch stamp per global cell; `mark[g] == epoch` ⇔ `g` is in the
    /// current shard.
    mark: Vec<u32>,
    /// Local index of each global cell (valid only where `mark` matches).
    local_of: Vec<u32>,
    epoch: u32,
    // Shard-local CSR (columns hold *local* indices).
    offsets: Vec<usize>,
    columns: Vec<u32>,
    values: Vec<f64>,
    diagonal: Vec<f64>,
    // Fixed-neighbor (Dirichlet) right-hand-side contributions per axis.
    ext_x: Vec<f64>,
    ext_y: Vec<f64>,
    // CG work vectors.
    rhs: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl ShardSolver {
    /// Creates a solver for shards of a `num_cells`-cell design.
    pub fn new(num_cells: usize) -> Self {
        Self {
            mark: vec![0; num_cells],
            local_of: vec![0; num_cells],
            epoch: 0,
            offsets: Vec::new(),
            columns: Vec::new(),
            values: Vec::new(),
            diagonal: Vec::new(),
            ext_x: Vec::new(),
            ext_y: Vec::new(),
            rhs: Vec::new(),
            r: Vec::new(),
            z: Vec::new(),
            p: Vec::new(),
            ap: Vec::new(),
        }
    }

    /// Solves both axes of the anchored system restricted to `cells`.
    ///
    /// Allocating convenience wrapper around
    /// [`ShardSolver::solve_shard_into`]; returns the new coordinates of
    /// the shard cells, in `cells` order.
    ///
    /// # Panics
    ///
    /// Panics if `anchor_weight <= 0`, the target slices do not match
    /// `cells`, or any cell index is out of range for the Laplacian.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_shard(
        &mut self,
        lap: &Laplacian,
        cells: &[u32],
        anchor_weight: f64,
        targets_x: &[f64],
        targets_y: &[f64],
        xs: &[f64],
        ys: &[f64],
        tolerance: f64,
        max_iterations: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut out_x = Vec::new();
        let mut out_y = Vec::new();
        self.solve_shard_into(
            lap,
            cells,
            anchor_weight,
            targets_x,
            targets_y,
            xs,
            ys,
            tolerance,
            max_iterations,
            &mut out_x,
            &mut out_y,
        );
        (out_x, out_y)
    }

    /// [`ShardSolver::solve_shard`] writing into caller-provided buffers.
    ///
    /// `targets_x`/`targets_y` are the anchor targets of the shard cells
    /// (indexed like `cells`); `xs`/`ys` are the full current coordinate
    /// vectors, used both as the CG starting guess and as the fixed
    /// positions of out-of-shard neighbors. `out_x`/`out_y` are resized to
    /// the shard and double as the CG solution vectors — loaded with the
    /// starting guess, iterated in place, left holding the new shard
    /// coordinates in `cells` order. With buffers reused across calls the
    /// steady state allocates nothing (there is no `to_vec` tail — the
    /// solve never owns the solution).
    ///
    /// # Panics
    ///
    /// Panics if `anchor_weight <= 0`, the target slices do not match
    /// `cells`, or any cell index is out of range for the Laplacian.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_shard_into(
        &mut self,
        lap: &Laplacian,
        cells: &[u32],
        anchor_weight: f64,
        targets_x: &[f64],
        targets_y: &[f64],
        xs: &[f64],
        ys: &[f64],
        tolerance: f64,
        max_iterations: usize,
        out_x: &mut Vec<f64>,
        out_y: &mut Vec<f64>,
    ) {
        let m = cells.len();
        assert!(anchor_weight > 0.0, "anchor weight must be positive");
        assert_eq!(targets_x.len(), m, "targets_x must match cells");
        assert_eq!(targets_y.len(), m, "targets_y must match cells");

        // Stamp shard membership (O(shard), no clearing of the full map).
        self.epoch += 1;
        for (k, &c) in cells.iter().enumerate() {
            self.mark[c as usize] = self.epoch;
            self.local_of[c as usize] = k as u32;
        }

        // Extract the shard-local CSR; edges leaving the shard keep their
        // weight on the diagonal and push `w · neighbor_position` onto the
        // per-axis right-hand side.
        self.offsets.clear();
        self.offsets.push(0);
        self.columns.clear();
        self.values.clear();
        self.diagonal.clear();
        self.ext_x.clear();
        self.ext_y.clear();
        for &c in cells {
            let g = c as usize;
            let (mut ex, mut ey) = (0.0, 0.0);
            for (j, w) in lap.row(g) {
                if self.mark[j] == self.epoch {
                    self.columns.push(self.local_of[j]);
                    self.values.push(w);
                } else {
                    ex += w * xs[j];
                    ey += w * ys[j];
                }
            }
            self.offsets.push(self.columns.len());
            self.diagonal.push(lap.degree(g) + anchor_weight);
            self.ext_x.push(ex);
            self.ext_y.push(ey);
        }

        self.rhs.resize(m, 0.0);
        out_x.resize(m, 0.0);
        for k in 0..m {
            self.rhs[k] = anchor_weight * targets_x[k] + self.ext_x[k];
            out_x[k] = xs[cells[k] as usize];
        }
        self.cg(out_x, tolerance, max_iterations);
        out_y.resize(m, 0.0);
        for k in 0..m {
            self.rhs[k] = anchor_weight * targets_y[k] + self.ext_y[k];
            out_y[k] = ys[cells[k] as usize];
        }
        self.cg(out_y, tolerance, max_iterations);
    }

    /// Jacobi-preconditioned CG on the current local system (`self.rhs`),
    /// iterating `x` in place from starting guess to solution, mirroring
    /// [`Laplacian::solve_anchored_into`]'s fused loop structure — except
    /// that the Jacobi solve stays in its original division form
    /// (`r / diag.max(1e-12)`), which is not bit-equal to multiplying by
    /// a precomputed reciprocal.
    fn cg(&mut self, x: &mut [f64], tolerance: f64, max_iterations: usize) {
        let m = self.diagonal.len();
        self.r.resize(m, 0.0);
        self.z.resize(m, 0.0);
        self.p.resize(m, 0.0);
        self.ap.resize(m, 0.0);

        csr_apply_into(&self.offsets, &self.columns, &self.values, &self.diagonal, x, &mut self.ap);
        let mut rz = 0.0f64;
        let mut rr = 0.0f64;
        for i in 0..m {
            let ri = self.rhs[i] - self.ap[i];
            self.r[i] = ri;
            let zi = ri / self.diagonal[i].max(1e-12);
            self.z[i] = zi;
            self.p[i] = zi;
            rz += ri * zi;
            rr += ri * ri;
        }
        let target = tolerance * tolerance * self.rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

        for _ in 0..max_iterations {
            if rr <= target {
                break;
            }
            csr_apply_into(
                &self.offsets,
                &self.columns,
                &self.values,
                &self.diagonal,
                &self.p,
                &mut self.ap,
            );
            let pap: f64 = self.p.iter().zip(&self.ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break; // numerical breakdown; current x is best effort
            }
            let alpha = rz / pap;
            let mut rz_new = 0.0f64;
            let mut rr_new = 0.0f64;
            for (i, xi) in x.iter_mut().enumerate().take(m) {
                *xi += alpha * self.p[i];
                let ri = self.r[i] - alpha * self.ap[i];
                self.r[i] = ri;
                let zi = ri / self.diagonal[i].max(1e-12);
                self.z[i] = zi;
                rz_new += ri * zi;
                rr_new += ri * ri;
            }
            let beta = rz_new / rz.max(1e-30);
            rz = rz_new;
            rr = rr_new;
            for i in 0..m {
                self.p[i] = self.z[i] + beta * self.p[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(n);
        for i in 0..n - 1 {
            b.add_anonymous_net([gtl_netlist::CellId::new(i), gtl_netlist::CellId::new(i + 1)]);
        }
        let _ = first;
        b.finish()
    }

    /// The pre-fusion kernels, kept verbatim as bit-exactness oracles for
    /// the fused loops above.
    mod reference {
        use super::super::Laplacian;

        pub fn multiply_into(lap: &Laplacian, x: &[f64], y: &mut [f64]) {
            for i in 0..lap.dim() {
                let mut acc = lap.diagonal[i] * x[i];
                for k in lap.offsets[i]..lap.offsets[i + 1] {
                    acc -= lap.values[k] * x[lap.columns[k] as usize];
                }
                y[i] = acc;
            }
        }

        /// The original four-pass `solve_anchored` (two-pass apply,
        /// top-of-loop rr reduction, separate x/r, z, rz, p loops).
        pub fn solve_anchored(
            lap: &Laplacian,
            anchor: &[f64],
            rhs: &[f64],
            x0: &[f64],
            tolerance: f64,
            max_iterations: usize,
        ) -> (Vec<f64>, usize) {
            let n = lap.dim();
            let apply = |x: &[f64], out: &mut Vec<f64>| {
                multiply_into(lap, x, out);
                for i in 0..n {
                    out[i] += anchor[i] * x[i];
                }
            };
            let precond: Vec<f64> =
                (0..n).map(|i| 1.0 / (lap.diagonal[i] + anchor[i]).max(1e-12)).collect();

            let mut x = x0.to_vec();
            let mut ax = vec![0.0; n];
            apply(&x, &mut ax);
            let mut r: Vec<f64> = (0..n).map(|i| rhs[i] - ax[i]).collect();
            let mut z: Vec<f64> = (0..n).map(|i| precond[i] * r[i]).collect();
            let mut p = z.clone();
            let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let target = tolerance * tolerance * rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

            let mut ap = vec![0.0; n];
            for iter in 0..max_iterations {
                let rr: f64 = r.iter().map(|v| v * v).sum();
                if rr <= target {
                    return (x, iter);
                }
                apply(&p, &mut ap);
                let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
                if pap <= 0.0 {
                    break;
                }
                let alpha = rz / pap;
                for i in 0..n {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                for i in 0..n {
                    z[i] = precond[i] * r[i];
                }
                let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
                let beta = rz_new / rz.max(1e-30);
                rz = rz_new;
                for i in 0..n {
                    p[i] = z[i] + beta * p[i];
                }
            }
            (x, max_iterations)
        }

        /// The original shard CG (division-form Jacobi), run on a
        /// whole-design shard: local CSR = global CSR, diagonal shifted
        /// by the anchor weight, no Dirichlet terms.
        pub fn full_shard_cg(
            lap: &Laplacian,
            anchor_weight: f64,
            rhs: &[f64],
            x0: &[f64],
            tolerance: f64,
            max_iterations: usize,
        ) -> Vec<f64> {
            let m = lap.dim();
            let diagonal: Vec<f64> = lap.diagonal.iter().map(|d| d + anchor_weight).collect();
            let apply = |v: &[f64], out: &mut [f64]| {
                for i in 0..m {
                    let mut acc = diagonal[i] * v[i];
                    for k in lap.offsets[i]..lap.offsets[i + 1] {
                        acc -= lap.values[k] * v[lap.columns[k] as usize];
                    }
                    out[i] = acc;
                }
            };
            let mut x = x0.to_vec();
            let mut ap = vec![0.0; m];
            apply(&x, &mut ap);
            let mut r: Vec<f64> = (0..m).map(|i| rhs[i] - ap[i]).collect();
            let mut z: Vec<f64> = (0..m).map(|i| r[i] / diagonal[i].max(1e-12)).collect();
            let mut p = z.clone();
            let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let target = tolerance * tolerance * rhs.iter().map(|v| v * v).sum::<f64>().max(1e-30);

            for _ in 0..max_iterations {
                let rr: f64 = r.iter().map(|v| v * v).sum();
                if rr <= target {
                    break;
                }
                apply(&p, &mut ap);
                let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
                if pap <= 0.0 {
                    break;
                }
                let alpha = rz / pap;
                for i in 0..m {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                for i in 0..m {
                    z[i] = r[i] / diagonal[i].max(1e-12);
                }
                let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
                let beta = rz_new / rz.max(1e-30);
                rz = rz_new;
                for i in 0..m {
                    p[i] = z[i] + beta * p[i];
                }
            }
            x
        }
    }

    /// Deterministic pseudo-random vector for kernel identity tests.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let h = gtl_core::derive_stream(seed, i as u64);
                (h % 10_000) as f64 / 1_000.0 - 5.0
            })
            .collect()
    }

    /// A denser test graph: a chain plus a few large star nets.
    fn mixed(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(n);
        for i in 0..n - 1 {
            b.add_anonymous_net([gtl_netlist::CellId::new(i), gtl_netlist::CellId::new(i + 1)]);
        }
        for start in [0, n / 3, n / 2] {
            b.add_anonymous_net((start..(start + 15).min(n)).map(gtl_netlist::CellId::new));
        }
        b.finish()
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let nl = chain(10);
        let lap = Laplacian::build(&nl);
        let ones = vec![1.0; 10];
        let out = lap.multiply(&ones);
        for v in out {
            assert!(v.abs() < 1e-12, "L·1 must be 0, got {v}");
        }
    }

    #[test]
    fn clique_weights_match_model() {
        // 3-pin net: clique weight 2/3 per pair; diagonal = 2 pairs × 2/3.
        let mut b = NetlistBuilder::new();
        let c = b.add_anonymous_cells(3);
        b.add_anonymous_net([c, gtl_netlist::CellId::new(1), gtl_netlist::CellId::new(2)]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0, 0.0, 0.0]);
        assert!((e0[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((e0[1] + 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn large_net_uses_star_model() {
        // A 20-pin net must produce O(d) nonzeros, not O(d²).
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(20);
        b.add_anonymous_net((0..20).map(gtl_netlist::CellId::new));
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let e0 = lap.multiply(&[1.0; 20]);
        assert!(e0.iter().all(|v| v.abs() < 1e-12));
        // A leaf pin touches only itself and the hub.
        let mut unit = vec![0.0; 20];
        unit[10] = 1.0;
        let row = lap.multiply(&unit);
        let nonzero = row.iter().filter(|v| v.abs() > 1e-12).count();
        assert_eq!(nonzero, 2, "star leaf row should touch exactly 2 cells");
        // The hub touches everyone.
        let mut hub = vec![0.0; 20];
        hub[0] = 1.0;
        let hub_row = lap.multiply(&hub);
        assert_eq!(hub_row.iter().filter(|v| v.abs() > 1e-12).count(), 20);
    }

    #[test]
    fn build_with_matches_build_and_reuses_scratch() {
        let mut scratch = LaplacianScratch::new();
        for nl in [chain(40), mixed(60), chain(7)] {
            let fresh = Laplacian::build(&nl);
            let reused = Laplacian::build_with(&nl, &mut scratch);
            assert_eq!(fresh.offsets, reused.offsets);
            assert_eq!(fresh.columns, reused.columns);
            assert_eq!(fresh.values, reused.values);
            assert_eq!(fresh.diagonal, reused.diagonal);
        }
    }

    #[test]
    fn csr_apply_matches_reference_bitwise() {
        for nl in [chain(50), mixed(80)] {
            let lap = Laplacian::build(&nl);
            let x = noise(lap.dim(), 21);
            let mut expect = vec![0.0; lap.dim()];
            reference::multiply_into(&lap, &x, &mut expect);
            assert_eq!(lap.multiply(&x), expect);
        }
    }

    #[test]
    fn fused_solve_matches_reference_bitwise() {
        // The fused CG must reproduce the original four-pass kernel to the
        // last bit: converged, iteration-capped, and loose-tolerance runs.
        for nl in [chain(60), mixed(90)] {
            let lap = Laplacian::build(&nl);
            let n = lap.dim();
            let anchor: Vec<f64> = noise(n, 1).iter().map(|v| v.abs() + 0.01).collect();
            let rhs = noise(n, 2);
            let x0 = noise(n, 3);
            for (tol, iters) in [(1e-10, 500), (1e-10, 7), (0.5, 500)] {
                let (ex, eit) = reference::solve_anchored(&lap, &anchor, &rhs, &x0, tol, iters);
                let (fx, fit) = lap.solve_anchored(&anchor, &rhs, &x0, tol, iters);
                assert_eq!(ex, fx, "tol={tol} iters={iters}");
                assert_eq!(eit, fit, "tol={tol} iters={iters}");
            }
        }
    }

    #[test]
    fn fused_shard_cg_matches_reference_bitwise() {
        // On a whole-design shard the Dirichlet terms vanish, so the shard
        // CG reduces to the reference division-form kernel exactly.
        for nl in [chain(40), mixed(70)] {
            let lap = Laplacian::build(&nl);
            let n = lap.dim();
            let cells: Vec<u32> = (0..n as u32).collect();
            let targets = noise(n, 4);
            let xs = noise(n, 5);
            let ys = noise(n, 6);
            let aw = 0.75;
            for (tol, iters) in [(1e-10, 400), (1e-10, 5)] {
                let rhs_x: Vec<f64> = targets.iter().map(|t| aw * t).collect();
                let expect_x = reference::full_shard_cg(&lap, aw, &rhs_x, &xs, tol, iters);
                let expect_y = reference::full_shard_cg(&lap, aw, &rhs_x, &ys, tol, iters);
                let mut solver = ShardSolver::new(n);
                let (sx, sy) =
                    solver.solve_shard(&lap, &cells, aw, &targets, &targets, &xs, &ys, tol, iters);
                assert_eq!(sx, expect_x, "x tol={tol} iters={iters}");
                assert_eq!(sy, expect_y, "y tol={tol} iters={iters}");
            }
        }
    }

    #[test]
    fn solve_anchored_into_reuse_is_invisible() {
        // One scratch across differently-sized solves must not change any
        // result, and the in-place entry point must match the wrapper.
        let mut scratch = SolveScratch::new();
        for (n, seed) in [(50usize, 10u64), (20, 11), (80, 12)] {
            let lap = Laplacian::build(&chain(n));
            let anchor = vec![0.3; n];
            let rhs = noise(n, seed);
            let x0 = noise(n, seed + 100);
            let (expect, eit) = lap.solve_anchored(&anchor, &rhs, &x0, 1e-10, 300);
            let mut x = x0.clone();
            let iters = lap.solve_anchored_into(&anchor, &rhs, &mut x, 1e-10, 300, &mut scratch);
            assert_eq!(expect, x, "n={n}");
            assert_eq!(eit, iters, "n={n}");
        }
    }

    #[test]
    fn solve_shard_into_reuses_buffers_without_changing_results() {
        let n = 24;
        let lap = Laplacian::build(&mixed(n));
        let xs = noise(n, 30);
        let ys = noise(n, 31);
        let mut solver = ShardSolver::new(n);
        let a: Vec<u32> = (0..8).collect();
        let b: Vec<u32> = (8..n as u32).collect();
        let ta = vec![1.0; a.len()];
        let tb = vec![-2.0; b.len()];
        let expect = solver.solve_shard(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200);
        // Dirty, wrongly-sized buffers left over from another shard…
        let (mut ox, mut oy) = (vec![9.9; b.len()], Vec::new());
        solver.solve_shard_into(&lap, &b, 1.0, &tb, &tb, &xs, &ys, 1e-10, 200, &mut ox, &mut oy);
        // …must be fully overwritten by the next solve.
        solver.solve_shard_into(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200, &mut ox, &mut oy);
        assert_eq!(expect, (ox, oy));
    }

    #[test]
    fn anchored_solve_reaches_targets_when_disconnected() {
        // No nets: solution = targets exactly.
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(4);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0; 4];
        let targets = [3.0, -1.0, 0.5, 7.0];
        let rhs: Vec<f64> = targets.iter().map(|t| t * 1.0).collect();
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0; 4], 1e-10, 100);
        for (xi, ti) in x.iter().zip(&targets) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn anchored_solve_balances_spring_and_anchor() {
        // Two cells joined by a net (w=1), anchored at 0 and 10 with α=1:
        // minimize (x0-x1)² + ... → symmetric pull towards each other.
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("a", 1.0);
        let c1 = b.add_cell("b", 1.0);
        b.add_anonymous_net([c0, c1]);
        let nl = b.finish();
        let lap = Laplacian::build(&nl);
        let anchor = vec![1.0, 1.0];
        let rhs = vec![0.0, 10.0];
        let (x, _) = lap.solve_anchored(&anchor, &rhs, &[0.0, 0.0], 1e-12, 200);
        // Symmetry: x0 + x1 = 10; attraction: x1 - x0 < 10.
        assert!((x[0] + x[1] - 10.0).abs() < 1e-8, "{x:?}");
        assert!(x[1] - x[0] < 10.0 - 1e-6, "{x:?}");
        assert!(x[1] - x[0] > 0.0, "{x:?}");
    }

    #[test]
    fn cg_converges_on_chain() {
        let nl = chain(100);
        let lap = Laplacian::build(&nl);
        let anchor = vec![0.1; 100];
        let targets: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rhs: Vec<f64> = targets.iter().map(|t| 0.1 * t).collect();
        let (x, iters) = lap.solve_anchored(&anchor, &rhs, &vec![0.0; 100], 1e-8, 1000);
        assert!(iters < 1000, "CG did not converge");
        // Residual check.
        let mut ax = lap.multiply(&x);
        for i in 0..100 {
            ax[i] += 0.1 * x[i];
        }
        let res: f64 = ax.iter().zip(&rhs).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn shard_solver_matches_global_on_full_shard() {
        // One shard holding every cell has no external neighbors: the
        // shard solve must agree with the global anchored solve.
        let n = 30;
        let nl = chain(n);
        let lap = Laplacian::build(&nl);
        let targets: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % 5.0).collect();
        let anchor = vec![0.5; n];
        let rhs: Vec<f64> = targets.iter().map(|t| 0.5 * t).collect();
        let x0 = vec![0.0; n];
        let (global, _) = lap.solve_anchored(&anchor, &rhs, &x0, 1e-12, 500);
        let mut solver = ShardSolver::new(n);
        let cells: Vec<u32> = (0..n as u32).collect();
        let (sx, sy) =
            solver.solve_shard(&lap, &cells, 0.5, &targets, &targets, &x0, &x0, 1e-12, 500);
        for i in 0..n {
            assert!((sx[i] - global[i]).abs() < 1e-8, "x[{i}]: {} vs {}", sx[i], global[i]);
            assert!((sy[i] - global[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn shard_solver_reuse_is_invisible() {
        // Solving shard B between two solves of shard A must not change
        // A's result — scratch reuse stays outside the output.
        let n = 20;
        let nl = chain(n);
        let lap = Laplacian::build(&nl);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys = vec![1.0; n];
        let ta = vec![2.5; 6];
        let tb = vec![7.5; 14];
        let a: Vec<u32> = (0..6).collect();
        let b: Vec<u32> = (6..20).collect();
        let mut solver = ShardSolver::new(n);
        let first = solver.solve_shard(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200);
        let _ = solver.solve_shard(&lap, &b, 1.0, &tb, &tb, &xs, &ys, 1e-10, 200);
        let again = solver.solve_shard(&lap, &a, 1.0, &ta, &ta, &xs, &ys, 1e-10, 200);
        assert_eq!(first, again);
    }

    #[test]
    fn row_and_degree_expose_csr() {
        let nl = chain(4);
        let lap = Laplacian::build(&nl);
        // Interior cell 1 neighbors 0 and 2, each with weight 1 (2/d, d=2).
        let row: Vec<(usize, f64)> = lap.row(1).collect();
        assert_eq!(row.len(), 2);
        let sum: f64 = row.iter().map(|(_, w)| w).sum();
        assert!((sum - lap.degree(1)).abs() < 1e-12);
        assert!((lap.degree(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn zero_anchor_panics() {
        let nl = chain(4);
        let lap = Laplacian::build(&nl);
        let _ = lap.solve_anchored(&[0.0; 4], &[0.0; 4], &[0.0; 4], 1e-8, 10);
    }
}
